// The measurement initiator.
//
// Drives the paper's five-step process (§IV-A): look up slots on-chain,
// purchase a pair (client + server Debuglet), then collect and verify the
// certified results that the executors publish through ResultReady.
#pragma once

#include <optional>

#include "apps/debuglets.hpp"
#include "core/retry.hpp"
#include "core/system.hpp"
#include "obs/metrics.hpp"
#include "util/rng.hpp"

namespace debuglet::core {

/// A purchased measurement awaiting results.
struct MeasurementHandle {
  chain::ObjectId client_application = 0;
  chain::ObjectId server_application = 0;
  /// The executor pair the measurement was purchased for; results must be
  /// certified by these ASes' keys.
  topology::InterfaceKey client_key;
  topology::InterfaceKey server_key;
  SimTime window_start = 0;
  SimTime window_end = 0;
  chain::Mist price_paid = 0;
};

/// Both certified results of one measurement, verified.
struct MeasurementOutcome {
  executor::CertifiedResult client;
  executor::CertifiedResult server;
};

/// Why collecting one side of a measurement failed. Retry logic branches
/// on these codes — never on error-message strings. kNotPublished means
/// "run the queue further or the executor is down"; kVerificationFailed
/// means a published result was rejected (bad signature, wrong executor
/// key, on-chain tamper mismatch, undecodable) and waiting cannot help.
enum class CollectErrorKind : std::uint8_t {
  kNone = 0,
  kNotPublished,
  kVerificationFailed,
  kOther,  // chain lookup / decoding infrastructure failure
};

const char* collect_error_name(CollectErrorKind kind);

/// Per-side classification of a try_collect().
struct CollectSide {
  CollectErrorKind error = CollectErrorKind::kNone;
  std::string message;
};

/// Outcome of a try_collect(): the verified results when both sides are
/// in, otherwise which side failed and why.
struct CollectProbe {
  std::optional<MeasurementOutcome> outcome;
  CollectSide client;
  CollectSide server;

  bool ok() const { return outcome.has_value(); }
  bool any(CollectErrorKind kind) const {
    return client.error == kind || server.error == kind;
  }
};

/// Everything needed to purchase one measurement.
struct MeasurementRequest {
  topology::InterfaceKey client_key;
  topology::InterfaceKey server_key;
  marketplace::ApplicationPayload client_app;
  marketplace::ApplicationPayload server_app;
  SimTime earliest_start = 0;
  std::uint32_t cores = 1;
  std::uint64_t memory_bytes = 64 * 1024;
  std::uint64_t bandwidth_bps = 1'000'000;
  /// Private results (§IV-C): executors seal the outputs for the
  /// initiator's key; on-chain copies become unreadable to third parties.
  bool seal_results = false;
};

/// Summary statistics of an RTT measurement (from client samples).
struct RttSummary {
  std::size_t probes_sent = 0;
  std::size_t probes_answered = 0;
  double mean_ms = 0.0;
  double std_ms = 0.0;
  double min_ms = 0.0;
  double max_ms = 0.0;
  /// Samples discarded before the statistics: repeats of an
  /// already-answered sequence (duplicated probes or echoes) and samples
  /// whose RTT a damaged timestamp made impossible (negative) or
  /// implausible (far beyond the batch median).
  std::size_t duplicates_dropped = 0;
  std::size_t outliers_dropped = 0;

  double loss_rate() const {
    return probes_sent == 0
               ? 0.0
               : 1.0 - static_cast<double>(probes_answered) /
                           static_cast<double>(probes_sent);
  }
};

/// A client Debuglet's raw samples after integrity filtering.
struct SampleFilterResult {
  std::vector<apps::MeasurementSample> kept;
  std::size_t duplicates_dropped = 0;
  std::size_t outliers_dropped = 0;
};

/// Cleans raw probe samples before they feed localization: deduplicates
/// by sequence (keeping each sequence's smallest RTT — the first arrival;
/// later repeats are duplicated echoes carrying inflated clock deltas) and
/// drops damaged samples (negative RTTs from corrupted timestamps, and
/// RTTs beyond kRttOutlierFactor x the batch median — a genuine link fault
/// shifts the whole batch, so it survives this filter).
SampleFilterResult filter_probe_samples(
    std::vector<apps::MeasurementSample> samples);

/// The median-multiple beyond which a sample is judged damaged rather
/// than delayed. Wide enough that episode jitter never trips it.
inline constexpr double kRttOutlierFactor = 16.0;

/// Computes the summary from a client Debuglet's certified result. Raw
/// samples pass through filter_probe_samples first, so duplicated or
/// damaged probes cannot poison localization inputs; the counters
/// core.probe_duplicates_dropped / core.probe_outliers_dropped record
/// what the filter removed.
Result<RttSummary> summarize_rtt(const executor::CertifiedResult& client,
                                 std::size_t probes_sent);

/// One noteworthy event during a resilient measurement. The incident
/// sequence is the deterministic "retry/failover trace" the chaos suite
/// compares bit-for-bit across equal-seed runs.
struct MeasurementIncident {
  enum class Kind : std::uint8_t {
    kPurchaseFailed,
    kResultMissing,         // no ResultReady after window + grace
    kVerificationRejected,  // published result failed verification
    kReclaimed,             // partial refund recovered from a dead attempt
    kFailover,              // switched to an alternate executor
    kBackoff,               // waited per RetryPolicy before re-trying
    kAllProbesLost,         // verified result, zero answers: crashed host?
  };
  Kind kind = Kind::kResultMissing;
  std::uint32_t attempt = 0;
  topology::InterfaceKey client_key;
  topology::InterfaceKey server_key;
  std::string detail;

  std::string to_string() const;
};

/// A purchase-measure-collect loop that survives executor failure.
struct ResilientRttRequest {
  topology::InterfaceKey client_key;
  topology::InterfaceKey server_key;
  net::Protocol protocol = net::Protocol::kUdp;
  std::int64_t probe_count = 10;
  std::int64_t interval_ms = 200;
  SimTime earliest_start = 0;
  bool seal_results = false;
  RetryPolicy retry;
  /// Extra wait past the slot window before declaring ResultReady missing.
  SimDuration grace = duration::seconds(2);
  /// Alternates tried (in order, wrapping) when a side's executor fails.
  /// Empty = derive from the other border interfaces of the same AS —
  /// endpoints never traverse their own AS interior, so an alternate
  /// interface of the same AS measures the same inter-domain segment.
  std::vector<topology::InterfaceKey> client_alternates;
  std::vector<topology::InterfaceKey> server_alternates;
  bool allow_failover = true;
};

/// What a resilient measurement went through before succeeding.
struct ResilientMeasurement {
  MeasurementOutcome outcome;
  MeasurementHandle handle;  // the purchase that finally served
  topology::InterfaceKey client_key;
  topology::InterfaceKey server_key;
  std::uint32_t attempts = 1;
  std::uint32_t failovers = 0;
  std::uint32_t byzantine_rejections = 0;
  chain::Mist reclaimed = 0;
  std::vector<MeasurementIncident> incidents;

  /// One line per incident — the determinism-check trace.
  std::string trace() const;
};

/// An initiator identity: a funded chain account that purchases
/// measurements and verifies published results.
class Initiator {
 public:
  /// Creates an initiator with a fresh key, funded with `funding` MIST.
  Initiator(DebugletSystem& system, std::uint64_t seed, chain::Mist funding);

  chain::Address address() const {
    return chain::Address::of(key_.public_key());
  }
  chain::Mist balance() const { return system_.chain().balance(address()); }

  /// Steps 1–3 of §IV-A: quote, purchase, and let the chain notify the
  /// executors. Returns immediately (in simulated time the measurement
  /// runs later); collect results after running the event queue.
  Result<MeasurementHandle> purchase(const MeasurementRequest& request);

  /// Retrieves and verifies both certified results of a measurement from
  /// the chain. Fails if either result is missing (run the queue further)
  /// or fails signature/AS-key verification; error messages are prefixed
  /// with the CollectErrorKind name. Use try_collect for the typed codes.
  Result<MeasurementOutcome> collect(const MeasurementHandle& handle);

  /// Like collect, but classifies each side's failure instead of folding
  /// everything into one error string.
  CollectProbe try_collect(const MeasurementHandle& handle);

  /// Steps 1–5 with chaos tolerance: purchase, run the queue through the
  /// window plus grace, collect; on a missing or rejected result, reclaim
  /// what it can, fail over to an alternate executor on the same segment
  /// and back off per the policy — all in deterministic simulated time.
  /// DRIVES THE EVENT QUEUE (like localization's await).
  Result<ResilientMeasurement> measure_rtt_resilient(
      const ResilientRttRequest& request);

  /// Best-effort reclaim: frees whichever of the handle's application
  /// objects are reclaimable and ignores the rest (a dead executor's
  /// unserved application cannot be reclaimed until its result reports).
  /// Returns the total rebate recovered, possibly zero.
  chain::Mist reclaim_available(const MeasurementHandle& handle);

  /// Convenience for the common RTT measurement: builds the probe-client /
  /// echo-server pair from apps::, purchases it, and returns the handle.
  Result<MeasurementHandle> purchase_rtt_measurement(
      topology::InterfaceKey client_key, topology::InterfaceKey server_key,
      net::Protocol protocol, std::int64_t probe_count,
      std::int64_t interval_ms, SimTime earliest_start = 0,
      bool seal_results = false);

  /// The public key executors seal private results for.
  const crypto::PublicKey& public_key() const { return key_.public_key(); }

  /// Opens a sealed result's output with this initiator's key. Fails if
  /// the output was not sealed for this initiator or was tampered with.
  Result<Bytes> open_result(const executor::CertifiedResult& result) const;

  /// Frees both application objects after their results were reported,
  /// collecting the storage rebates (Table II's refund column). Returns
  /// the total rebate credited.
  Result<chain::Mist> reclaim(const MeasurementHandle& handle);

  chain::Mist total_spent() const { return total_spent_; }

  /// Accountability (marketplace/reputation.hpp): files a discrimination
  /// verdict on chain as a strike against the named AS. Idempotent per
  /// (AS, initiator) — re-reporting the same verdict never inflates the
  /// count. Returns the post-report record (strike total included).
  Result<marketplace::ReputationRecord> report_discrimination(
      topology::AsNumber asn, double confidence, std::uint64_t rounds_used,
      const std::string& detail);

 private:
  struct FetchOutcome {
    std::optional<executor::CertifiedResult> result;
    CollectErrorKind error = CollectErrorKind::kNone;
    std::string message;
  };
  FetchOutcome fetch_result(chain::ObjectId application,
                            topology::InterfaceKey key);
  Status reclaim_one(chain::ObjectId application, chain::Mist& rebate);

  DebugletSystem& system_;
  crypto::KeyPair key_;
  chain::Mist total_spent_ = 0;
  std::uint16_t next_rendezvous_port_ = 40000;
  Rng chaos_rng_;  // backoff jitter; forked from the initiator seed
  // Observability handles cached at construction (no-ops while disabled).
  struct ObsHandles {
    obs::Counter* purchased = nullptr;
    obs::Counter* collected = nullptr;
    obs::Counter* spent = nullptr;  // MIST: gas + slot prices
    obs::Counter* verification_rejected = nullptr;
    obs::Counter* executor_down = nullptr;
    obs::Counter* failovers = nullptr;
    obs::Counter* measurements_abandoned = nullptr;
  };
  ObsHandles obs_;
};

}  // namespace debuglet::core
