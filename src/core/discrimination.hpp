// Twin-probe discrimination detection (the counter-measurement to
// simnet/middlebox.hpp).
//
// A DPI middlebox that deprioritizes "data" while letting recognizable
// probes ride clean (§VI-E fault hiding) is invisible to plain
// measurements — the probes really do see a healthy path. The counter,
// following "Verifiable Network-Performance Measurements" (PAPERS.md), is
// to make the adversary's CLASSIFIER the measured variable: emit TWINS —
// packet pairs of identical size, payload entropy and pacing that differ
// only in the single feature the classifier keys on (here: whether the
// destination port looks like a measurement port) — and compare their
// treatment. Any systematic difference is discrimination by construction,
// and per-hop INT residence (src/telemetry) names the AS that injected it.
//
// Against an ADAPTIVE adversary (a middlebox that learns recurring twin
// signatures, simnet/middlebox.hpp) the detector randomizes: per-round
// source ports, fresh entropy-matched payloads and mimicry-profile pacing
// jitter keep every round's signature novel, so the learner never gets the
// recurrence it needs to promote. And instead of a fixed 40-round z-test
// the detector runs Wald SPRTs (util/sprt.hpp) per arm — a sign test on
// per-round delay deltas and one on discordant loss pairs — stopping as
// soon as the evidence crosses the configured alpha/beta error bounds.
// When INT is off, twin pairs aimed at every intermediate path AS act as a
// prefix scan: the nearest prefix whose SPRT accepts discrimination names
// the AS, so loss-only evidence localizes at realistic round counts.
//
// Twins are measured ONE-WAY (send timestamp to delivery timestamp): both
// twin endpoints are Debuglet-controlled, so shared time comes with the
// deployment, and one-way delay sees forward-path discrimination without
// the return path diluting it.
//
// Everything here is deterministic under the scenario seed: twin payloads,
// source ports and pacing derive from the detector's own forked RNG, and
// the verdict — confidences included — is a pure function of the delivered
// samples.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "simnet/network.hpp"
#include "util/stats.hpp"

namespace debuglet::core {

/// Per-twin-class treatment summary, accumulated at the receiving twin.
struct TwinClassSummary {
  std::uint64_t sent = 0;
  std::uint64_t received = 0;
  SampleSet one_way_ms;
  /// Per-AS residence samples from delivered INT record stacks (empty
  /// when the network forwards without INT).
  std::map<topology::AsNumber, SampleSet> residence_ms;
  /// Largest drop-counter snapshot seen per AS (each AS tallies its own
  /// drops, so a jump localizes WHERE the missing twins died).
  std::map<topology::AsNumber, std::uint32_t> drops_seen;

  double loss_rate() const {
    return sent == 0 ? 0.0
                     : static_cast<double>(sent - received) /
                           static_cast<double>(sent);
  }
};

/// One accusation: this AS treats the twin classes differently.
struct DiscriminationEvidence {
  /// The discriminating AS; 0 = discrimination visible end to end but not
  /// localizable (no intact INT or prefix evidence).
  topology::AsNumber asn = 0;
  /// [0, 1): a monotone map of the separation score (Welch-style for
  /// residence evidence, LLR-derived for sequential evidence).
  double confidence = 0.0;
  /// Mean data-like minus probe-like residence at this AS (ms); for
  /// asn = 0, the end-to-end one-way delta.
  double residence_delta_ms = 0.0;
  /// The raw separation score or LLR the confidence derives from.
  double score = 0.0;
  std::string detail;
};

/// Two-proportion loss z-score between the twin arms, gated on a minimum
/// loss-event count per arm combined: with fewer than `min_loss_events`
/// total losses the statistic is unstable and 0.0 is returned. Exposed as
/// a pure function for the legacy fixed-round path and its tests.
double two_proportion_loss_z(const TwinClassSummary& probe_like,
                             const TwinClassSummary& data_like,
                             std::uint64_t min_loss_events);

/// Outcome of one twin-probe round set.
struct DiscriminationReport {
  TwinClassSummary probe_like;
  TwinClassSummary data_like;
  /// End-to-end mean one-way delta (data-like minus probe-like), ms.
  double delay_delta_ms = 0.0;
  /// Loss-rate delta (data-like minus probe-like).
  double loss_delta = 0.0;
  bool detected = false;
  /// Confidence-descending (ties break toward the lower AS number).
  std::vector<DiscriminationEvidence> suspects;
  /// Rounds actually emitted (== the configured count on the legacy
  /// fixed-round path; the SPRT stops early).
  std::uint64_t rounds_used = 0;
  /// How the run ended: "h1-delay", "h1-loss", "h1-both", "h0",
  /// "exhausted" (sequential) or "fixed-rounds" (legacy).
  std::string decision;
  /// Final log-likelihood ratios of the two sequential arms (0 on the
  /// legacy path).
  double delay_llr = 0.0;
  double loss_llr = 0.0;

  /// The accused AS (0 when nothing met the detection bar).
  topology::AsNumber named_as() const {
    return detected && !suspects.empty() ? suspects.front().asn : 0;
  }
  double top_confidence() const {
    return suspects.empty() ? 0.0 : suspects.front().confidence;
  }
  /// Deterministic multi-line rendering for chaos traces: equal seeds must
  /// reproduce it bit for bit.
  std::string trace() const;
};

/// Runs twin-probe rounds between two ASes over the live network and
/// compares per-class treatment. Attaches its own transient hosts at
/// ordinary (non-executor) addresses — the vantage diversity §VI-E calls
/// for — and drives the event queue until the rounds drain.
class DiscriminationDetector {
 public:
  struct Options {
    /// Legacy fixed-round count (sequential == false only).
    std::uint64_t rounds = 40;
    SimDuration interval = duration::milliseconds(50);
    /// The one bit the twins differ in: a destination port inside the
    /// classic measurement ranges vs. an unremarkable ephemeral port.
    std::uint16_t probe_port = 40021;
    std::uint16_t data_port = 27101;
    /// Identical high-entropy payload tail carried by both twins.
    std::size_t payload_tail_bytes = 48;
    /// INT budget when the network forwards with telemetry enabled.
    std::uint8_t int_max_hops = 12;
    /// Detection bar: top confidence at/above this AND an effect at least
    /// `min_effect_ms` (or a significant loss gap).
    double confidence_threshold = 0.8;
    double min_effect_ms = 1.0;

    /// Sequential (SPRT) testing: emit rounds one at a time and stop as
    /// soon as either arm crosses its error bound. false = the legacy
    /// fixed-round z-test.
    bool sequential = true;
    /// Randomized twin generation (per-round source ports, fresh payload
    /// tails, mimicry pacing jitter) — the counter to a learning
    /// middlebox. false = static twins: one source port, one payload,
    /// metronome pacing (learnable on purpose, for arms-race tests).
    bool randomize_twins = true;
    /// Sequential round bounds: never decide before `min_rounds`, give up
    /// at `max_rounds`.
    std::uint64_t min_rounds = 8;
    std::uint64_t max_rounds = 64;
    /// Wald error bounds: false-accusation rate <= alpha, missed
    /// detection <= beta.
    double alpha = 0.01;
    double beta = 0.05;
    /// Bernoulli design points: P(round shows a >= min_effect delay gap)
    /// under honest (p0) vs discriminating (p1) treatment, and
    /// P(a discordant loss pair hits the data twin) under discrimination
    /// (the honest null is 0.5 by symmetry).
    double delay_p0 = 0.05;
    double delay_p1 = 0.9;
    double loss_p1 = 0.95;
    /// Extra rounds granted after the first H1 so prefix evidence can
    /// firm up before the run stops.
    std::uint64_t grace_rounds = 8;
    /// Legacy path: minimum combined loss events before the z statistic
    /// counts (satellite fix — <5 losses per arm is unstable).
    std::uint64_t min_loss_events = 5;
  };

  DiscriminationDetector(simnet::SimulatedNetwork& network,
                         topology::AsNumber client_as,
                         topology::AsNumber server_as, std::uint64_t seed);
  DiscriminationDetector(simnet::SimulatedNetwork& network,
                         topology::AsNumber client_as,
                         topology::AsNumber server_as, std::uint64_t seed,
                         Options options);

  Result<DiscriminationReport> run();

 private:
  Result<DiscriminationReport> run_fixed();
  Result<DiscriminationReport> run_sequential();

  simnet::SimulatedNetwork& network_;
  topology::AsNumber client_as_;
  topology::AsNumber server_as_;
  std::uint64_t seed_;
  Options options_;
};

}  // namespace debuglet::core
