// Decentralized executor discovery (paper §VI-A).
//
// The alternative to the marketplace: ISPs advertise their executors'
// addresses as route metadata in the inter-domain routing protocol, so
// every domain learns about executors without a central party. Initiators
// then negotiate bilaterally and exchange applications/results directly —
// cheaper and with no single point of failure, but the results are not
// publicly verifiable (no on-chain record). Ablation A4 quantifies both
// sides of that trade-off.
#pragma once

#include <map>

#include "executor/executor.hpp"
#include "simnet/network.hpp"

namespace debuglet::core {

/// Route metadata one AS originates about its executors.
struct ExecutorAdvertisement {
  topology::AsNumber origin = 0;
  std::uint64_t sequence = 0;
  std::vector<topology::InterfaceKey> executors;
  std::vector<net::Ipv4Address> addresses;  // index-aligned with executors
};

/// BGP-style flooding of executor advertisements across the AS graph, with
/// a configurable per-hop propagation/processing delay (route convergence).
class DiscoveryGossip {
 public:
  DiscoveryGossip(simnet::SimulatedNetwork& network,
                  SimDuration per_hop_delay = duration::milliseconds(50));

  /// Originates an advertisement from every AS for all of its border
  /// interfaces; propagation happens in simulated time.
  void originate_all();

  /// Originates from a single AS.
  void originate(topology::AsNumber asn);

  /// What `asn` has learned so far (latest sequence per origin).
  std::vector<ExecutorAdvertisement> known_at(topology::AsNumber asn) const;

  /// Finds the advertised executors of `target` as seen from `viewer`
  /// (empty if the advertisement has not arrived yet).
  Result<ExecutorAdvertisement> lookup(topology::AsNumber viewer,
                                       topology::AsNumber target) const;

  /// True once every AS knows every origin's latest advertisement.
  bool converged() const;

  /// Simulated time when the last advertisement arrived anywhere.
  SimTime last_arrival() const { return last_arrival_; }

  /// Total advertisement messages exchanged (flood cost).
  std::uint64_t messages_sent() const { return messages_; }

 private:
  void flood(topology::AsNumber at, const ExecutorAdvertisement& adv,
             topology::AsNumber from);

  simnet::SimulatedNetwork& network_;
  SimDuration per_hop_delay_;
  std::uint64_t next_sequence_ = 1;
  // tables_[asn][origin] = best advertisement received so far.
  std::map<topology::AsNumber,
           std::map<topology::AsNumber, ExecutorAdvertisement>>
      tables_;
  SimTime last_arrival_ = 0;
  std::uint64_t messages_ = 0;
};

/// A bilateral (chain-free) measurement: deploys the client/server pair
/// directly on the two executors and returns both certified results via
/// the callback when the second one completes. The results remain
/// AS-signed (verifiable against the AS key) but have no public on-chain
/// record.
struct BilateralOutcome {
  executor::CertifiedResult client;
  executor::CertifiedResult server;
};

Status run_bilateral(executor::ExecutorService& client_executor,
                     executor::ExecutorService& server_executor,
                     executor::DebugletApp client_app,
                     executor::DebugletApp server_app, SimTime start,
                     std::function<void(const BilateralOutcome&)> on_done);

}  // namespace debuglet::core
