// Measurement history and trend analysis (paper §VI-F "Age of
// Information").
//
// "Given multiple measurements [of] a common network diagnostic over a
// fixed path, the trend in measured results over time might help identify
// the time at which the path started experiencing performance degradation"
// — results older than a few seconds are useless for live debugging, but
// an archive (retained off-chain, hash-anchored on-chain) supports
// retrospective diagnosis.
#pragma once

#include <map>
#include <vector>

#include "core/initiator.hpp"
#include "crypto/merkle.hpp"

namespace debuglet::core {

/// Identifies a repeatedly measured path diagnostic.
struct DiagnosticKey {
  topology::InterfaceKey client;
  topology::InterfaceKey server;
  net::Protocol protocol = net::Protocol::kUdp;
  auto operator<=>(const DiagnosticKey&) const = default;
};

/// One archived measurement.
struct ArchivedMeasurement {
  SimTime measured_at = 0;
  RttSummary summary;

  Bytes serialize() const;
  static Result<ArchivedMeasurement> parse(BytesView data);
};

/// A retention-bounded archive of measurement summaries per diagnostic,
/// with a Merkle anchor so the (off-chain) archive can be committed to a
/// chain in one 32-byte object.
class MeasurementArchive {
 public:
  /// Retention window; entries older than (latest - retention) are pruned
  /// on insert. The paper suggests "between a week and several months".
  explicit MeasurementArchive(SimDuration retention = duration::hours(7 * 24));

  void record(const DiagnosticKey& key, SimTime at, const RttSummary& summary);

  const std::vector<ArchivedMeasurement>& history(
      const DiagnosticKey& key) const;

  std::size_t total_entries() const;

  /// Merkle root over the serialized entries of one diagnostic — the
  /// 32-byte anchor to publish on-chain (ablation A3's pattern).
  crypto::Digest anchor(const DiagnosticKey& key) const;

  /// Inclusion proof for entry `index` of a diagnostic, verifiable against
  /// the anchor by any third party holding the entry bytes.
  Result<crypto::MerkleProof> prove(const DiagnosticKey& key,
                                    std::size_t index) const;

 private:
  SimDuration retention_;
  std::map<DiagnosticKey, std::vector<ArchivedMeasurement>> entries_;
  static const std::vector<ArchivedMeasurement> kEmpty;
};

/// Result of degradation-onset analysis over an archived series.
struct DegradationReport {
  bool degraded = false;
  SimTime onset = 0;         // first measurement at the degraded level
  double baseline_ms = 0.0;  // median RTT before the onset
  double degraded_ms = 0.0;  // median RTT from the onset on
};

/// Finds the earliest point where the series' RTT level rises by more than
/// `threshold_ms` above the running baseline and stays there. Loss spikes
/// (mean loss after onset > 3x before) count as degradation too.
DegradationReport detect_degradation(
    const std::vector<ArchivedMeasurement>& series, double threshold_ms);

}  // namespace debuglet::core
