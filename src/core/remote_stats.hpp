// Remote telemetry scraping (telemetry-about-telemetry).
//
// The paper's executors serve *measurement* results; this module lets a
// scenario observe the executors themselves the way a real Debuglet
// customer would: a stats Debuglet (apps::make_stats_debuglet) deployed
// into a purchased slot serves its host's metrics registry over the
// simulated network, and a RemoteScraper — an ordinary simnet::Host in any
// AS — fetches the snapshot chunk by chunk (obs/wire), with windowed
// outstanding requests, per-chunk retries, and timeouts all driven by the
// deterministic event queue.
//
// Scrape protocol (request/response over UDP or TCP):
//   request : 8 bytes — the chunk index, u64 LE
//   response: one obs::wire chunk message
// A chunk-0 request makes the stats Debuglet freeze a fresh snapshot, so
// the scraper always requests chunk 0 first, learns the chunk count from
// its header, then fans out over the remaining chunks.
//
// Scraped rows merge into a local registry under a `remote_host` label
// (obs::wire::merge_rows) so local and remote metrics never collide.
#pragma once

#include <functional>
#include <string>

#include "core/initiator.hpp"
#include "obs/wire.hpp"

namespace debuglet::core {

/// How a RemoteScraper conducts one scrape.
struct ScrapeConfig {
  net::Protocol protocol = net::Protocol::kUdp;
  net::Ipv4Address target;        // the serving executor's address
  std::uint16_t target_port = 0;  // the stats Debuglet's listen port
  /// Per-chunk retry schedule (shared core::RetryPolicy): the backoff
  /// before attempt k is also how long attempt k-1 waits for its
  /// response. Defaults reproduce the scraper's historical timing — six
  /// attempts at a flat 500 ms, no jitter.
  RetryPolicy retry{6, duration::milliseconds(500), 1.0, 0.0};
  /// Seeds the jitter stream (unused while retry.jitter == 0).
  std::uint64_t retry_seed = 0x5C4A9EULL;
  /// Maximum outstanding chunk requests once the count is known.
  std::uint32_t window = 4;
};

/// Outcome of one scrape.
struct ScrapeReport {
  bool complete = false;
  std::string error;  // set when the scrape gave up
  std::size_t chunks = 0;
  std::size_t requests_sent = 0;
  std::size_t retries = 0;
  /// Responses that failed chunk parsing (in-flight corruption caught by
  /// the per-chunk digest) — each one triggers an immediate re-request of
  /// the oldest outstanding chunk instead of waiting out its timeout.
  std::size_t corrupt_rejected = 0;
  /// Redundant retransmissions of chunks already held (duplicated frames
  /// or crossed retries); the assembler absorbs them.
  std::size_t duplicate_chunks = 0;
  SimTime started = 0;
  SimTime finished = 0;
  std::vector<obs::MetricRow> rows;  // the decoded remote snapshot
};

/// Fetches one registry snapshot from a remote stats Debuglet. The caller
/// attaches the scraper at its address (simnet convention), calls start(),
/// and drives the event queue; progress and failure both land in report().
class RemoteScraper : public simnet::Host {
 public:
  using DoneCallback = std::function<void(const ScrapeReport&)>;

  RemoteScraper(simnet::SimulatedNetwork& network, net::Ipv4Address address,
                ScrapeConfig config);

  /// Begins the scrape at the queue's current time. `on_done` (optional)
  /// fires once, in simulated time, when the scrape completes or gives up.
  void start(DoneCallback on_done = nullptr);

  void on_packet(const simnet::Delivery& delivery) override;

  /// True once the scrape finished (successfully or not).
  bool finished() const { return finished_; }
  const ScrapeReport& report() const { return report_; }
  net::Ipv4Address address() const { return address_; }

  /// Merges the scraped rows into `target` labelled remote_host=`label`
  /// (defaults to the target executor's address). Fails unless the scrape
  /// completed.
  Status merge_into(obs::MetricsRegistry& target,
                    std::string label = "") const;

 private:
  void request_chunk(std::uint16_t index);
  void rerequest_oldest_pending();
  void fill_window();
  void fail_scrape(const std::string& reason);
  void complete_scrape();

  simnet::SimulatedNetwork& network_;
  net::Ipv4Address address_;
  ScrapeConfig config_;
  obs::wire::SnapshotAssembler assembler_;
  ScrapeReport report_;
  DoneCallback on_done_;
  bool started_ = false;
  bool finished_ = false;
  std::uint16_t source_port_ = 47000;
  std::uint16_t next_to_request_ = 0;  // cursor once the count is known
  std::map<std::uint16_t, std::uint64_t> pending_;  // index -> timeout token
  std::map<std::uint16_t, std::uint32_t> attempts_;
  std::uint64_t next_token_ = 1;
  Rng retry_rng_;
  RetryObs retry_obs_;
};

/// A purchased pair of stats Debuglets. The marketplace only trades slot
/// pairs, so a stats purchase deploys one serving Debuglet at each of two
/// executors; scrape whichever end (or both) the scenario cares about.
struct StatsDeployment {
  MeasurementHandle handle;
  net::Ipv4Address first_address;   // the two serving executors
  net::Ipv4Address second_address;
  std::uint16_t first_port = 0;     // their stats listen ports
  std::uint16_t second_port = 0;
};

/// Everything needed to purchase a stats pair.
struct StatsPairRequest {
  topology::InterfaceKey first_key;
  topology::InterfaceKey second_key;
  /// The scraper's address — the only peer the manifests allow.
  net::Ipv4Address scraper_address;
  apps::StatsServerParams params;
  /// Request/response budget per serving Debuglet.
  std::int64_t request_budget = 256;
  SimDuration serve_budget = duration::seconds(60);
  std::uint16_t first_port = 45000;
  std::uint16_t second_port = 45001;
  SimTime earliest_start = 0;
};

/// Purchases a slot pair and deploys stats Debuglets at both executors
/// (steps 1–3 of §IV-A, with telemetry servers as the cargo).
Result<StatsDeployment> purchase_stats_pair(Initiator& initiator,
                                            DebugletSystem& system,
                                            const StatsPairRequest& request);

/// Convenience: attach a scraper at `scraper_address`, scrape `config`'s
/// target, and drive the event queue until the scrape finishes or
/// `deadline` passes. Fails if the scrape gave up or the deadline hit.
Result<ScrapeReport> scrape_once(DebugletSystem& system,
                                 net::Ipv4Address scraper_address,
                                 const ScrapeConfig& config,
                                 SimTime deadline);

}  // namespace debuglet::core
