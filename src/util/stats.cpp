#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace debuglet {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void SampleSet::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double SampleSet::mean() const {
  if (samples_.empty()) return 0.0;
  double sum = 0.0;
  for (double s : samples_) sum += s;
  return sum / static_cast<double>(samples_.size());
}

double SampleSet::stddev() const {
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double ss = 0.0;
  for (double s : samples_) ss += (s - m) * (s - m);
  return std::sqrt(ss / static_cast<double>(samples_.size() - 1));
}

double SampleSet::min() const {
  ensure_sorted();
  return samples_.empty() ? 0.0 : samples_.front();
}

double SampleSet::max() const {
  ensure_sorted();
  return samples_.empty() ? 0.0 : samples_.back();
}

double SampleSet::percentile(double p) const {
  if (samples_.empty())
    throw std::invalid_argument("SampleSet::percentile on empty set");
  ensure_sorted();
  if (p <= 0) return samples_.front();
  if (p >= 100) return samples_.back();
  const double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= samples_.size()) return samples_.back();
  return samples_[lo] * (1.0 - frac) + samples_[lo + 1] * frac;
}

std::vector<std::size_t> SampleSet::histogram(double lo, double hi,
                                              std::size_t bins) const {
  if (bins == 0 || hi <= lo)
    throw std::invalid_argument("SampleSet::histogram: bad range or bins");
  std::vector<std::size_t> counts(bins, 0);
  const double width = (hi - lo) / static_cast<double>(bins);
  for (double s : samples_) {
    auto idx = static_cast<std::int64_t>((s - lo) / width);
    idx = std::clamp<std::int64_t>(idx, 0,
                                   static_cast<std::int64_t>(bins) - 1);
    ++counts[static_cast<std::size_t>(idx)];
  }
  return counts;
}

Clusters kmeans_1d(const std::vector<double>& data, std::size_t k,
                   std::size_t iterations) {
  if (data.empty() || k == 0)
    throw std::invalid_argument("kmeans_1d: empty data or k == 0");
  std::vector<double> sorted = data;
  std::sort(sorted.begin(), sorted.end());
  k = std::min(k, sorted.size());

  // Deterministic farthest-point seeding: first seed at the median, then
  // repeatedly the point farthest from any existing center.
  std::vector<double> centers;
  centers.push_back(sorted[sorted.size() / 2]);
  while (centers.size() < k) {
    double best_d = -1.0, best_x = sorted.front();
    for (double x : sorted) {
      double d = std::numeric_limits<double>::max();
      for (double c : centers) d = std::min(d, std::abs(x - c));
      if (d > best_d) {
        best_d = d;
        best_x = x;
      }
    }
    centers.push_back(best_x);
  }

  std::vector<std::size_t> assign(sorted.size(), 0);
  for (std::size_t it = 0; it < iterations; ++it) {
    bool changed = false;
    for (std::size_t i = 0; i < sorted.size(); ++i) {
      std::size_t best = 0;
      double best_d = std::numeric_limits<double>::max();
      for (std::size_t c = 0; c < centers.size(); ++c) {
        const double d = std::abs(sorted[i] - centers[c]);
        if (d < best_d) {
          best_d = d;
          best = c;
        }
      }
      if (assign[i] != best) {
        assign[i] = best;
        changed = true;
      }
    }
    std::vector<double> sums(centers.size(), 0.0);
    std::vector<std::size_t> counts(centers.size(), 0);
    for (std::size_t i = 0; i < sorted.size(); ++i) {
      sums[assign[i]] += sorted[i];
      ++counts[assign[i]];
    }
    for (std::size_t c = 0; c < centers.size(); ++c)
      if (counts[c] > 0) centers[c] = sums[c] / static_cast<double>(counts[c]);
    if (!changed) break;
  }

  Clusters out;
  std::vector<std::size_t> order(centers.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return centers[a] < centers[b]; });
  std::vector<std::size_t> counts(centers.size(), 0);
  double wss = 0.0;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    ++counts[assign[i]];
    wss += (sorted[i] - centers[assign[i]]) * (sorted[i] - centers[assign[i]]);
  }
  for (std::size_t idx : order) {
    if (counts[idx] == 0) continue;  // drop empty clusters
    out.centers.push_back(centers[idx]);
    out.sizes.push_back(counts[idx]);
  }
  out.within_ss = wss;
  return out;
}

std::size_t estimate_mode_count(const std::vector<double>& data,
                                std::size_t max_k) {
  if (data.empty()) return 0;
  max_k = std::max<std::size_t>(max_k, 1);
  // Route-mode latency clusters are well separated relative to jitter, so
  // stepping k up to the true mode count shrinks the within-cluster sum of
  // squares sharply, while any further split only halves gaussian noise
  // (ratio ≈ 1 − 2/π ≈ 0.36). The estimate is therefore the LARGEST k
  // whose step k−1 → k still cut the WSS below 0.3×.
  std::vector<double> wss(max_k + 1, 0.0);
  for (std::size_t k = 1; k <= max_k && k <= data.size(); ++k)
    wss[k] = kmeans_1d(data, k).within_ss;
  std::size_t best = 1;
  for (std::size_t k = 2; k <= max_k && k <= data.size(); ++k) {
    if (wss[k - 1] <= 0.0) break;  // already a perfect fit
    if (wss[k] < 0.3 * wss[k - 1]) best = k;
  }
  return best;
}

std::size_t count_level_shifts(const std::vector<double>& values,
                               std::size_t window, double threshold) {
  if (window == 0 || values.size() < 2 * window) return 0;
  auto median_of = [&](std::size_t begin) {
    std::vector<double> w(values.begin() + static_cast<std::ptrdiff_t>(begin),
                          values.begin() + static_cast<std::ptrdiff_t>(begin + window));
    std::nth_element(w.begin(), w.begin() + static_cast<std::ptrdiff_t>(w.size() / 2), w.end());
    return w[w.size() / 2];
  };
  std::size_t shifts = 0;
  double prev = median_of(0);
  for (std::size_t i = window; i + window <= values.size(); i += window) {
    const double cur = median_of(i);
    if (std::abs(cur - prev) > threshold) ++shifts;
    prev = cur;
  }
  return shifts;
}

}  // namespace debuglet
