// Minimal leveled logger.
//
// Libraries log sparingly; examples and benches raise the level to narrate
// scenarios. Output is plain text on stderr — there is no configuration
// file and no global registry beyond the level.
#pragma once

#include <sstream>
#include <string>

namespace debuglet {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the global minimum level (default kWarn).
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emits one line at `level` with a subsystem tag; no-op below the minimum.
void log_line(LogLevel level, std::string_view tag, std::string_view message);

namespace detail {
class LogStream {
 public:
  LogStream(LogLevel level, std::string_view tag) : level_(level), tag_(tag) {}
  ~LogStream() { log_line(level_, tag_, stream_.str()); }
  template <typename T>
  LogStream& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::string tag_;
  std::ostringstream stream_;
};
}  // namespace detail

/// Usage: DEBUGLET_LOG(kInfo, "simnet") << "delivered " << n << " packets";
#define DEBUGLET_LOG(level, tag) \
  ::debuglet::detail::LogStream(::debuglet::LogLevel::level, (tag))

}  // namespace debuglet
