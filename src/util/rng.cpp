#include "util/rng.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace debuglet {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  if (bound == 0) throw std::invalid_argument("Rng::next_below(0)");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * next_double();
}

double Rng::normal(double mean, double stddev) {
  if (has_spare_normal_) {
    has_spare_normal_ = false;
    return mean + stddev * spare_normal_;
  }
  double u1 = next_double();
  while (u1 <= 1e-300) u1 = next_double();
  const double u2 = next_double();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  spare_normal_ = r * std::sin(theta);
  has_spare_normal_ = true;
  return mean + stddev * r * std::cos(theta);
}

double Rng::exponential(double mean) {
  double u = next_double();
  while (u <= 1e-300) u = next_double();
  return -mean * std::log(u);
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

std::size_t Rng::index(std::size_t size) {
  if (size == 0) throw std::invalid_argument("Rng::index(0)");
  return static_cast<std::size_t>(next_below(size));
}

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += (w > 0 ? w : 0);
  if (total <= 0.0)
    throw std::invalid_argument("Rng::weighted_index: no positive weight");
  double pick = next_double() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i] > 0 ? weights[i] : 0;
    if (pick < w) return i;
    pick -= w;
  }
  return weights.size() - 1;
}

Rng Rng::fork(std::uint64_t label) {
  std::uint64_t mix = next_u64() ^ (label * 0x9E3779B97F4A7C15ULL);
  return Rng(mix);
}

}  // namespace debuglet
