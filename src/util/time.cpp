#include "util/time.hpp"

#include <cmath>
#include <cstdio>

namespace debuglet {

std::string format_time(SimTime t) {
  const bool neg = t < 0;
  std::int64_t ns = neg ? -t : t;
  const std::int64_t ms = (ns / 1'000'000) % 1000;
  const std::int64_t total_s = ns / 1'000'000'000;
  const std::int64_t s = total_s % 60;
  const std::int64_t m = (total_s / 60) % 60;
  const std::int64_t h = total_s / 3600;
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%s%02lld:%02lld:%02lld.%03lld",
                neg ? "-" : "", static_cast<long long>(h),
                static_cast<long long>(m), static_cast<long long>(s),
                static_cast<long long>(ms));
  return buf;
}

std::string format_duration(SimDuration d) {
  const double abs = std::abs(static_cast<double>(d));
  char buf[48];
  if (abs < 1e3) {
    std::snprintf(buf, sizeof(buf), "%lld ns", static_cast<long long>(d));
  } else if (abs < 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2f us", static_cast<double>(d) / 1e3);
  } else if (abs < 1e9) {
    std::snprintf(buf, sizeof(buf), "%.2f ms", static_cast<double>(d) / 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f s", static_cast<double>(d) / 1e9);
  }
  return buf;
}

}  // namespace debuglet
