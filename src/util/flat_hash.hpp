#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace debuglet::util {

/// Open-addressing hash map for the simulator's hot lookups (directed
/// links, attached hosts, per-AS state). Linear probing over a
/// power-of-two table of {key, value} slots; no tombstones — `erase` is
/// not offered, callers that shrink (host detach) rebuild the index,
/// which is cheap at the handful-of-hosts scale it happens at.
///
/// `Empty` is a reserved key that must never be inserted; it marks free
/// slots. Lookups return pointers that stay valid until the next
/// insert/clear (inserts may rehash).
template <typename Key, typename Value, typename Hash, Key Empty>
class FlatHash {
 public:
  FlatHash() = default;

  void clear() {
    slots_.clear();
    size_ = 0;
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  Value* find(const Key& key) {
    if (slots_.empty()) return nullptr;
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = Hash{}(key)&mask;
    while (true) {
      Slot& slot = slots_[i];
      if (slot.key == Empty) return nullptr;
      if (slot.key == key) return &slot.value;
      i = (i + 1) & mask;
    }
  }

  const Value* find(const Key& key) const {
    return const_cast<FlatHash*>(this)->find(key);
  }

  /// Inserts or overwrites. Returns the stored value slot.
  Value* insert(const Key& key, Value value) {
    if ((size_ + 1) * 4 >= slots_.size() * 3) grow();
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = Hash{}(key)&mask;
    while (true) {
      Slot& slot = slots_[i];
      if (slot.key == Empty) {
        slot.key = key;
        slot.value = std::move(value);
        ++size_;
        return &slot.value;
      }
      if (slot.key == key) {
        slot.value = std::move(value);
        return &slot.value;
      }
      i = (i + 1) & mask;
    }
  }

 private:
  struct Slot {
    Key key = Empty;
    Value value{};
  };

  void grow() {
    std::vector<Slot> old = std::move(slots_);
    const std::size_t next = old.empty() ? 16 : old.size() * 2;
    // Default-insert (not fill-assign): values may be move-only.
    slots_ = std::vector<Slot>(next);
    size_ = 0;
    for (Slot& slot : old) {
      if (!(slot.key == Empty)) insert(slot.key, std::move(slot.value));
    }
  }

  std::vector<Slot> slots_;
  std::size_t size_ = 0;
};

/// 64-bit finalizer (splitmix64); also the event-id mixing function in
/// simnet::EventQueue.
inline std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

struct U64Hash {
  std::size_t operator()(std::uint64_t key) const {
    return static_cast<std::size_t>(mix64(key));
  }
};

}  // namespace debuglet::util
