// Wald's sequential probability ratio test over Bernoulli observations.
//
// The discrimination detector replaced its fixed-round z-test with
// sequential testing: feed one observation per twin round and stop as soon
// as the accumulated log-likelihood ratio crosses a configured error
// bound. Wald's thresholds A = log((1-beta)/alpha) and
// B = log(beta/(1-alpha)) bound the false-accept rate of H1 by ~alpha and
// the false-accept rate of H0 by ~beta, at a far lower expected sample
// count than any fixed-size test with the same error rates.
//
// Deterministic and allocation-free: the state is one double and one
// counter, and the decision freezes at the first boundary crossing.
#pragma once

#include <cmath>
#include <cstdint>

namespace debuglet {

class Sprt {
 public:
  enum class Decision : std::int8_t {
    kAcceptH0 = -1,  // evidence says the null (p = p0) holds
    kContinue = 0,
    kAcceptH1 = 1,  // evidence says the alternative (p = p1) holds
  };

  /// Tests H0: P(success) = p0 against H1: P(success) = p1 (p1 > p0) with
  /// false-H1 rate <= ~alpha and false-H0 rate <= ~beta.
  Sprt(double p0, double p1, double alpha, double beta)
      : upper_(std::log((1.0 - beta) / alpha)),
        lower_(std::log(beta / (1.0 - alpha))),
        log_success_(std::log(p1 / p0)),
        log_failure_(std::log((1.0 - p1) / (1.0 - p0))) {}

  /// Feeds one observation. No-op once a boundary was crossed — the
  /// sequential test's stopping rule is part of its error guarantee.
  void observe(bool success) {
    if (decision() != Decision::kContinue) return;
    llr_ += success ? log_success_ : log_failure_;
    observations_ += 1;
  }

  Decision decision() const {
    if (llr_ >= upper_) return Decision::kAcceptH1;
    if (llr_ <= lower_) return Decision::kAcceptH0;
    return Decision::kContinue;
  }

  double llr() const { return llr_; }
  std::uint64_t observations() const { return observations_; }
  double upper_bound() const { return upper_; }
  double lower_bound() const { return lower_; }

 private:
  double upper_;
  double lower_;
  double log_success_;
  double log_failure_;
  double llr_ = 0.0;
  std::uint64_t observations_ = 0;
};

}  // namespace debuglet
