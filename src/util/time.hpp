// Simulated-time primitives.
//
// All Debuglet libraries operate on simulated time: a signed 64-bit count of
// nanoseconds since the start of a scenario. Library code never reads the
// wall clock; determinism is a design requirement (see DESIGN.md §7).
#pragma once

#include <cstdint>
#include <string>

namespace debuglet {

/// A point in simulated time, in nanoseconds since scenario start.
using SimTime = std::int64_t;

/// A span of simulated time, in nanoseconds.
using SimDuration = std::int64_t;

namespace duration {

constexpr SimDuration nanoseconds(std::int64_t n) { return n; }
constexpr SimDuration microseconds(std::int64_t n) { return n * 1'000; }
constexpr SimDuration milliseconds(std::int64_t n) { return n * 1'000'000; }
constexpr SimDuration seconds(std::int64_t n) { return n * 1'000'000'000; }
constexpr SimDuration minutes(std::int64_t n) { return seconds(n * 60); }
constexpr SimDuration hours(std::int64_t n) { return minutes(n * 60); }

/// Converts a duration to a floating-point number of milliseconds.
constexpr double to_ms(SimDuration d) { return static_cast<double>(d) / 1e6; }

/// Converts a duration to a floating-point number of seconds.
constexpr double to_seconds(SimDuration d) {
  return static_cast<double>(d) / 1e9;
}

/// Builds a duration from a floating-point number of milliseconds.
constexpr SimDuration from_ms(double ms) {
  return static_cast<SimDuration>(ms * 1e6);
}

}  // namespace duration

/// Renders a time point as "HH:MM:SS.mmm" for logs and reports.
std::string format_time(SimTime t);

/// Renders a duration as a human-readable quantity ("12.3 ms", "4.56 s").
std::string format_duration(SimDuration d);

}  // namespace debuglet
