#include "util/bytes.hpp"

#include <bit>
#include <cstring>

namespace debuglet {

namespace {
constexpr char kHexDigits[] = "0123456789abcdef";

int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

std::string to_hex(BytesView data) {
  std::string out;
  out.reserve(data.size() * 2);
  for (std::uint8_t b : data) {
    out.push_back(kHexDigits[b >> 4]);
    out.push_back(kHexDigits[b & 0xF]);
  }
  return out;
}

Result<Bytes> from_hex(std::string_view hex) {
  if (hex.size() % 2 != 0) return fail("hex string has odd length");
  Bytes out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    const int hi = hex_value(hex[i]);
    const int lo = hex_value(hex[i + 1]);
    if (hi < 0 || lo < 0) return fail("invalid hex character");
    out.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
  }
  return out;
}

Bytes bytes_of(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

std::string string_of(BytesView b) {
  return std::string(reinterpret_cast<const char*>(b.data()), b.size());
}

void BytesWriter::u8(std::uint8_t v) { out_.push_back(v); }

void BytesWriter::u16(std::uint16_t v) {
  u8(static_cast<std::uint8_t>(v));
  u8(static_cast<std::uint8_t>(v >> 8));
}

void BytesWriter::u32(std::uint32_t v) {
  u16(static_cast<std::uint16_t>(v));
  u16(static_cast<std::uint16_t>(v >> 16));
}

void BytesWriter::u64(std::uint64_t v) {
  u32(static_cast<std::uint32_t>(v));
  u32(static_cast<std::uint32_t>(v >> 32));
}

void BytesWriter::i64(std::int64_t v) { u64(std::bit_cast<std::uint64_t>(v)); }

void BytesWriter::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

void BytesWriter::varint(std::uint64_t v) {
  while (v >= 0x80) {
    u8(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  u8(static_cast<std::uint8_t>(v));
}

void BytesWriter::raw(BytesView data) {
  out_.insert(out_.end(), data.begin(), data.end());
}

void BytesWriter::blob(BytesView data) {
  varint(data.size());
  raw(data);
}

void BytesWriter::str(std::string_view s) {
  varint(s.size());
  out_.insert(out_.end(), s.begin(), s.end());
}

Result<BytesView> BytesReader::take(std::size_t n) {
  if (remaining() < n) return fail("truncated input");
  BytesView v = data_.subspan(pos_, n);
  pos_ += n;
  return v;
}

Result<std::uint8_t> BytesReader::u8() {
  auto v = take(1);
  if (!v) return v.error();
  return (*v)[0];
}

Result<std::uint16_t> BytesReader::u16() {
  auto v = take(2);
  if (!v) return v.error();
  return static_cast<std::uint16_t>((*v)[0] | (*v)[1] << 8);
}

Result<std::uint32_t> BytesReader::u32() {
  auto v = take(4);
  if (!v) return v.error();
  std::uint32_t out = 0;
  for (int i = 3; i >= 0; --i) out = (out << 8) | (*v)[i];
  return out;
}

Result<std::uint64_t> BytesReader::u64() {
  auto v = take(8);
  if (!v) return v.error();
  std::uint64_t out = 0;
  for (int i = 7; i >= 0; --i) out = (out << 8) | (*v)[i];
  return out;
}

Result<std::int64_t> BytesReader::i64() {
  auto v = u64();
  if (!v) return v.error();
  return std::bit_cast<std::int64_t>(*v);
}

Result<double> BytesReader::f64() {
  auto v = u64();
  if (!v) return v.error();
  return std::bit_cast<double>(*v);
}

Result<std::uint64_t> BytesReader::varint() {
  std::uint64_t out = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    auto b = u8();
    if (!b) return b.error();
    out |= static_cast<std::uint64_t>(*b & 0x7F) << shift;
    if ((*b & 0x80) == 0) {
      // Reject non-canonical zero continuation bytes in the top group.
      if (shift == 63 && (*b & 0x7E) != 0) return fail("varint overflow");
      return out;
    }
  }
  return fail("varint too long");
}

Result<Bytes> BytesReader::raw(std::size_t n) {
  auto v = take(n);
  if (!v) return v.error();
  return Bytes(v->begin(), v->end());
}

Result<Bytes> BytesReader::blob() {
  auto n = varint();
  if (!n) return n.error();
  if (*n > remaining()) return fail("blob length exceeds input");
  return raw(static_cast<std::size_t>(*n));
}

Result<std::string> BytesReader::str() {
  auto b = blob();
  if (!b) return b.error();
  return std::string(b->begin(), b->end());
}

}  // namespace debuglet
