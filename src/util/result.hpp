// Result<T>: a value-or-error type for expected failures.
//
// Debuglet uses exceptions only for programming errors (precondition
// violations); anything a correct caller may legitimately encounter —
// a malformed packet, an over-budget manifest, an unknown executor —
// travels through Result<T>.
#pragma once

#include <stdexcept>
#include <string>
#include <utility>
#include <variant>

namespace debuglet {

/// Error payload carried by a failed Result.
struct Error {
  std::string message;
};

/// Creates an Error; convenience for `return fail("...")`.
inline Error fail(std::string message) { return Error{std::move(message)}; }

/// A value of type T or an Error. Accessing the wrong alternative throws
/// std::logic_error — that is a caller bug, not an expected failure.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : state_(std::move(value)) {}          // NOLINT(google-explicit-constructor)
  Result(Error error) : state_(std::move(error)) {}      // NOLINT(google-explicit-constructor)

  bool ok() const { return std::holds_alternative<T>(state_); }
  explicit operator bool() const { return ok(); }

  /// The held value. Precondition: ok().
  const T& value() const& {
    require(ok(), "Result::value() on error: " + error_message());
    return std::get<T>(state_);
  }
  T& value() & {
    require(ok(), "Result::value() on error: " + error_message());
    return std::get<T>(state_);
  }
  T&& value() && {
    require(ok(), "Result::value() on error: " + error_message());
    return std::move(std::get<T>(state_));
  }

  /// The held error. Precondition: !ok().
  const Error& error() const {
    require(!ok(), "Result::error() on success");
    return std::get<Error>(state_);
  }

  /// The error message, or "" when the result is a success.
  std::string error_message() const {
    return ok() ? std::string{} : std::get<Error>(state_).message;
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  static void require(bool cond, const std::string& what) {
    if (!cond) throw std::logic_error(what);
  }
  std::variant<T, Error> state_;
};

/// Result specialization carrier for operations with no payload.
struct Unit {};

using Status = Result<Unit>;

/// A successful Status.
inline Status ok_status() { return Status(Unit{}); }

}  // namespace debuglet
