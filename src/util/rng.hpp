// Deterministic random-number generation.
//
// Every stochastic process in the simulator (link jitter, loss, congestion
// onsets, route churn) draws from an Rng seeded explicitly by the scenario.
// Runs with equal seeds are bit-identical, which the reproduction benches
// and property tests rely on.
#pragma once

#include <cstdint>
#include <vector>

namespace debuglet {

/// splitmix64 seeded xoshiro256** generator with shaped-draw helpers.
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  /// Uniform 64-bit draw.
  std::uint64_t next_u64();

  /// Uniform in [0, bound). Precondition: bound > 0.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Standard normal via Box–Muller, scaled to (mean, stddev).
  double normal(double mean, double stddev);

  /// Exponential with the given mean (= 1/rate).
  double exponential(double mean);

  /// True with probability p (clamped to [0,1]).
  bool chance(double p);

  /// Uniform index into a container of the given size. Precondition: size>0.
  std::size_t index(std::size_t size);

  /// Weighted index draw; weights need not be normalized.
  /// Precondition: at least one weight is positive.
  std::size_t weighted_index(const std::vector<double>& weights);

  /// Derives an independent child generator; children with distinct labels
  /// produce independent streams from the same parent seed.
  Rng fork(std::uint64_t label);

 private:
  std::uint64_t s_[4];
  bool has_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

}  // namespace debuglet
