// Streaming and batch statistics used by measurement reports.
//
// RunningStats keeps O(1) state (Welford) for mean/std; SampleSet keeps the
// raw samples for percentiles, densities and cluster analysis — the tools
// needed to reproduce the paper's Table I and Figures 1–3 summaries.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace debuglet {

/// Constant-space mean / variance / extrema accumulator (Welford's method).
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// A batch of samples with order statistics and clustering helpers.
class SampleSet {
 public:
  void add(double x) { samples_.push_back(x); }
  void reserve(std::size_t n) { samples_.reserve(n); }

  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  const std::vector<double>& samples() const { return samples_; }

  double mean() const;
  double stddev() const;
  double min() const;
  double max() const;

  /// Linear-interpolated percentile, p in [0,100]. Precondition: non-empty.
  double percentile(double p) const;

  /// Fixed-bin histogram over [lo, hi]; out-of-range samples clamp to the
  /// edge bins. Returns per-bin counts.
  std::vector<std::size_t> histogram(double lo, double hi,
                                     std::size_t bins) const;

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
  void ensure_sorted() const;
};

/// Result of one-dimensional k-means clustering.
struct Clusters {
  std::vector<double> centers;       // ascending
  std::vector<std::size_t> sizes;    // same order as centers
  double within_ss = 0.0;            // total within-cluster sum of squares
};

/// One-dimensional k-means (k-means++-style farthest seeding, deterministic).
/// Precondition: k >= 1 and data non-empty.
Clusters kmeans_1d(const std::vector<double>& data, std::size_t k,
                   std::size_t iterations = 32);

/// Picks the cluster count in [1, max_k] minimizing within-cluster variance
/// with an elbow penalty; used to count UDP route modes (paper Fig. 2).
std::size_t estimate_mode_count(const std::vector<double>& data,
                                std::size_t max_k);

/// A labelled (time, value) series plus summaries; benches use it to emit
/// figure data as text.
struct Series {
  std::string label;
  std::vector<double> times_s;
  std::vector<double> values;
};

/// Counts level shifts in a series: windows whose medians differ by more
/// than `threshold`. Reproduces "RTT varies several times during a day"
/// observations (paper Fig. 3 discussion).
std::size_t count_level_shifts(const std::vector<double>& values,
                               std::size_t window, double threshold);

}  // namespace debuglet
