// Byte-buffer serialization primitives.
//
// BytesWriter/BytesReader implement a small, explicit wire format used by
// every Debuglet subsystem that serializes structures (VM modules, chain
// transactions, measurement records, packets' payloads). Integers are
// little-endian fixed width or LEB128-style varints; blobs are
// length-prefixed.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.hpp"

namespace debuglet {

using Bytes = std::vector<std::uint8_t>;
using BytesView = std::span<const std::uint8_t>;

/// Hex-encodes a byte span ("deadbeef", lowercase).
std::string to_hex(BytesView data);

/// Decodes a hex string; fails on odd length or non-hex characters.
Result<Bytes> from_hex(std::string_view hex);

/// Copies a string's bytes into a Bytes value.
Bytes bytes_of(std::string_view s);

/// Interprets a byte span as text (no validation; used for reports).
std::string string_of(BytesView b);

/// Appends primitives to a growable byte vector.
class BytesWriter {
 public:
  BytesWriter() = default;

  void u8(std::uint8_t v);
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v);
  void f64(double v);
  /// Unsigned LEB128 varint (1–10 bytes).
  void varint(std::uint64_t v);
  /// Raw bytes, no length prefix.
  void raw(BytesView data);
  /// Varint length prefix followed by the bytes.
  void blob(BytesView data);
  /// Varint length prefix followed by the string's bytes.
  void str(std::string_view s);

  const Bytes& bytes() const { return out_; }
  Bytes take() { return std::move(out_); }
  std::size_t size() const { return out_.size(); }

 private:
  Bytes out_;
};

/// Consumes primitives from a byte span; every accessor reports truncation
/// or malformed data through Result.
class BytesReader {
 public:
  explicit BytesReader(BytesView data) : data_(data) {}

  Result<std::uint8_t> u8();
  Result<std::uint16_t> u16();
  Result<std::uint32_t> u32();
  Result<std::uint64_t> u64();
  Result<std::int64_t> i64();
  Result<double> f64();
  Result<std::uint64_t> varint();
  /// Reads exactly n raw bytes.
  Result<Bytes> raw(std::size_t n);
  /// Reads a varint length prefix then that many bytes.
  Result<Bytes> blob();
  /// Reads a length-prefixed string.
  Result<std::string> str();

  std::size_t remaining() const { return data_.size() - pos_; }
  bool exhausted() const { return remaining() == 0; }
  std::size_t position() const { return pos_; }

 private:
  Result<BytesView> take(std::size_t n);
  BytesView data_;
  std::size_t pos_ = 0;
};

}  // namespace debuglet
