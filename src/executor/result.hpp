// Certified measurement results.
//
// After running a Debuglet, the executor packages the output buffer and
// execution metadata into a ResultRecord and signs it with the hosting
// AS's key — "the output can then be certified by the deploying AS,
// allowing third parties to verify the measurement results" (paper §IV-B).
#pragma once

#include "crypto/schnorr.hpp"
#include "topology/topology.hpp"
#include "util/bytes.hpp"
#include "util/result.hpp"
#include "util/time.hpp"

namespace debuglet::executor {

/// Everything an execution produced, in a canonical serializable form.
struct ResultRecord {
  std::uint64_t application_id = 0;   // marketplace object ID
  topology::InterfaceKey executor_key;
  SimTime scheduled_start = 0;
  SimTime actual_start = 0;
  SimTime end_time = 0;
  std::int64_t exit_value = 0;
  bool trapped = false;
  std::string trap_message;
  std::uint32_t packets_sent = 0;
  std::uint32_t packets_received = 0;
  std::uint64_t fuel_used = 0;
  Bytes output;

  Bytes serialize() const;
  static Result<ResultRecord> parse(BytesView data);
  bool operator==(const ResultRecord&) const = default;
};

/// A ResultRecord plus the hosting AS's signature over its serialization.
struct CertifiedResult {
  ResultRecord record;
  crypto::Signature signature;
  crypto::PublicKey signer;

  Bytes serialize() const;
  static Result<CertifiedResult> parse(BytesView data);
};

/// Signs a record with the hosting AS's key pair.
CertifiedResult certify(const ResultRecord& record,
                        const crypto::KeyPair& as_key);

/// Verifies the signature; if `expected_signer` is non-null the signer
/// public key must match it (bind the result to a known AS key).
bool verify_certified(const CertifiedResult& result,
                      const crypto::PublicKey* expected_signer = nullptr);

}  // namespace debuglet::executor
