// The Debuglet executor service.
//
// One ExecutorService runs at each ⟨AS, interface⟩ co-located with a border
// router (paper §IV-B "Location of Executors"). It accepts Debuglet
// deployments (module bytes + manifest + parameters), validates and
// admission-checks them, instantiates the DVM sandbox at the scheduled
// time (charging the ~10 ms environment setup the paper measures in §V-B),
// bridges the sandbox's host API onto the simulated network, enforces the
// manifest at run time, and certifies the result with the hosting AS's key.
//
// Host API exposed to Debuglets (all values i64):
//   dbg_now()                              -> sim time, ns     [clock]
//   dbg_rand()                             -> random value     [random]
//   dbg_param(i)                           -> deployment parameter i
//   dbg_param_count()                      -> number of parameters
//   dbg_local_addr()                       -> executor IPv4 as integer
//   dbg_local_port()                       -> port assigned to deployment
//   dbg_send(proto, addr, port, off, len)  -> 0 / <0 error     [proto cap]
//   dbg_recv(proto, off, cap, timeout_ms)  -> len / -1 timeout [proto cap]  (async)
//   dbg_sleep(ms)                          -> 0                             (async)
//   dbg_last_sender()                      -> IPv4 of last dbg_recv packet
//   dbg_last_sender_port()                 -> port of last dbg_recv packet
//   dbg_output(off, len)                   -> 0; appends to the result
//   dbg_metrics_prepare(chunk_payload)     -> chunk count   [host-metrics]
//   dbg_metrics_chunk(i, off, cap)         -> wire len; -1 bad index,
//                                             -2 cap too small [host-metrics]
//
// dbg_metrics_prepare snapshots the hosting executor's metrics registry
// and freezes its wire encoding (obs/wire) for the deployment;
// dbg_metrics_chunk then copies chunk i's wire bytes into sandbox memory.
// Bad chunk requests return negative values instead of trapping, so a
// malformed scrape request cannot kill a serving stats Debuglet.
//
// If a Debuglet never calls dbg_output but declares the conventional
// "output_buffer", the buffer's full contents become the result.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>

#include "crypto/schnorr.hpp"
#include "executor/manifest.hpp"
#include "executor/result.hpp"
#include "obs/metrics.hpp"
#include "simnet/hosts.hpp"
#include "vm/interpreter.hpp"
#include "vm/validator.hpp"

namespace debuglet::executor {

/// Timing characteristics of the sandbox bridge, matching §V-B: a roughly
/// constant environment setup time (~10 ms) and a small per-I/O boundary
/// cost (the ~300 µs/RTT Fig. 8 attributes to Go<->WA switching).
struct ExecutorConfig {
  SimDuration setup_time = duration::milliseconds(10);
  double setup_jitter_ns = 200'000.0;        // ±0.2 ms
  SimDuration io_overhead = duration::microseconds(80);
  double io_overhead_jitter_ns = 5'000.0;    // ±5 µs
  std::uint32_t inbox_capacity = 256;        // queued packets per deployment
  /// Maximum concurrently active (accepted, unfinished) deployments — the
  /// data-plane counterpart of the slot calendar's finite resources
  /// ("only a limited number of requests can be accommodated at each
  /// executor", paper §IV-C). 0 = unlimited.
  std::uint32_t max_concurrent_deployments = 16;
  /// Run Debuglets on the reference (decode-in-the-loop) interpreter
  /// instead of the decode-once engine. The two are observation-equivalent
  /// (see tests/vm_differential_test.cpp); this exists for A/B timing and
  /// as an escape hatch while diagnosing suspected dispatch bugs.
  bool use_reference_interpreter = false;
  vm::ValidationLimits validation;
  ExecutorPolicy policy;
};

/// Identifies one accepted deployment at an executor.
using DeploymentId = std::uint64_t;

/// What the initiator submits (paper: bytecode string + manifest).
struct DebugletApp {
  std::uint64_t application_id = 0;  // marketplace object ID
  Bytes module_bytes;                // serialized DVM module
  Manifest manifest;
  std::vector<std::int64_t> parameters;  // dbg_param(i) values
  /// Requested listen port (0 = executor assigns one). Rejected if another
  /// active deployment already holds it.
  std::uint16_t listen_port = 0;
  /// When non-empty: a 32-byte public key; the executor seals the result
  /// output for it before certification (paper §IV-C private results).
  Bytes seal_output_for;
};

/// Terminal state of one deployment, passed to the completion callback.
using CompletionCallback = std::function<void(const CertifiedResult&)>;

/// The executor service at one border interface.
class ExecutorService : public simnet::Host {
 public:
  /// Attaches to the network at the border-interface address of `key`.
  /// `as_key` is the hosting AS's signing key.
  ExecutorService(simnet::SimulatedNetwork& network, topology::InterfaceKey key,
                  crypto::KeyPair as_key, ExecutorConfig config,
                  std::uint64_t seed);
  ~ExecutorService() override;

  ExecutorService(const ExecutorService&) = delete;
  ExecutorService& operator=(const ExecutorService&) = delete;

  /// Validates the module and evaluates the manifest against policy.
  /// On success the Debuglet is accepted and assigned a port.
  Result<DeploymentId> deploy(DebugletApp app);

  /// Schedules an accepted deployment to start at `start_time`. The
  /// callback fires (in simulated time) when execution finishes.
  Status schedule(DeploymentId id, SimTime start_time,
                  CompletionCallback on_complete);

  /// Convenience: deploy + schedule.
  Result<DeploymentId> deploy_and_schedule(DebugletApp app, SimTime start_time,
                                           CompletionCallback on_complete);

  void on_packet(const simnet::Delivery& delivery) override;

  topology::InterfaceKey key() const { return key_; }
  net::Ipv4Address address() const { return address_; }
  const crypto::PublicKey& public_key() const { return as_key_.public_key(); }
  const ExecutorConfig& config() const { return config_; }

  /// Number of deployments not yet finished.
  std::size_t active_deployments() const;

  /// Chaos: takes the executor out of service — detaches from the network
  /// and abandons every unfinished deployment (no result is ever certified
  /// for them; their purchasers see a missing ResultReady). New deploys
  /// are rejected until revive(). Idempotent. The service object stays
  /// alive so events already queued against it resolve harmlessly.
  void halt();

  /// Returns a halted executor to service: re-attaches at its address and
  /// accepts deployments again. Abandoned deployments stay abandoned.
  Status revive();

  bool halted() const { return halted_; }

  /// Abandons all unfinished deployments without invoking their completion
  /// callbacks; returns how many were abandoned.
  std::size_t abandon_all();

 private:
  struct Deployment {
    DeploymentId id = 0;
    DebugletApp app;
    std::uint16_t port = 0;
    SimTime scheduled_start = 0;
    SimTime actual_start = 0;
    SimTime deadline = 0;
    std::unique_ptr<vm::Instance> instance;
    std::optional<vm::Execution> execution;
    CompletionCallback on_complete;
    // Runtime accounting against the manifest.
    std::uint32_t packets_sent = 0;
    std::uint32_t packets_received = 0;
    Bytes output;
    bool output_explicit = false;
    // I/O state.
    std::deque<net::Packet> inbox;
    bool waiting_recv = false;
    net::Protocol recv_protocol = net::Protocol::kUdp;
    std::uint64_t recv_offset = 0;
    std::uint64_t recv_capacity = 0;
    std::uint64_t recv_token = 0;  // invalidates stale timeout events
    net::Ipv4Address last_sender;
    std::uint16_t last_sender_port = 0;
    // Frozen registry snapshot (set by dbg_metrics_prepare; empty before).
    Bytes metrics_wire;
    std::uint32_t metrics_chunk_payload = 0;
    bool finished = false;
  };

  std::vector<vm::HostFunction> bind_host_api(Deployment& dep);
  Result<DeploymentId> admit(DebugletApp app);
  void begin_execution(DeploymentId id);
  void pump(Deployment& dep);
  void handle_block(Deployment& dep);
  void finish(Deployment& dep, const vm::RunOutcome& outcome);
  void fail_deployment(Deployment& dep, const std::string& reason);
  bool packet_matches(const Deployment& dep, const net::Packet& packet) const;
  void deliver_to_recv(Deployment& dep, const net::Packet& packet);
  SimDuration io_delay();

  simnet::SimulatedNetwork& network_;
  topology::InterfaceKey key_;
  net::Ipv4Address address_;
  crypto::KeyPair as_key_;
  ExecutorConfig config_;
  Rng rng_;
  std::map<DeploymentId, Deployment> deployments_;
  DeploymentId next_id_ = 1;
  std::uint16_t next_port_ = 50000;
  bool halted_ = false;
  // Observability handles cached at construction (no-ops while disabled).
  struct ObsHandles {
    obs::Counter* admitted = nullptr;
    obs::Counter* rejected = nullptr;
    obs::Counter* completed = nullptr;
    obs::Counter* failed = nullptr;
    obs::Counter* abandoned = nullptr;
    obs::Histogram* setup_ms = nullptr;
    obs::Histogram* io_us = nullptr;
    obs::Histogram* inbox_depth = nullptr;
    obs::Gauge* active = nullptr;
  };
  ObsHandles obs_;
};

}  // namespace debuglet::executor
