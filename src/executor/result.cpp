#include "executor/result.hpp"

namespace debuglet::executor {

Bytes ResultRecord::serialize() const {
  BytesWriter w;
  w.u64(application_id);
  w.u32(executor_key.asn);
  w.u16(executor_key.interface);
  w.i64(scheduled_start);
  w.i64(actual_start);
  w.i64(end_time);
  w.i64(exit_value);
  w.u8(trapped ? 1 : 0);
  w.str(trap_message);
  w.u32(packets_sent);
  w.u32(packets_received);
  w.u64(fuel_used);
  w.blob(BytesView(output.data(), output.size()));
  return w.take();
}

Result<ResultRecord> ResultRecord::parse(BytesView data) {
  BytesReader r(data);
  ResultRecord rec;
  auto id = r.u64();
  if (!id) return id.error();
  rec.application_id = *id;
  auto asn = r.u32();
  if (!asn) return asn.error();
  auto intf = r.u16();
  if (!intf) return intf.error();
  rec.executor_key = topology::InterfaceKey{*asn, *intf};
  auto sched = r.i64();
  if (!sched) return sched.error();
  rec.scheduled_start = *sched;
  auto start = r.i64();
  if (!start) return start.error();
  rec.actual_start = *start;
  auto end = r.i64();
  if (!end) return end.error();
  rec.end_time = *end;
  auto exit_value = r.i64();
  if (!exit_value) return exit_value.error();
  rec.exit_value = *exit_value;
  auto trapped = r.u8();
  if (!trapped) return trapped.error();
  if (*trapped > 1) return fail("result: bad trapped flag");
  rec.trapped = *trapped == 1;
  auto msg = r.str();
  if (!msg) return msg.error();
  rec.trap_message = std::move(*msg);
  auto sent = r.u32();
  if (!sent) return sent.error();
  rec.packets_sent = *sent;
  auto recv = r.u32();
  if (!recv) return recv.error();
  rec.packets_received = *recv;
  auto fuel = r.u64();
  if (!fuel) return fuel.error();
  rec.fuel_used = *fuel;
  auto output = r.blob();
  if (!output) return output.error();
  rec.output = std::move(*output);
  if (!r.exhausted()) return fail("result: trailing bytes");
  return rec;
}

Bytes CertifiedResult::serialize() const {
  BytesWriter w;
  const Bytes rec = record.serialize();
  w.blob(BytesView(rec.data(), rec.size()));
  const Bytes sig = signature.to_bytes();
  w.raw(BytesView(sig.data(), sig.size()));
  const Bytes pk = signer.to_bytes();
  w.raw(BytesView(pk.data(), pk.size()));
  return w.take();
}

Result<CertifiedResult> CertifiedResult::parse(BytesView data) {
  BytesReader r(data);
  auto rec_bytes = r.blob();
  if (!rec_bytes) return rec_bytes.error();
  auto record = ResultRecord::parse(BytesView(rec_bytes->data(),
                                              rec_bytes->size()));
  if (!record) return record.error();
  auto sig_bytes = r.raw(64);
  if (!sig_bytes) return sig_bytes.error();
  auto sig = crypto::Signature::from_bytes(
      BytesView(sig_bytes->data(), sig_bytes->size()));
  if (!sig) return sig.error();
  auto pk_bytes = r.raw(32);
  if (!pk_bytes) return pk_bytes.error();
  CertifiedResult out;
  out.record = std::move(*record);
  out.signature = *sig;
  out.signer = crypto::PublicKey{
      crypto::U256::from_be_bytes(BytesView(pk_bytes->data(),
                                            pk_bytes->size()))};
  if (!r.exhausted()) return fail("certified result: trailing bytes");
  return out;
}

CertifiedResult certify(const ResultRecord& record,
                        const crypto::KeyPair& as_key) {
  CertifiedResult out;
  out.record = record;
  const Bytes serialized = record.serialize();
  out.signature =
      as_key.sign(BytesView(serialized.data(), serialized.size()));
  out.signer = as_key.public_key();
  return out;
}

bool verify_certified(const CertifiedResult& result,
                      const crypto::PublicKey* expected_signer) {
  if (expected_signer != nullptr && !(result.signer == *expected_signer))
    return false;
  const Bytes serialized = result.record.serialize();
  return crypto::verify(result.signer,
                        BytesView(serialized.data(), serialized.size()),
                        result.signature);
}

}  // namespace debuglet::executor
