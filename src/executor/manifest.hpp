// Debuglet manifests and executor admission policy.
//
// Every Debuglet ships with a manifest the remote AS evaluates before
// execution (paper §IV-B): resource requirements (CPU, duration, memory,
// packet counts), the addresses it wants to contact, and the capabilities
// it needs. The executor enforces the manifest at run time too — a
// Debuglet that exceeds its declared budget is terminated.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "net/address.hpp"
#include "util/bytes.hpp"
#include "util/result.hpp"
#include "util/time.hpp"

namespace debuglet::executor {

/// Capabilities a Debuglet may request (per-protocol I/O plus utilities).
enum class Capability : std::uint8_t {
  kUdp = 0,
  kTcp = 1,
  kIcmp = 2,
  kRawIp = 3,
  kClock = 4,
  kRandom = 5,
  /// Read-only access to the hosting executor's metrics registry
  /// (dbg_metrics_prepare / dbg_metrics_chunk) — what the stats Debuglet
  /// uses to serve telemetry-about-telemetry.
  kHostMetrics = 6,
};

std::string capability_name(Capability c);

/// The capability needed to send/receive a given protocol.
Capability capability_for(net::Protocol p);

/// Resource and authority declaration accompanying a Debuglet.
struct Manifest {
  std::uint64_t cpu_fuel = 1'000'000;       // VM instruction budget
  SimDuration max_duration = duration::seconds(60);
  std::uint32_t peak_memory = 64 * 1024;    // linear memory bytes
  std::uint32_t max_packets_sent = 1000;
  std::uint32_t max_packets_received = 1000;
  std::vector<net::Ipv4Address> allowed_addresses;  // contactable peers
  std::set<Capability> capabilities;

  Bytes serialize() const;
  static Result<Manifest> parse(BytesView data);

  bool allows_address(net::Ipv4Address address) const;
  bool operator==(const Manifest&) const = default;
};

/// The hosting AS's policy: the ceiling a manifest may request.
struct ExecutorPolicy {
  std::uint64_t max_cpu_fuel = 50'000'000;
  SimDuration max_duration = duration::minutes(10);
  std::uint32_t max_memory = 1 << 20;
  std::uint32_t max_packets = 100'000;
  std::set<Capability> grantable{
      Capability::kUdp,    Capability::kTcp,    Capability::kIcmp,
      Capability::kRawIp,  Capability::kClock,  Capability::kRandom,
      Capability::kHostMetrics};
};

/// Admission check: does the policy accept this manifest? Returns a
/// descriptive error naming the first violated constraint.
Status evaluate_manifest(const Manifest& manifest,
                         const ExecutorPolicy& policy);

}  // namespace debuglet::executor
