#include "executor/executor.hpp"

#include <cmath>

#include "crypto/box.hpp"
#include "obs/trace.hpp"
#include "obs/wire.hpp"
#include "util/log.hpp"

namespace debuglet::executor {

namespace {

Result<net::Protocol> protocol_from_i64(std::int64_t v) {
  switch (v) {
    case static_cast<std::int64_t>(net::Protocol::kUdp):
      return net::Protocol::kUdp;
    case static_cast<std::int64_t>(net::Protocol::kTcp):
      return net::Protocol::kTcp;
    case static_cast<std::int64_t>(net::Protocol::kIcmp):
      return net::Protocol::kIcmp;
    case static_cast<std::int64_t>(net::Protocol::kRawIp):
      return net::Protocol::kRawIp;
    default:
      return fail("unknown protocol number " + std::to_string(v));
  }
}

}  // namespace

ExecutorService::ExecutorService(simnet::SimulatedNetwork& network,
                                 topology::InterfaceKey key,
                                 crypto::KeyPair as_key, ExecutorConfig config,
                                 std::uint64_t seed)
    : network_(network),
      key_(key),
      address_(network.topology().address_of(key)),
      as_key_(std::move(as_key)),
      config_(config),
      rng_(seed) {
  auto status = network_.attach_host(address_, this);
  if (!status)
    throw std::runtime_error("executor at " + key_.to_string() + ": " +
                             status.error_message());
  obs::MetricsRegistry& reg = obs::registry();
  const obs::Labels labels{{"as", std::to_string(key_.asn)},
                           {"intf", std::to_string(key_.interface)}};
  obs_.admitted = &reg.counter("executor.deployments_admitted", labels);
  obs_.rejected = &reg.counter("executor.deployments_rejected", labels);
  obs_.completed = &reg.counter("executor.deployments_completed", labels);
  obs_.failed = &reg.counter("executor.deployments_failed", labels);
  obs_.abandoned = &reg.counter("executor.deployments_abandoned", labels);
  obs_.active = &reg.gauge("executor.active_deployments", labels);
  // Timing and occupancy aggregate across executors (one histogram each).
  obs_.setup_ms = &reg.histogram("executor.sandbox_setup_ms");
  obs_.io_us = &reg.histogram("executor.host_call_io_us");
  obs_.inbox_depth = &reg.histogram("executor.inbox_depth");
}

ExecutorService::~ExecutorService() {
  if (!halted_) network_.detach_host(address_);
}

void ExecutorService::halt() {
  if (halted_) return;
  halted_ = true;
  network_.detach_host(address_);
  abandon_all();
}

Status ExecutorService::revive() {
  if (!halted_) return ok_status();
  if (auto s = network_.attach_host(address_, this); !s) return s;
  halted_ = false;
  return ok_status();
}

std::size_t ExecutorService::abandon_all() {
  std::size_t abandoned = 0;
  for (auto& [_, dep] : deployments_) {
    if (dep.finished) continue;
    // Marking finished (without calling on_complete) is the whole trick:
    // every queued lambda — start, sleep wake, recv timeout, io resume —
    // checks this flag and becomes a no-op, so abandonment is safe with
    // events in flight.
    dep.finished = true;
    dep.waiting_recv = false;
    ++dep.recv_token;
    ++abandoned;
    obs_.abandoned->add();
  }
  if (abandoned > 0)
    obs_.active->set(static_cast<double>(active_deployments()));
  return abandoned;
}

std::size_t ExecutorService::active_deployments() const {
  std::size_t n = 0;
  for (const auto& [_, dep] : deployments_)
    if (!dep.finished) ++n;
  return n;
}

Result<DeploymentId> ExecutorService::deploy(DebugletApp app) {
  auto id = admit(std::move(app));
  if (id) {
    obs_.admitted->add();
    obs_.active->set(static_cast<double>(active_deployments()));
  } else {
    obs_.rejected->add();
  }
  return id;
}

Result<DeploymentId> ExecutorService::admit(DebugletApp app) {
  if (halted_)
    return fail("executor at " + key_.to_string() + " is halted");
  if (config_.max_concurrent_deployments != 0 &&
      active_deployments() >= config_.max_concurrent_deployments)
    return fail("executor at capacity: " +
                std::to_string(config_.max_concurrent_deployments) +
                " active deployments");
  if (auto s = evaluate_manifest(app.manifest, config_.policy); !s)
    return fail("manifest rejected: " + s.error_message());

  auto module = vm::Module::parse(
      BytesView(app.module_bytes.data(), app.module_bytes.size()));
  if (!module) return fail("module rejected: " + module.error_message());

  vm::ValidationLimits limits = config_.validation;
  limits.max_memory = std::min(limits.max_memory, app.manifest.peak_memory);
  if (auto s = vm::validate(*module, limits); !s)
    return fail("module rejected: " + s.error_message());

  Deployment dep;
  dep.id = next_id_++;
  dep.port = app.listen_port != 0 ? app.listen_port : next_port_++;
  for (const auto& [_, other] : deployments_) {
    if (!other.finished && other.port == dep.port)
      return fail("port " + std::to_string(dep.port) +
                  " already in use by an active deployment");
  }
  dep.app = std::move(app);
  const DeploymentId id = dep.id;
  deployments_.emplace(id, std::move(dep));
  return id;
}

Status ExecutorService::schedule(DeploymentId id, SimTime start_time,
                                 CompletionCallback on_complete) {
  auto it = deployments_.find(id);
  if (it == deployments_.end())
    return fail("unknown deployment " + std::to_string(id));
  Deployment& dep = it->second;
  dep.scheduled_start = start_time;
  dep.on_complete = std::move(on_complete);
  network_.queue().schedule_at(start_time,
                               [this, id] { begin_execution(id); });
  return ok_status();
}

Result<DeploymentId> ExecutorService::deploy_and_schedule(
    DebugletApp app, SimTime start_time, CompletionCallback on_complete) {
  auto id = deploy(std::move(app));
  if (!id) return id;
  if (auto s = schedule(*id, start_time, std::move(on_complete)); !s)
    return s.error();
  return id;
}

SimDuration ExecutorService::io_delay() {
  SimDuration d = config_.io_overhead;
  if (config_.io_overhead_jitter_ns > 0.0)
    d += static_cast<SimDuration>(
        std::abs(rng_.normal(0.0, config_.io_overhead_jitter_ns)));
  obs_.io_us->record(static_cast<double>(d) / 1000.0);
  return d;
}

std::vector<vm::HostFunction> ExecutorService::bind_host_api(Deployment& dep) {
  // Host closures capture the deployment by id and re-look it up on every
  // call: the Deployment lives in a std::map whose nodes are stable, but
  // re-lookup also guards against calls after erasure.
  const DeploymentId id = dep.id;

  auto require_capability = [this, id](Capability cap) -> Status {
    const Deployment& dep = deployments_.at(id);
    if (!dep.app.manifest.capabilities.contains(cap))
      return fail("manifest lacks capability '" + capability_name(cap) + "'");
    return ok_status();
  };

  std::vector<vm::HostFunction> api;

  api.push_back(vm::HostFunction{
      "dbg_now", 0,
      [this, require_capability](vm::Instance&,
                                 std::span<const std::int64_t>)
          -> Result<std::int64_t> {
        if (auto s = require_capability(Capability::kClock); !s)
          return s.error();
        return static_cast<std::int64_t>(network_.now());
      },
      false});

  api.push_back(vm::HostFunction{
      "dbg_rand", 0,
      [this, require_capability](vm::Instance&,
                                 std::span<const std::int64_t>)
          -> Result<std::int64_t> {
        if (auto s = require_capability(Capability::kRandom); !s)
          return s.error();
        return static_cast<std::int64_t>(rng_.next_u64());
      },
      false});

  api.push_back(vm::HostFunction{
      "dbg_param", 1,
      [this, id](vm::Instance&, std::span<const std::int64_t> args)
          -> Result<std::int64_t> {
        const Deployment& dep = deployments_.at(id);
        if (args[0] < 0 ||
            args[0] >= static_cast<std::int64_t>(dep.app.parameters.size()))
          return fail("parameter index " + std::to_string(args[0]) +
                      " out of range");
        return dep.app.parameters[static_cast<std::size_t>(args[0])];
      },
      false});

  api.push_back(vm::HostFunction{
      "dbg_param_count", 0,
      [this, id](vm::Instance&, std::span<const std::int64_t>)
          -> Result<std::int64_t> {
        return static_cast<std::int64_t>(
            deployments_.at(id).app.parameters.size());
      },
      false});

  api.push_back(vm::HostFunction{
      "dbg_local_addr", 0,
      [this](vm::Instance&, std::span<const std::int64_t>)
          -> Result<std::int64_t> {
        return static_cast<std::int64_t>(address_.value);
      },
      false});

  api.push_back(vm::HostFunction{
      "dbg_local_port", 0,
      [this, id](vm::Instance&, std::span<const std::int64_t>)
          -> Result<std::int64_t> {
        return deployments_.at(id).port;
      },
      false});

  api.push_back(vm::HostFunction{
      "dbg_last_sender", 0,
      [this, id](vm::Instance&, std::span<const std::int64_t>)
          -> Result<std::int64_t> {
        return deployments_.at(id).last_sender.value;
      },
      false});

  api.push_back(vm::HostFunction{
      "dbg_last_sender_port", 0,
      [this, id](vm::Instance&, std::span<const std::int64_t>)
          -> Result<std::int64_t> {
        return deployments_.at(id).last_sender_port;
      },
      false});

  api.push_back(vm::HostFunction{
      "dbg_output", 2,
      [this, id](vm::Instance& inst, std::span<const std::int64_t> args)
          -> Result<std::int64_t> {
        Deployment& dep = deployments_.at(id);
        if (args[0] < 0 || args[1] < 0) return fail("negative output range");
        auto data = inst.read_memory(static_cast<std::uint64_t>(args[0]),
                                     static_cast<std::uint64_t>(args[1]));
        if (!data) return data.error();
        dep.output_explicit = true;
        dep.output.insert(dep.output.end(), data->begin(), data->end());
        return 0;
      },
      false});

  api.push_back(vm::HostFunction{
      "dbg_send", 5,
      [this, id, require_capability](vm::Instance& inst,
                                     std::span<const std::int64_t> args)
          -> Result<std::int64_t> {
        Deployment& dep = deployments_.at(id);
        auto protocol = protocol_from_i64(args[0]);
        if (!protocol) return protocol.error();
        if (auto s = require_capability(capability_for(*protocol)); !s)
          return s.error();
        const net::Ipv4Address destination(
            static_cast<std::uint32_t>(args[1]));
        if (!dep.app.manifest.allows_address(destination))
          return fail("destination " + destination.to_string() +
                      " not in manifest allowlist");
        if (dep.packets_sent >= dep.app.manifest.max_packets_sent)
          return fail("packet send budget exhausted");
        if (args[3] < 0 || args[4] < 0) return fail("negative send range");
        auto payload = inst.read_memory(static_cast<std::uint64_t>(args[3]),
                                        static_cast<std::uint64_t>(args[4]));
        if (!payload) return payload.error();

        net::ProbeSpec spec;
        spec.protocol = *protocol;
        spec.source = address_;
        spec.destination = destination;
        spec.source_port = dep.port;
        spec.destination_port = static_cast<std::uint16_t>(args[2]);
        spec.sequence = static_cast<std::uint16_t>(dep.packets_sent);
        spec.tcp_sequence = static_cast<std::uint32_t>(rng_.next_u64());
        spec.payload = std::move(*payload);
        auto wire = net::build_probe(spec);
        if (!wire) return wire.error();

        ++dep.packets_sent;
        // The sandbox boundary costs a small constant before the packet
        // reaches the wire (Fig. 8's Go<->WA switching cost).
        network_.queue().schedule_after(
            io_delay(), [this, wire = std::move(*wire)]() mutable {
              auto s = network_.send(address_, std::move(wire));
              if (!s)
                DEBUGLET_LOG(kWarn, "executor")
                    << "send failed: " << s.error_message();
            });
        return 0;
      },
      false});

  api.push_back(vm::HostFunction{
      "dbg_metrics_prepare", 1,
      [this, id, require_capability](vm::Instance&,
                                     std::span<const std::int64_t> args)
          -> Result<std::int64_t> {
        if (auto s = require_capability(Capability::kHostMetrics); !s)
          return s.error();
        Deployment& dep = deployments_.at(id);
        if (args[0] < static_cast<std::int64_t>(obs::wire::kMinChunkPayload) ||
            args[0] > static_cast<std::int64_t>(obs::wire::kMaxChunkPayload))
          return fail("chunk payload " + std::to_string(args[0]) +
                      " outside [" +
                      std::to_string(obs::wire::kMinChunkPayload) + ", " +
                      std::to_string(obs::wire::kMaxChunkPayload) + "]");
        // Snapshot the ACTIVE registry — the one this executor's own
        // counters live in — and freeze its encoding so every chunk a
        // scraper fetches describes one consistent instant.
        dep.metrics_wire = obs::wire::encode_snapshot(obs::registry().snapshot());
        dep.metrics_chunk_payload = static_cast<std::uint32_t>(args[0]);
        const std::size_t count = obs::wire::chunk_count(
            dep.metrics_wire.size(), dep.metrics_chunk_payload);
        if (count > obs::wire::kMaxChunks)
          return fail("snapshot needs more than " +
                      std::to_string(obs::wire::kMaxChunks) + " chunks");
        return static_cast<std::int64_t>(count);
      },
      false});

  api.push_back(vm::HostFunction{
      "dbg_metrics_chunk", 3,
      [this, id, require_capability](vm::Instance& inst,
                                     std::span<const std::int64_t> args)
          -> Result<std::int64_t> {
        if (auto s = require_capability(Capability::kHostMetrics); !s)
          return s.error();
        Deployment& dep = deployments_.at(id);
        if (dep.metrics_wire.empty())
          return fail("dbg_metrics_chunk before dbg_metrics_prepare");
        if (args[1] < 0 || args[2] < 0)
          return fail("negative chunk destination range");
        const std::size_t count = obs::wire::chunk_count(
            dep.metrics_wire.size(), dep.metrics_chunk_payload);
        // Out-of-range indices come from the network (a scraper's request),
        // not from the Debuglet's own logic: report, don't trap.
        if (args[0] < 0 || args[0] >= static_cast<std::int64_t>(count))
          return -1;
        auto chunk = obs::wire::build_chunk(
            BytesView(dep.metrics_wire.data(), dep.metrics_wire.size()),
            static_cast<std::size_t>(args[0]), dep.metrics_chunk_payload);
        if (!chunk) return chunk.error();
        if (chunk->size() > static_cast<std::uint64_t>(args[2])) return -2;
        if (auto s = inst.write_memory(
                static_cast<std::uint64_t>(args[1]),
                BytesView(chunk->data(), chunk->size()));
            !s)
          return s.error();
        return static_cast<std::int64_t>(chunk->size());
      },
      false});

  // Async imports: the executor resumes these from network/timer events.
  api.push_back(vm::HostFunction{"dbg_recv", 4, nullptr, true});
  api.push_back(vm::HostFunction{"dbg_sleep", 1, nullptr, true});

  return api;
}

void ExecutorService::begin_execution(DeploymentId id) {
  auto it = deployments_.find(id);
  if (it == deployments_.end() || it->second.finished) return;

  SimDuration setup = config_.setup_time;
  if (config_.setup_jitter_ns > 0.0)
    setup += static_cast<SimDuration>(
        std::abs(rng_.normal(0.0, config_.setup_jitter_ns)));
  obs_.setup_ms->record(duration::to_ms(setup));

  network_.queue().schedule_after(setup, [this, id] {
    auto it = deployments_.find(id);
    if (it == deployments_.end() || it->second.finished) return;
    Deployment& dep = it->second;
    dep.actual_start = network_.now();
    dep.deadline = dep.actual_start + dep.app.manifest.max_duration;

    auto module = vm::Module::parse(
        BytesView(dep.app.module_bytes.data(), dep.app.module_bytes.size()));
    if (!module) {
      fail_deployment(dep, "module parse: " + module.error_message());
      return;
    }
    vm::ExecutionLimits limits;
    limits.fuel = dep.app.manifest.cpu_fuel;
    auto instance = vm::Instance::create(std::move(*module),
                                         bind_host_api(dep), limits);
    if (!instance) {
      fail_deployment(dep, "instantiation: " + instance.error_message());
      return;
    }
    dep.instance = std::make_unique<vm::Instance>(std::move(*instance));
    auto execution = vm::Execution::start_entry(
        *dep.instance, config_.use_reference_interpreter
                           ? vm::Engine::kReference
                           : vm::Engine::kFast);
    if (!execution) {
      fail_deployment(dep, "start: " + execution.error_message());
      return;
    }
    dep.execution.emplace(std::move(*execution));
    pump(dep);
  });
}

void ExecutorService::pump(Deployment& dep) {
  while (!dep.finished && dep.execution->state() == vm::Execution::State::kReady) {
    const auto state = dep.execution->step();
    if (state == vm::Execution::State::kDone) {
      finish(dep, dep.execution->outcome());
      return;
    }
    if (state == vm::Execution::State::kBlocked) handle_block(dep);
  }
}

void ExecutorService::handle_block(Deployment& dep) {
  const vm::Execution::BlockInfo& block = dep.execution->block();
  if (network_.now() > dep.deadline) {
    fail_deployment(dep, "execution deadline exceeded");
    return;
  }

  if (block.import_name == "dbg_sleep") {
    // Negative durations clamp to zero so Debuglets can pace with
    // sleep(interval - elapsed) without guarding the subtraction.
    const std::int64_t ms =
        block.args.empty() ? 0 : std::max<std::int64_t>(block.args[0], 0);
    const SimTime wake =
        std::min(network_.now() + duration::milliseconds(ms), dep.deadline);
    const DeploymentId id = dep.id;
    network_.queue().schedule_at(wake, [this, id] {
      auto it = deployments_.find(id);
      if (it == deployments_.end() || it->second.finished) return;
      Deployment& dep = it->second;
      if (network_.now() >= dep.deadline) {
        fail_deployment(dep, "execution deadline exceeded");
        return;
      }
      dep.execution->resume(0);
      pump(dep);
    });
    return;
  }

  if (block.import_name == "dbg_recv") {
    auto protocol = protocol_from_i64(block.args[0]);
    if (!protocol) {
      dep.execution->fail("dbg_recv: " + protocol.error_message());
      finish(dep, dep.execution->outcome());
      return;
    }
    if (!dep.app.manifest.capabilities.contains(capability_for(*protocol))) {
      dep.execution->fail("dbg_recv: manifest lacks capability '" +
                          capability_name(capability_for(*protocol)) + "'");
      finish(dep, dep.execution->outcome());
      return;
    }
    dep.recv_protocol = *protocol;
    dep.recv_offset = static_cast<std::uint64_t>(block.args[1]);
    dep.recv_capacity = static_cast<std::uint64_t>(block.args[2]);
    const std::int64_t timeout_ms = block.args[3];

    // Serve from the inbox if a matching packet already arrived.
    for (auto it = dep.inbox.begin(); it != dep.inbox.end(); ++it) {
      if (it->protocol == *protocol) {
        net::Packet packet = std::move(*it);
        dep.inbox.erase(it);
        deliver_to_recv(dep, packet);
        return;
      }
    }

    dep.waiting_recv = true;
    const std::uint64_t token = ++dep.recv_token;
    const SimTime deadline =
        timeout_ms < 0
            ? dep.deadline
            : std::min(network_.now() + duration::milliseconds(timeout_ms),
                       dep.deadline);
    const DeploymentId id = dep.id;
    network_.queue().schedule_at(deadline, [this, id, token] {
      auto it = deployments_.find(id);
      if (it == deployments_.end() || it->second.finished) return;
      Deployment& dep = it->second;
      if (!dep.waiting_recv || dep.recv_token != token) return;
      dep.waiting_recv = false;
      if (network_.now() >= dep.deadline) {
        fail_deployment(dep, "execution deadline exceeded");
        return;
      }
      dep.execution->resume(-1);  // timeout
      pump(dep);
    });
    return;
  }

  dep.execution->fail("unknown async import '" + block.import_name + "'");
  finish(dep, dep.execution->outcome());
}

bool ExecutorService::packet_matches(const Deployment& dep,
                                     const net::Packet& packet) const {
  switch (packet.protocol) {
    case net::Protocol::kUdp:
      return packet.udp && packet.udp->destination_port == dep.port;
    case net::Protocol::kTcp:
      return packet.tcp && packet.tcp->destination_port == dep.port;
    case net::Protocol::kIcmp:
      // ICMP echo headers carry (dst port, src port) in
      // (identifier, sequence) — see net::build_probe.
      return packet.icmp && packet.icmp->identifier == dep.port;
    case net::Protocol::kRawIp:
      // Raw IP has no ports; deliver to deployments holding the capability.
      return dep.app.manifest.capabilities.contains(Capability::kRawIp);
  }
  return false;
}

void ExecutorService::deliver_to_recv(Deployment& dep,
                                      const net::Packet& packet) {
  if (dep.packets_received >= dep.app.manifest.max_packets_received) {
    fail_deployment(dep, "packet receive budget exhausted");
    return;
  }
  ++dep.packets_received;
  dep.last_sender = packet.ip.source;
  dep.last_sender_port = 0;
  if (packet.udp) dep.last_sender_port = packet.udp->source_port;
  if (packet.tcp) dep.last_sender_port = packet.tcp->source_port;
  if (packet.icmp) dep.last_sender_port = packet.icmp->sequence;

  const std::uint64_t n =
      std::min<std::uint64_t>(packet.payload.size(), dep.recv_capacity);
  auto s = dep.instance->write_memory(
      dep.recv_offset, BytesView(packet.payload.data(), n));
  if (!s) {
    dep.execution->fail("dbg_recv: " + s.error_message());
    finish(dep, dep.execution->outcome());
    return;
  }
  // Crossing the sandbox boundary costs the same small constant as send.
  const DeploymentId id = dep.id;
  network_.queue().schedule_after(io_delay(), [this, id, n] {
    auto it = deployments_.find(id);
    if (it == deployments_.end() || it->second.finished) return;
    Deployment& dep = it->second;
    dep.execution->resume(static_cast<std::int64_t>(n));
    pump(dep);
  });
}

void ExecutorService::on_packet(const simnet::Delivery& delivery) {
  for (auto& [id, dep] : deployments_) {
    // Scheduled-but-not-yet-started deployments buffer their packets in
    // the inbox; only finished ones stop receiving.
    if (dep.finished) continue;
    if (!packet_matches(dep, delivery.packet)) continue;
    if (dep.waiting_recv && dep.recv_protocol == delivery.packet.protocol) {
      dep.waiting_recv = false;
      ++dep.recv_token;  // cancel the pending timeout
      deliver_to_recv(dep, delivery.packet);
    } else {
      if (dep.inbox.size() < config_.inbox_capacity)
        dep.inbox.push_back(delivery.packet);
      // else: inbox overflow, packet dropped (bounded memory per sandbox)
      obs_.inbox_depth->record(static_cast<double>(dep.inbox.size()));
    }
    return;
  }
  DEBUGLET_LOG(kDebug, "executor")
      << key_.to_string() << ": unmatched packet dropped";
}

void ExecutorService::finish(Deployment& dep, const vm::RunOutcome& outcome) {
  if (dep.finished) return;
  dep.finished = true;
  (outcome.trapped ? obs_.failed : obs_.completed)->add();
  obs_.active->set(static_cast<double>(active_deployments()));
  if (obs::tracer().enabled()) {
    obs::Span span;
    span.name = "deployment#" + std::to_string(dep.id);
    span.category = "executor " + key_.to_string();
    // Deployments that fail before the sandbox starts have no actual_start;
    // anchor their span at the failure instant.
    span.sim_begin = dep.actual_start != 0 ? dep.actual_start : network_.now();
    span.sim_end = network_.now();
    obs::tracer().record(std::move(span));
  }

  ResultRecord record;
  record.application_id = dep.app.application_id;
  record.executor_key = key_;
  record.scheduled_start = dep.scheduled_start;
  record.actual_start = dep.actual_start;
  record.end_time = network_.now();
  record.exit_value = outcome.value;
  record.trapped = outcome.trapped;
  record.trap_message = outcome.trap_message;
  record.packets_sent = dep.packets_sent;
  record.packets_received = dep.packets_received;
  record.fuel_used = outcome.fuel_used;
  if (dep.output_explicit) {
    record.output = dep.output;
  } else if (dep.instance) {
    if (auto buf = dep.instance->read_buffer(vm::kOutputBuffer); buf)
      record.output = std::move(*buf);
  }

  // Private results (§IV-C): seal the output for the initiator's key so
  // the published record is unreadable by third parties. The signature
  // covers the sealed bytes — certification and privacy compose.
  if (dep.app.seal_output_for.size() == 32) {
    const crypto::PublicKey recipient{crypto::U256::from_be_bytes(
        BytesView(dep.app.seal_output_for.data(), 32))};
    record.output = crypto::seal_for(
        recipient, BytesView(record.output.data(), record.output.size()),
        rng_.next_u64());
  }

  const CertifiedResult certified = certify(record, as_key_);
  if (dep.on_complete) dep.on_complete(certified);
}

void ExecutorService::fail_deployment(Deployment& dep,
                                      const std::string& reason) {
  if (dep.finished) return;
  vm::RunOutcome outcome;
  outcome.trapped = true;
  outcome.trap = vm::TrapKind::kHostError;
  outcome.trap_message = reason;
  finish(dep, outcome);
}

}  // namespace debuglet::executor
