#include "executor/manifest.hpp"

#include <algorithm>

namespace debuglet::executor {

std::string capability_name(Capability c) {
  switch (c) {
    case Capability::kUdp: return "udp";
    case Capability::kTcp: return "tcp";
    case Capability::kIcmp: return "icmp";
    case Capability::kRawIp: return "rawip";
    case Capability::kClock: return "clock";
    case Capability::kRandom: return "random";
    case Capability::kHostMetrics: return "host-metrics";
  }
  return "capability-" + std::to_string(static_cast<int>(c));
}

Capability capability_for(net::Protocol p) {
  switch (p) {
    case net::Protocol::kUdp: return Capability::kUdp;
    case net::Protocol::kTcp: return Capability::kTcp;
    case net::Protocol::kIcmp: return Capability::kIcmp;
    case net::Protocol::kRawIp: return Capability::kRawIp;
  }
  return Capability::kRawIp;
}

Bytes Manifest::serialize() const {
  BytesWriter w;
  w.u64(cpu_fuel);
  w.i64(max_duration);
  w.u32(peak_memory);
  w.u32(max_packets_sent);
  w.u32(max_packets_received);
  w.varint(allowed_addresses.size());
  for (net::Ipv4Address a : allowed_addresses) w.u32(a.value);
  w.varint(capabilities.size());
  for (Capability c : capabilities) w.u8(static_cast<std::uint8_t>(c));
  return w.take();
}

Result<Manifest> Manifest::parse(BytesView data) {
  BytesReader r(data);
  Manifest m;
  auto fuel = r.u64();
  if (!fuel) return fuel.error();
  m.cpu_fuel = *fuel;
  auto dur = r.i64();
  if (!dur) return dur.error();
  if (*dur < 0) return fail("manifest: negative duration");
  m.max_duration = *dur;
  auto mem = r.u32();
  if (!mem) return mem.error();
  m.peak_memory = *mem;
  auto sent = r.u32();
  if (!sent) return sent.error();
  m.max_packets_sent = *sent;
  auto recv = r.u32();
  if (!recv) return recv.error();
  m.max_packets_received = *recv;
  auto addr_count = r.varint();
  if (!addr_count) return addr_count.error();
  if (*addr_count > 4096) return fail("manifest: too many addresses");
  m.allowed_addresses.reserve(*addr_count);
  for (std::uint64_t i = 0; i < *addr_count; ++i) {
    auto a = r.u32();
    if (!a) return a.error();
    m.allowed_addresses.push_back(net::Ipv4Address(*a));
  }
  auto cap_count = r.varint();
  if (!cap_count) return cap_count.error();
  if (*cap_count > 16) return fail("manifest: too many capabilities");
  for (std::uint64_t i = 0; i < *cap_count; ++i) {
    auto c = r.u8();
    if (!c) return c.error();
    if (*c > static_cast<std::uint8_t>(Capability::kHostMetrics))
      return fail("manifest: unknown capability " + std::to_string(*c));
    m.capabilities.insert(static_cast<Capability>(*c));
  }
  if (!r.exhausted()) return fail("manifest: trailing bytes");
  return m;
}

bool Manifest::allows_address(net::Ipv4Address address) const {
  return std::find(allowed_addresses.begin(), allowed_addresses.end(),
                   address) != allowed_addresses.end();
}

Status evaluate_manifest(const Manifest& manifest,
                         const ExecutorPolicy& policy) {
  if (manifest.cpu_fuel > policy.max_cpu_fuel)
    return fail("manifest requests " + std::to_string(manifest.cpu_fuel) +
                " fuel, policy grants at most " +
                std::to_string(policy.max_cpu_fuel));
  if (manifest.max_duration > policy.max_duration)
    return fail("manifest duration " + format_duration(manifest.max_duration) +
                " exceeds policy limit " +
                format_duration(policy.max_duration));
  if (manifest.peak_memory > policy.max_memory)
    return fail("manifest memory " + std::to_string(manifest.peak_memory) +
                " exceeds policy limit " + std::to_string(policy.max_memory));
  if (manifest.max_packets_sent > policy.max_packets ||
      manifest.max_packets_received > policy.max_packets)
    return fail("manifest packet budget exceeds policy limit " +
                std::to_string(policy.max_packets));
  for (Capability c : manifest.capabilities) {
    if (!policy.grantable.contains(c))
      return fail("capability '" + capability_name(c) +
                  "' not grantable by this executor");
  }
  if (manifest.allowed_addresses.empty() &&
      (manifest.capabilities.contains(Capability::kUdp) ||
       manifest.capabilities.contains(Capability::kTcp) ||
       manifest.capabilities.contains(Capability::kIcmp) ||
       manifest.capabilities.contains(Capability::kRawIp)))
    return fail("manifest requests network capability but lists no "
                "contactable addresses");
  return ok_status();
}

}  // namespace debuglet::executor
