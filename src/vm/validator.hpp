// Static validation of DVM modules.
//
// Executors validate every received Debuglet before instantiation (the
// paper's executors must "allow the safe execution of unverified code from
// other ASes", §IV-B). Validation guarantees that a passing module can trap
// at runtime only through well-defined checks (bounds, fuel, div-by-zero,
// explicit abort) — never through wild jumps, unknown opcodes, or
// out-of-range local/global/function/import indices.
#pragma once

#include "util/result.hpp"
#include "vm/module.hpp"

namespace debuglet::vm {

/// Structural limits a host imposes on modules it will run.
struct ValidationLimits {
  std::uint32_t max_memory = 1 << 20;       // bytes
  std::uint32_t max_functions = 1024;
  std::uint32_t max_code_length = 1 << 16;  // instructions per function
  std::uint32_t max_locals = 256;           // params + locals per function
  std::uint32_t max_globals = 256;
  /// Exact parameter count the entry point must declare. Executors run
  /// parameterless Debuglets (0); the forwarding-path hop-program ABI
  /// passes per-hop facts as arguments instead.
  std::uint32_t entry_param_count = 0;
};

/// Checks a module against the limits and internal consistency rules:
///  - memory size within limits; buffers lie inside memory, names unique;
///  - function names unique and non-empty; an entry point exists;
///  - every jump target is an in-function instruction index;
///  - every local/global/function/import index in code is in range;
///  - every immediate-carrying opcode has a sensible immediate
///    (non-negative indices, offsets within memory).
Status validate(const Module& module,
                const ValidationLimits& limits = ValidationLimits{});

}  // namespace debuglet::vm
