#include <algorithm>

#include "vm/dispatch.hpp"

namespace debuglet::vm {

namespace {

bool is_control(Opcode op) {
  switch (op) {
    case Opcode::kJump:
    case Opcode::kJumpIf:
    case Opcode::kJumpIfZ:
    case Opcode::kCall:
    case Opcode::kCallHost:
    case Opcode::kReturn:
    case Opcode::kAbort:
      return true;
    default:
      return false;
  }
}

bool is_comparison(Opcode op) {
  switch (op) {
    case Opcode::kEq:
    case Opcode::kNe:
    case Opcode::kLtS:
    case Opcode::kGtS:
    case Opcode::kLeS:
    case Opcode::kGeS:
      return true;
    default:
      return false;
  }
}

// Binary operators that can never trap regardless of operand values.
bool is_nontrapping_binop(Opcode op) {
  switch (op) {
    case Opcode::kAdd:
    case Opcode::kSub:
    case Opcode::kMul:
    case Opcode::kAnd:
    case Opcode::kOr:
    case Opcode::kXor:
    case Opcode::kShl:
    case Opcode::kShrS:
    case Opcode::kShrU:
      return true;
    default:
      return is_comparison(op);
  }
}

// div_s/rem_s trap (or hit the INT64_MIN special case) only for divisors 0
// and -1; any other constant divisor makes the pair fusable.
bool is_safe_const_divisor(Opcode op, std::int64_t k) {
  return (op == Opcode::kDivS || op == Opcode::kRemS) && k != 0 && k != -1;
}

FusedOp base_fused_op(Opcode op) {
  switch (op) {
    case Opcode::kNop: return FusedOp::kNop;
    case Opcode::kConst: return FusedOp::kConst;
    case Opcode::kDrop: return FusedOp::kDrop;
    case Opcode::kDup: return FusedOp::kDup;
    case Opcode::kLocalGet: return FusedOp::kLocalGet;
    case Opcode::kLocalSet: return FusedOp::kLocalSet;
    case Opcode::kGlobalGet: return FusedOp::kGlobalGet;
    case Opcode::kGlobalSet: return FusedOp::kGlobalSet;
    case Opcode::kAdd: return FusedOp::kAdd;
    case Opcode::kSub: return FusedOp::kSub;
    case Opcode::kMul: return FusedOp::kMul;
    case Opcode::kDivS: return FusedOp::kDivS;
    case Opcode::kRemS: return FusedOp::kRemS;
    case Opcode::kAnd: return FusedOp::kAnd;
    case Opcode::kOr: return FusedOp::kOr;
    case Opcode::kXor: return FusedOp::kXor;
    case Opcode::kShl: return FusedOp::kShl;
    case Opcode::kShrS: return FusedOp::kShrS;
    case Opcode::kShrU: return FusedOp::kShrU;
    case Opcode::kEq: return FusedOp::kEq;
    case Opcode::kNe: return FusedOp::kNe;
    case Opcode::kLtS: return FusedOp::kLtS;
    case Opcode::kGtS: return FusedOp::kGtS;
    case Opcode::kLeS: return FusedOp::kLeS;
    case Opcode::kGeS: return FusedOp::kGeS;
    case Opcode::kEqz: return FusedOp::kEqz;
    case Opcode::kLoad8: return FusedOp::kLoad8;
    case Opcode::kLoad32: return FusedOp::kLoad32;
    case Opcode::kLoad64: return FusedOp::kLoad64;
    case Opcode::kStore8: return FusedOp::kStore8;
    case Opcode::kStore32: return FusedOp::kStore32;
    case Opcode::kStore64: return FusedOp::kStore64;
    case Opcode::kMemSize: return FusedOp::kMemSize;
    case Opcode::kJump: return FusedOp::kJump;
    case Opcode::kJumpIf: return FusedOp::kJumpIf;
    case Opcode::kJumpIfZ: return FusedOp::kJumpIfZ;
    case Opcode::kCall: return FusedOp::kCall;
    case Opcode::kCallHost: return FusedOp::kCallHost;
    case Opcode::kReturn: return FusedOp::kReturn;
    case Opcode::kAbort: return FusedOp::kAbort;
  }
  return FusedOp::kNop;
}

// The structural facts translation relies on. vm::validate() established
// them already for any module an executor runs; re-checking here keeps
// Instance::create safe for callers that skipped validation.
Status check_function(const Module& m, const Function& f) {
  const auto code_len = static_cast<std::int64_t>(f.code.size());
  const auto local_total =
      static_cast<std::int64_t>(f.param_count) + f.local_count;
  for (std::size_t pc = 0; pc < f.code.size(); ++pc) {
    const Instruction& ins = f.code[pc];
    const std::string at = "translate: function '" + f.name + "' pc " +
                           std::to_string(pc) + " (" + opcode_name(ins.op) +
                           "): ";
    switch (ins.op) {
      case Opcode::kLocalGet:
      case Opcode::kLocalSet:
        if (ins.imm < 0 || ins.imm >= local_total)
          return fail(at + "local index out of range");
        break;
      case Opcode::kGlobalGet:
      case Opcode::kGlobalSet:
        if (ins.imm < 0 ||
            ins.imm >= static_cast<std::int64_t>(m.globals.size()))
          return fail(at + "global index out of range");
        break;
      case Opcode::kJump:
      case Opcode::kJumpIf:
      case Opcode::kJumpIfZ:
        if (ins.imm < 0 || ins.imm >= code_len)
          return fail(at + "jump target out of range");
        break;
      case Opcode::kCall:
        if (ins.imm < 0 ||
            ins.imm >= static_cast<std::int64_t>(m.functions.size()))
          return fail(at + "function index out of range");
        break;
      case Opcode::kCallHost:
        if (ins.imm < 0 ||
            ins.imm >= static_cast<std::int64_t>(m.host_imports.size()))
          return fail(at + "host import index out of range");
        break;
      default:
        break;
    }
  }
  return ok_status();
}

struct Emitter {
  std::vector<DecodedInst> code;
  std::vector<std::int64_t> src2dec;  // source pc -> decoded index
  std::vector<std::size_t> jump_sites;  // decoded indices needing fixup
};

Result<TranslatedFunction> translate_function(const Module& m,
                                              const Function& f,
                                              const TranslateOptions& opts) {
  if (auto s = check_function(m, f); !s) return s.error();

  const std::size_t n = f.code.size();
  const auto& code = f.code;

  // Basic-block leaders: entry, every jump target, and the instruction
  // after any control transfer (fall-through, call return, host resume).
  std::vector<std::uint8_t> leader(n + 1, 0);
  if (n > 0) leader[0] = 1;
  for (std::size_t pc = 0; pc < n; ++pc) {
    const Opcode op = code[pc].op;
    if (!is_control(op)) continue;
    leader[pc + 1] = 1;
    if (op == Opcode::kJump || op == Opcode::kJumpIf ||
        op == Opcode::kJumpIfZ)
      leader[static_cast<std::size_t>(code[pc].imm)] = 1;
  }

  Emitter e;
  e.code.reserve(n + n / 4 + 2);
  e.src2dec.assign(n + 1, -1);

  std::size_t pc = 0;
  while (pc < n) {
    if (leader[pc]) {
      // Block extent: up to and including the first control transfer, or
      // up to (excluding) the next leader / end of body. The charge is the
      // number of source instructions — fusion never changes fuel totals.
      std::size_t end = pc + 1;
      bool terminated = is_control(code[pc].op);
      while (!terminated && end < n && !leader[end]) {
        terminated = is_control(code[end].op);
        ++end;
      }
      DecodedInst charge;
      charge.op = FusedOp::kChargeFuel;
      charge.cost = 0;
      charge.a = static_cast<std::uint32_t>(end - pc);
      charge.src_pc = static_cast<std::uint32_t>(pc);
      e.src2dec[pc] = static_cast<std::int64_t>(e.code.size());
      e.code.push_back(charge);
    } else if (e.src2dec[pc] < 0) {
      e.src2dec[pc] = static_cast<std::int64_t>(e.code.size());
    }

    // A fused group may not contain an interior leader: a jump landing in
    // the middle of the group must still find its own charge entry.
    const auto fusable = [&](std::size_t len) {
      if (pc + len > n) return false;
      for (std::size_t i = 1; i < len; ++i)
        if (leader[pc + i]) return false;
      return true;
    };

    DecodedInst d;
    d.src_pc = static_cast<std::uint32_t>(pc);
    std::size_t consumed = 1;

    const Opcode op0 = code[pc].op;
    if (opts.fuse && op0 == Opcode::kLocalGet && fusable(4) &&
        code[pc + 1].op == Opcode::kConst && is_comparison(code[pc + 2].op) &&
        (code[pc + 3].op == Opcode::kJumpIf ||
         code[pc + 3].op == Opcode::kJumpIfZ)) {
      // local.get i; const k; cmp; jump_if/_ifz L
      d.op = code[pc + 3].op == Opcode::kJumpIf ? FusedOp::kFusedLocalBranchIf
                                                : FusedOp::kFusedLocalBranchIfZ;
      d.cost = 4;
      d.sub = code[pc + 2].op;
      d.a = static_cast<std::uint32_t>(code[pc].imm);
      d.imm = code[pc + 1].imm;
      d.target = static_cast<std::uint32_t>(code[pc + 3].imm);  // fixed later
      e.jump_sites.push_back(e.code.size());
      consumed = 4;
    } else if (opts.fuse && op0 == Opcode::kLocalGet && fusable(4) &&
               code[pc + 1].op == Opcode::kConst &&
               is_nontrapping_binop(code[pc + 2].op) &&
               !is_comparison(code[pc + 2].op) &&
               code[pc + 3].op == Opcode::kLocalSet) {
      // local.get i; const k; arith; local.set j  (the loop-counter bump)
      d.op = FusedOp::kFusedLocalConstArithSet;
      d.cost = 4;
      d.sub = code[pc + 2].op;
      d.a = static_cast<std::uint32_t>(code[pc].imm);
      d.b = static_cast<std::uint32_t>(code[pc + 3].imm);
      d.imm = code[pc + 1].imm;
      consumed = 4;
    } else if (opts.fuse && op0 == Opcode::kConst && fusable(2) &&
               (is_nontrapping_binop(code[pc + 1].op) ||
                is_safe_const_divisor(code[pc + 1].op, code[pc].imm))) {
      // const k; binop
      d.op = FusedOp::kFusedConstArith;
      d.cost = 2;
      d.sub = code[pc + 1].op;
      d.imm = code[pc].imm;
      consumed = 2;
    } else if (opts.fuse && op0 == Opcode::kLocalGet && fusable(2) &&
               is_nontrapping_binop(code[pc + 1].op)) {
      // local.get i; binop
      d.op = FusedOp::kFusedLocalArith;
      d.cost = 2;
      d.sub = code[pc + 1].op;
      d.a = static_cast<std::uint32_t>(code[pc].imm);
      consumed = 2;
    } else {
      // 1:1 decode with the immediate widened into its dedicated slot.
      const Instruction& ins = code[pc];
      d.op = base_fused_op(ins.op);
      d.cost = 1;
      d.imm = ins.imm;
      switch (ins.op) {
        case Opcode::kLocalGet:
        case Opcode::kLocalSet:
        case Opcode::kGlobalGet:
        case Opcode::kGlobalSet:
        case Opcode::kCall:
        case Opcode::kCallHost:
          d.a = static_cast<std::uint32_t>(ins.imm);
          break;
        case Opcode::kJump:
        case Opcode::kJumpIf:
        case Opcode::kJumpIfZ:
          d.target = static_cast<std::uint32_t>(ins.imm);  // fixed later
          e.jump_sites.push_back(e.code.size());
          break;
        default:
          break;
      }
    }
    e.code.push_back(d);
    pc += consumed;
  }

  // Sentinel replacing the reference engine's per-iteration bounds check:
  // falling past the body traps exactly like `pc >= code.size()` does.
  DecodedInst fall;
  fall.op = FusedOp::kFallOff;
  fall.cost = 0;
  fall.src_pc = static_cast<std::uint32_t>(n);
  e.code.push_back(fall);

  // Rewrite jump targets from source pcs to decoded indices. Targets are
  // leaders, so they map to their block's kChargeFuel entry.
  for (std::size_t site : e.jump_sites) {
    const std::uint32_t src_target = e.code[site].target;
    const std::int64_t dec = e.src2dec[src_target];
    if (dec < 0)
      return fail("translate: function '" + f.name +
                  "': jump target lands inside a fused group");
    e.code[site].target = static_cast<std::uint32_t>(dec);
  }

  TranslatedFunction out;
  out.code = std::move(e.code);
  return out;
}

}  // namespace

Result<TranslatedModule> translate(const Module& module,
                                   const TranslateOptions& options) {
  TranslatedModule out;
  out.functions.reserve(module.functions.size());
  for (const Function& f : module.functions) {
    auto tf = translate_function(module, f, options);
    if (!tf) return tf.error();
    out.functions.push_back(std::move(*tf));
  }
  return out;
}

std::string fused_op_name(FusedOp op) {
  switch (op) {
    case FusedOp::kChargeFuel: return "charge_fuel";
    case FusedOp::kFallOff: return "fall_off";
    case FusedOp::kFusedLocalBranchIf: return "fused.local_branch_if";
    case FusedOp::kFusedLocalBranchIfZ: return "fused.local_branch_ifz";
    case FusedOp::kFusedLocalConstArithSet: return "fused.local_const_arith_set";
    case FusedOp::kFusedConstArith: return "fused.const_arith";
    case FusedOp::kFusedLocalArith: return "fused.local_arith";
    case FusedOp::kCount: return "invalid";
    default:
      break;
  }
  // Base ops share the source opcode's position and name.
  for (Opcode op8 : all_opcodes())
    if (base_fused_op(op8) == op) return opcode_name(op8);
  return "invalid";
}

const std::vector<FusedOp>& all_fused_ops() {
  static const std::vector<FusedOp> kAll = [] {
    std::vector<FusedOp> out;
    for (std::size_t i = 0; i < static_cast<std::size_t>(FusedOp::kCount);
         ++i)
      out.push_back(static_cast<FusedOp>(i));
    return out;
  }();
  return kAll;
}

}  // namespace debuglet::vm
