// Instance plumbing, Execution lifecycle, and the fast engine.
//
// Execution::step_fast runs the decode-once pipeline produced by
// vm::translate (dispatch.hpp): dense DecodedInst array, jump targets as
// decoded indices, superinstructions, and per-basic-block fuel batching.
// Dispatch is computed-goto threaded code when the toolchain supports it
// (DEBUGLET_VM_COMPUTED_GOTO, probed by CMake) and a portable switch
// otherwise; both share the handler bodies via the VM_OP/VM_DISPATCH
// macros below.
//
// Observable-equivalence contract with the reference engine
// (reference.cpp): every trap replicates the reference's kind, message,
// function and source pc, and fuel batching charges exactly the same
// totals. A block's fuel is charged up-front at its kChargeFuel leader; a
// trap at source pc P refunds the not-executed tail
// (block_end - (P + 1)), and a leader reached with less fuel than the
// block needs falls back to step_reference, which pays per instruction
// and is guaranteed to trap inside the block — before any control
// transfer could observe a mixed decoded/source pc.
#include <limits>

#include "vm/interpreter.hpp"

namespace debuglet::vm {

std::string trap_name(TrapKind kind) {
  switch (kind) {
    case TrapKind::kNone: return "none";
    case TrapKind::kOutOfFuel: return "out-of-fuel";
    case TrapKind::kMemoryOutOfBounds: return "memory-out-of-bounds";
    case TrapKind::kStackOverflow: return "stack-overflow";
    case TrapKind::kStackUnderflow: return "stack-underflow";
    case TrapKind::kDivideByZero: return "divide-by-zero";
    case TrapKind::kIntegerOverflow: return "integer-overflow";
    case TrapKind::kAbort: return "abort";
    case TrapKind::kHostError: return "host-error";
    case TrapKind::kCallDepthExceeded: return "call-depth-exceeded";
  }
  return "unknown";
}

const char* dispatch_mode() {
#if defined(DEBUGLET_VM_COMPUTED_GOTO)
  return "threaded";
#else
  return "switch";
#endif
}

Instance::Instance(Module module, std::vector<HostFunction> bound,
                   ExecutionLimits limits)
    : module_(std::move(module)),
      imports_(std::move(bound)),
      limits_(limits),
      memory_(module_.memory_size, 0),
      globals_(module_.globals) {}

Result<Instance> Instance::create(Module module,
                                  std::vector<HostFunction> host_functions,
                                  ExecutionLimits limits) {
  std::map<std::string, const HostFunction*> by_name;
  for (const HostFunction& hf : host_functions) {
    if (!by_name.emplace(hf.name, &hf).second)
      return fail("duplicate host function '" + hf.name + "'");
  }
  std::vector<HostFunction> bound;
  bound.reserve(module.host_imports.size());
  for (const std::string& import : module.host_imports) {
    auto it = by_name.find(import);
    if (it == by_name.end())
      return fail("unresolved host import '" + import + "'");
    bound.push_back(*it->second);
  }
  Instance instance(std::move(module), std::move(bound), limits);
  TranslateOptions topts;
  topts.fuse = limits.fuse_superinstructions;
  auto translated = translate(instance.module_, topts);
  if (!translated) return translated.error();
  instance.translated_ = std::move(*translated);
  return instance;
}

RunOutcome Instance::run() {
  return run_function(kEntryPointName, {});
}

RunOutcome Instance::run_function(std::string_view name,
                                  std::span<const std::int64_t> args,
                                  Engine engine) {
  auto exec = Execution::start(*this, name, args, engine);
  if (!exec) {
    RunOutcome out;
    out.trapped = true;
    out.trap = TrapKind::kAbort;
    out.trap_message = exec.error_message();
    return out;
  }
  Execution e = std::move(*exec);
  if (e.step() == Execution::State::kBlocked)
    e.fail("async host call '" + e.block().import_name +
           "' in synchronous run");
  return e.outcome();
}

Result<Bytes> Instance::read_memory(std::uint64_t offset,
                                    std::uint64_t length) const {
  if (offset + length > memory_.size() || offset + length < offset)
    return fail("memory read out of bounds");
  return Bytes(memory_.begin() + static_cast<std::ptrdiff_t>(offset),
               memory_.begin() + static_cast<std::ptrdiff_t>(offset + length));
}

Status Instance::write_memory(std::uint64_t offset, BytesView data) {
  if (offset + data.size() > memory_.size() || offset + data.size() < offset)
    return fail("memory write out of bounds");
  std::copy(data.begin(), data.end(),
            memory_.begin() + static_cast<std::ptrdiff_t>(offset));
  return ok_status();
}

Result<BufferDecl> Instance::buffer(std::string_view name) const {
  const int idx = module_.buffer_index(name);
  if (idx < 0) return fail("no buffer named '" + std::string(name) + "'");
  return module_.buffers[static_cast<std::size_t>(idx)];
}

Result<Bytes> Instance::read_buffer(std::string_view name) const {
  auto decl = buffer(name);
  if (!decl) return decl.error();
  return read_memory(decl->offset, decl->size);
}

Status Instance::write_buffer(std::string_view name, BytesView data) {
  auto decl = buffer(name);
  if (!decl) return decl.error();
  if (data.size() > decl->size)
    return fail("data exceeds buffer '" + std::string(name) + "' size");
  return write_memory(decl->offset, data);
}

Execution::Execution(Instance& instance) : instance_(&instance) {
  fuel_ = instance.limits_.fuel;
  stack_.reserve(256);
}

Result<Execution> Execution::start(Instance& instance,
                                   std::string_view function_name,
                                   std::span<const std::int64_t> args,
                                   Engine engine) {
  const int index = instance.module().function_index(function_name);
  if (index < 0)
    return ::debuglet::fail("no function '" + std::string(function_name) +
                            "'");
  const Function& f =
      instance.module().functions[static_cast<std::size_t>(index)];
  if (args.size() != f.param_count)
    return ::debuglet::fail("argument count mismatch calling '" +
                            std::string(function_name) + "'");
  Execution e(instance);
  e.engine_ = engine;
  e.push_frame(static_cast<std::uint32_t>(index), args);
  return e;
}

Result<Execution> Execution::start_entry(Instance& instance, Engine engine) {
  return start(instance, kEntryPointName, {}, engine);
}

void Execution::push_frame(std::uint32_t function_index,
                           std::span<const std::int64_t> args) {
  const Function& f = instance_->module_.functions[function_index];
  Frame frame;
  frame.function = function_index;
  frame.pc = 0;
  frame.locals_base = static_cast<std::uint32_t>(locals_.size());
  locals_.insert(locals_.end(), args.begin(), args.end());
  locals_.resize(locals_.size() + f.local_count, 0);
  frames_.push_back(frame);
}

void Execution::finish_value(std::int64_t value) {
  outcome_ = RunOutcome{};
  outcome_.value = value;
  outcome_.fuel_used = fuel_used();
  outcome_.host_calls = host_calls_;
  state_ = State::kDone;
}

void Execution::finish_trap(TrapKind kind, std::string message,
                            std::uint32_t function, std::uint32_t pc) {
  outcome_ = RunOutcome{};
  outcome_.trapped = true;
  outcome_.trap = kind;
  outcome_.trap_message = std::move(message);
  outcome_.fuel_used = fuel_used();
  outcome_.host_calls = host_calls_;
  outcome_.trap_function = function;
  outcome_.trap_pc = pc;
  state_ = State::kDone;
}

void Execution::resume(std::int64_t value) {
  if (state_ != State::kBlocked)
    throw std::logic_error("Execution::resume: not blocked");
  if (stack_.size() >= instance_->limits_.max_value_stack) {
    finish_trap(TrapKind::kStackOverflow, "overflow resuming host call",
                block_src_function_, block_src_pc_);
    return;
  }
  stack_.push_back(value);
  state_ = State::kReady;
}

void Execution::fail(std::string message) {
  if (state_ == State::kDone) return;
  finish_trap(TrapKind::kHostError, std::move(message), block_src_function_,
              block_src_pc_);
}

Execution::State Execution::step() {
  if (state_ == State::kDone || state_ == State::kBlocked) return state_;
  state_ = State::kRunning;
  return engine_ == Engine::kReference ? step_reference() : step_fast();
}

namespace {

// Binary operators as the fast engine evaluates them inside fused
// superinstructions. Deliberately a separate implementation from the
// reference engine's switch so differential tests compare two independent
// codings of the semantics. The translator only fuses operator/operand
// combinations that cannot trap (div_s/rem_s appear here only with
// constant divisors outside {0, -1}).
//
// Forced inline so each fused handler gets its own copy of the operator
// switch: a shared out-of-line switch funnels every fused op through one
// indirect branch whose target alternates per call site, and the
// resulting mispredictions cost more than the fusion saves.
#if defined(__GNUC__) || defined(__clang__)
__attribute__((always_inline))
#endif
inline std::int64_t
eval_fused_binop(Opcode op, std::int64_t a, std::int64_t b) {
  const auto ua = static_cast<std::uint64_t>(a);
  const auto ub = static_cast<std::uint64_t>(b);
  switch (op) {
    case Opcode::kAdd: return static_cast<std::int64_t>(ua + ub);
    case Opcode::kSub: return static_cast<std::int64_t>(ua - ub);
    case Opcode::kMul: return static_cast<std::int64_t>(ua * ub);
    case Opcode::kDivS: return a / b;
    case Opcode::kRemS: return a % b;
    case Opcode::kAnd: return a & b;
    case Opcode::kOr: return a | b;
    case Opcode::kXor: return a ^ b;
    case Opcode::kShl: return static_cast<std::int64_t>(ua << (ub & 63));
    case Opcode::kShrS: return a >> (ub & 63);
    case Opcode::kShrU: return static_cast<std::int64_t>(ua >> (ub & 63));
    case Opcode::kEq: return a == b ? 1 : 0;
    case Opcode::kNe: return a != b ? 1 : 0;
    case Opcode::kLtS: return a < b ? 1 : 0;
    case Opcode::kGtS: return a > b ? 1 : 0;
    case Opcode::kLeS: return a <= b ? 1 : 0;
    case Opcode::kGeS: return a >= b ? 1 : 0;
    default: return 0;
  }
}

}  // namespace

// Handler-body plumbing shared by both dispatch modes. VM_OP introduces a
// handler (a label under computed goto, a case under switch); VM_DISPATCH
// transfers to the handler of *ip.
#if defined(DEBUGLET_VM_COMPUTED_GOTO)
#define VM_OP(name) L_##name:
#define VM_DISPATCH() goto* kLabels[static_cast<std::size_t>(ip->op)]
#else
#define VM_OP(name) case FusedOp::name:
#define VM_DISPATCH() goto dispatch_top
#endif

// Leave step_fast, writing the live stack size back into stack_.
#define VM_EXIT()                                     \
  do {                                                \
    stack_.resize(static_cast<std::size_t>(sp - sb)); \
    return state_;                                    \
  } while (0)

// Trap at source position (func, src): refund the fuel batch-charged for
// the unexecuted tail of the current block, then finish. The formula
// yields zero for block terminators (src + 1 == block end).
#define VM_TRAP(kind, msg, func, src)                                \
  do {                                                               \
    fuel_ += block_end_src_ - (static_cast<std::uint64_t>(src) + 1); \
    finish_trap(kind, msg, func, src);                               \
    VM_EXIT();                                                       \
  } while (0)

#define VM_UNDERFLOW(opstr, func, src)                                       \
  VM_TRAP(TrapKind::kStackUnderflow, std::string("stack underflow at ") +    \
                                         (opstr),                            \
          func, src)

#define VM_OVERFLOW(opstr, func, src)                               \
  VM_TRAP(TrapKind::kStackOverflow,                                 \
          std::string("value stack overflow at ") + (opstr), func, src)

// A two-operand arithmetic/comparison op that cannot trap beyond stack
// underflow. Pops b then a, pushes `expr`.
#define VM_BINOP(name, opstr, expr)                       \
  VM_OP(name) {                                           \
    if (sp - sb < 2)                                      \
      VM_UNDERFLOW(opstr, frame->function, ip->src_pc);   \
    const std::int64_t b = sp[-1];                        \
    const std::int64_t a = sp[-2];                        \
    (void)a;                                              \
    (void)b;                                              \
    --sp;                                                 \
    sp[-1] = (expr);                                      \
    ++ip;                                                 \
    VM_DISPATCH();                                        \
  }

Execution::State Execution::step_fast() {
  const ExecutionLimits& limits = instance_->limits_;
  const Module& module = instance_->module_;
  const TranslatedModule& tm = instance_->translated_;

  if (frames_.empty()) {
    finish_trap(TrapKind::kAbort, "no active frame", 0, 0);
    return state_;
  }

  // The value stack runs through raw pointers: stack_ is resized to the
  // hard limit up-front (zero-filling the dead tail) so sp can move
  // without touching the vector, and every exit path shrinks it back to
  // the live size via VM_EXIT.
  const std::size_t live = stack_.size();
  stack_.resize(limits.max_value_stack);
  std::int64_t* const sb = stack_.data();
  std::int64_t* const slimit = sb + limits.max_value_stack;
  std::int64_t* sp = sb + live;

  std::uint8_t* const mem = instance_->memory_.data();
  const std::uint64_t mem_size = instance_->memory_.size();
  std::int64_t* const gp = instance_->globals_.data();

  Frame* frame = &frames_.back();
  const DecodedInst* code = tm.functions[frame->function].code.data();
  const DecodedInst* ip = code + frame->pc;
  std::int64_t* lp = locals_.data() + frame->locals_base;

#if defined(DEBUGLET_VM_COMPUTED_GOTO)
  static const void* const kLabels[] = {
      &&L_kNop,       &&L_kConst,     &&L_kDrop,      &&L_kDup,
      &&L_kLocalGet,  &&L_kLocalSet,  &&L_kGlobalGet, &&L_kGlobalSet,
      &&L_kAdd,       &&L_kSub,       &&L_kMul,       &&L_kDivS,
      &&L_kRemS,      &&L_kAnd,       &&L_kOr,        &&L_kXor,
      &&L_kShl,       &&L_kShrS,      &&L_kShrU,      &&L_kEq,
      &&L_kNe,        &&L_kLtS,       &&L_kGtS,       &&L_kLeS,
      &&L_kGeS,       &&L_kEqz,       &&L_kLoad8,     &&L_kLoad32,
      &&L_kLoad64,    &&L_kStore8,    &&L_kStore32,   &&L_kStore64,
      &&L_kMemSize,   &&L_kJump,      &&L_kJumpIf,    &&L_kJumpIfZ,
      &&L_kCall,      &&L_kCallHost,  &&L_kReturn,    &&L_kAbort,
      &&L_kChargeFuel,
      &&L_kFallOff,
      &&L_kFusedLocalBranchIf,
      &&L_kFusedLocalBranchIfZ,
      &&L_kFusedLocalConstArithSet,
      &&L_kFusedConstArith,
      &&L_kFusedLocalArith,
  };
  static_assert(sizeof(kLabels) / sizeof(kLabels[0]) ==
                static_cast<std::size_t>(FusedOp::kCount));
  VM_DISPATCH();
#else
dispatch_top:
  switch (ip->op) {
    case FusedOp::kCount:
      break;
#endif

  VM_OP(kChargeFuel) {
    const std::uint64_t charge = ip->a;
    if (fuel_ < charge) {
      // Not enough fuel to prepay the block: fall back to exact
      // pay-per-instruction reference semantics, which is guaranteed to
      // trap before this block's terminator executes (so no saved decoded
      // pc is ever re-read).
      frame->pc = ip->src_pc;
      stack_.resize(static_cast<std::size_t>(sp - sb));
      return step_reference();
    }
    fuel_ -= charge;
    block_end_src_ = static_cast<std::uint64_t>(ip->src_pc) + charge;
    ++ip;
    VM_DISPATCH();
  }

  VM_OP(kFallOff) {
    // Matches the reference engine's bounds check, which precedes its
    // fuel check — no refund: the whole block executed.
    finish_trap(TrapKind::kAbort, "fell off function body", frame->function,
                ip->src_pc);
    VM_EXIT();
  }

  VM_OP(kNop) {
    ++ip;
    VM_DISPATCH();
  }

  VM_OP(kConst) {
    if (sp == slimit) VM_OVERFLOW("const", frame->function, ip->src_pc);
    *sp++ = ip->imm;
    ++ip;
    VM_DISPATCH();
  }

  VM_OP(kDrop) {
    if (sp == sb) VM_UNDERFLOW("drop", frame->function, ip->src_pc);
    --sp;
    ++ip;
    VM_DISPATCH();
  }

  VM_OP(kDup) {
    if (sp == sb) VM_UNDERFLOW("dup", frame->function, ip->src_pc);
    if (sp == slimit) VM_OVERFLOW("dup", frame->function, ip->src_pc);
    *sp = sp[-1];
    ++sp;
    ++ip;
    VM_DISPATCH();
  }

  VM_OP(kLocalGet) {
    if (sp == slimit) VM_OVERFLOW("local.get", frame->function, ip->src_pc);
    *sp++ = lp[ip->a];
    ++ip;
    VM_DISPATCH();
  }

  VM_OP(kLocalSet) {
    if (sp == sb) VM_UNDERFLOW("local.set", frame->function, ip->src_pc);
    lp[ip->a] = *--sp;
    ++ip;
    VM_DISPATCH();
  }

  VM_OP(kGlobalGet) {
    if (sp == slimit) VM_OVERFLOW("global.get", frame->function, ip->src_pc);
    *sp++ = gp[ip->a];
    ++ip;
    VM_DISPATCH();
  }

  VM_OP(kGlobalSet) {
    if (sp == sb) VM_UNDERFLOW("global.set", frame->function, ip->src_pc);
    gp[ip->a] = *--sp;
    ++ip;
    VM_DISPATCH();
  }

  VM_BINOP(kAdd, "add",
           static_cast<std::int64_t>(static_cast<std::uint64_t>(a) +
                                     static_cast<std::uint64_t>(b)))
  VM_BINOP(kSub, "sub",
           static_cast<std::int64_t>(static_cast<std::uint64_t>(a) -
                                     static_cast<std::uint64_t>(b)))
  VM_BINOP(kMul, "mul",
           static_cast<std::int64_t>(static_cast<std::uint64_t>(a) *
                                     static_cast<std::uint64_t>(b)))
  VM_BINOP(kAnd, "and", a& b)
  VM_BINOP(kOr, "or", a | b)
  VM_BINOP(kXor, "xor", a ^ b)
  VM_BINOP(kShl, "shl",
           static_cast<std::int64_t>(static_cast<std::uint64_t>(a)
                                     << (static_cast<std::uint64_t>(b) & 63)))
  VM_BINOP(kShrS, "shr_s", a >> (static_cast<std::uint64_t>(b) & 63))
  VM_BINOP(kShrU, "shr_u",
           static_cast<std::int64_t>(static_cast<std::uint64_t>(a) >>
                                     (static_cast<std::uint64_t>(b) & 63)))
  VM_BINOP(kEq, "eq", a == b ? 1 : 0)
  VM_BINOP(kNe, "ne", a != b ? 1 : 0)
  VM_BINOP(kLtS, "lt_s", a < b ? 1 : 0)
  VM_BINOP(kGtS, "gt_s", a > b ? 1 : 0)
  VM_BINOP(kLeS, "le_s", a <= b ? 1 : 0)
  VM_BINOP(kGeS, "ge_s", a >= b ? 1 : 0)

  VM_OP(kDivS) {
    if (sp - sb < 2) VM_UNDERFLOW("div_s", frame->function, ip->src_pc);
    const std::int64_t b = sp[-1];
    const std::int64_t a = sp[-2];
    if (b == 0)
      VM_TRAP(TrapKind::kDivideByZero, "div_s by zero", frame->function,
              ip->src_pc);
    if (a == std::numeric_limits<std::int64_t>::min() && b == -1)
      VM_TRAP(TrapKind::kIntegerOverflow, "div_s overflow", frame->function,
              ip->src_pc);
    --sp;
    sp[-1] = a / b;
    ++ip;
    VM_DISPATCH();
  }

  VM_OP(kRemS) {
    if (sp - sb < 2) VM_UNDERFLOW("rem_s", frame->function, ip->src_pc);
    const std::int64_t b = sp[-1];
    const std::int64_t a = sp[-2];
    if (b == 0)
      VM_TRAP(TrapKind::kDivideByZero, "rem_s by zero", frame->function,
              ip->src_pc);
    --sp;
    sp[-1] = (a == std::numeric_limits<std::int64_t>::min() && b == -1)
                 ? 0
                 : a % b;
    ++ip;
    VM_DISPATCH();
  }

  VM_OP(kEqz) {
    if (sp == sb) VM_UNDERFLOW("eqz", frame->function, ip->src_pc);
    sp[-1] = sp[-1] == 0 ? 1 : 0;
    ++ip;
    VM_DISPATCH();
  }

  VM_OP(kLoad8) {
    if (sp == sb) VM_UNDERFLOW("load8", frame->function, ip->src_pc);
    const std::int64_t addr = sp[-1];
    const std::uint64_t base = static_cast<std::uint64_t>(addr) +
                               static_cast<std::uint64_t>(ip->imm);
    if (addr < 0 || base + 1 > mem_size || base + 1 < base)
      VM_TRAP(TrapKind::kMemoryOutOfBounds, "load at " + std::to_string(base),
              frame->function, ip->src_pc);
    sp[-1] = mem[base];
    ++ip;
    VM_DISPATCH();
  }

  VM_OP(kLoad32) {
    if (sp == sb) VM_UNDERFLOW("load32", frame->function, ip->src_pc);
    const std::int64_t addr = sp[-1];
    const std::uint64_t base = static_cast<std::uint64_t>(addr) +
                               static_cast<std::uint64_t>(ip->imm);
    if (addr < 0 || base + 4 > mem_size || base + 4 < base)
      VM_TRAP(TrapKind::kMemoryOutOfBounds, "load at " + std::to_string(base),
              frame->function, ip->src_pc);
    const std::uint64_t v =
        static_cast<std::uint64_t>(mem[base]) |
        static_cast<std::uint64_t>(mem[base + 1]) << 8 |
        static_cast<std::uint64_t>(mem[base + 2]) << 16 |
        static_cast<std::uint64_t>(mem[base + 3]) << 24;
    sp[-1] = static_cast<std::int64_t>(v);
    ++ip;
    VM_DISPATCH();
  }

  VM_OP(kLoad64) {
    if (sp == sb) VM_UNDERFLOW("load64", frame->function, ip->src_pc);
    const std::int64_t addr = sp[-1];
    const std::uint64_t base = static_cast<std::uint64_t>(addr) +
                               static_cast<std::uint64_t>(ip->imm);
    if (addr < 0 || base + 8 > mem_size || base + 8 < base)
      VM_TRAP(TrapKind::kMemoryOutOfBounds, "load at " + std::to_string(base),
              frame->function, ip->src_pc);
    std::uint64_t v = 0;
    for (std::uint64_t i = 0; i < 8; ++i)
      v |= static_cast<std::uint64_t>(mem[base + i]) << (i * 8);
    sp[-1] = static_cast<std::int64_t>(v);
    ++ip;
    VM_DISPATCH();
  }

  VM_OP(kStore8) {
    if (sp - sb < 2) VM_UNDERFLOW("store8", frame->function, ip->src_pc);
    const std::int64_t value = sp[-1];
    const std::int64_t addr = sp[-2];
    const std::uint64_t base = static_cast<std::uint64_t>(addr) +
                               static_cast<std::uint64_t>(ip->imm);
    if (addr < 0 || base + 1 > mem_size || base + 1 < base)
      VM_TRAP(TrapKind::kMemoryOutOfBounds, "store at " + std::to_string(base),
              frame->function, ip->src_pc);
    sp -= 2;
    mem[base] = static_cast<std::uint8_t>(static_cast<std::uint64_t>(value));
    ++ip;
    VM_DISPATCH();
  }

  VM_OP(kStore32) {
    if (sp - sb < 2) VM_UNDERFLOW("store32", frame->function, ip->src_pc);
    const std::int64_t value = sp[-1];
    const std::int64_t addr = sp[-2];
    const std::uint64_t base = static_cast<std::uint64_t>(addr) +
                               static_cast<std::uint64_t>(ip->imm);
    if (addr < 0 || base + 4 > mem_size || base + 4 < base)
      VM_TRAP(TrapKind::kMemoryOutOfBounds, "store at " + std::to_string(base),
              frame->function, ip->src_pc);
    sp -= 2;
    const auto uv = static_cast<std::uint64_t>(value);
    mem[base] = static_cast<std::uint8_t>(uv);
    mem[base + 1] = static_cast<std::uint8_t>(uv >> 8);
    mem[base + 2] = static_cast<std::uint8_t>(uv >> 16);
    mem[base + 3] = static_cast<std::uint8_t>(uv >> 24);
    ++ip;
    VM_DISPATCH();
  }

  VM_OP(kStore64) {
    if (sp - sb < 2) VM_UNDERFLOW("store64", frame->function, ip->src_pc);
    const std::int64_t value = sp[-1];
    const std::int64_t addr = sp[-2];
    const std::uint64_t base = static_cast<std::uint64_t>(addr) +
                               static_cast<std::uint64_t>(ip->imm);
    if (addr < 0 || base + 8 > mem_size || base + 8 < base)
      VM_TRAP(TrapKind::kMemoryOutOfBounds, "store at " + std::to_string(base),
              frame->function, ip->src_pc);
    sp -= 2;
    const auto uv = static_cast<std::uint64_t>(value);
    for (std::uint64_t i = 0; i < 8; ++i)
      mem[base + i] = static_cast<std::uint8_t>(uv >> (i * 8));
    ++ip;
    VM_DISPATCH();
  }

  VM_OP(kMemSize) {
    if (sp == slimit) VM_OVERFLOW("mem.size", frame->function, ip->src_pc);
    *sp++ = static_cast<std::int64_t>(mem_size);
    ++ip;
    VM_DISPATCH();
  }

  VM_OP(kJump) {
    ip = code + ip->target;
    VM_DISPATCH();
  }

  VM_OP(kJumpIf) {
    if (sp == sb) VM_UNDERFLOW("jump_if", frame->function, ip->src_pc);
    const std::int64_t cond = *--sp;
    ip = cond != 0 ? code + ip->target : ip + 1;
    VM_DISPATCH();
  }

  VM_OP(kJumpIfZ) {
    if (sp == sb) VM_UNDERFLOW("jump_ifz", frame->function, ip->src_pc);
    const std::int64_t cond = *--sp;
    ip = cond == 0 ? code + ip->target : ip + 1;
    VM_DISPATCH();
  }

  VM_OP(kCall) {
    if (frames_.size() >= limits.max_call_depth)
      VM_TRAP(TrapKind::kCallDepthExceeded, "call depth limit",
              frame->function, ip->src_pc);
    const std::uint32_t callee = ip->a;
    const Function& target = module.functions[callee];
    if (static_cast<std::size_t>(sp - sb) < target.param_count)
      VM_UNDERFLOW("call", frame->function, ip->src_pc);
    frame->pc = static_cast<std::uint32_t>((ip + 1) - code);
    sp -= target.param_count;
    push_frame(callee,
               std::span<const std::int64_t>(sp, target.param_count));
    frame = &frames_.back();
    code = tm.functions[frame->function].code.data();
    ip = code;
    lp = locals_.data() + frame->locals_base;
    VM_DISPATCH();
  }

  VM_OP(kCallHost) {
    const std::uint32_t import_index = ip->a;
    const HostFunction& hf = instance_->imports_[import_index];
    if (static_cast<std::size_t>(sp - sb) < hf.arity)
      VM_UNDERFLOW("call_host", frame->function, ip->src_pc);
    sp -= hf.arity;
    if (fuel_ < limits.host_call_fuel_cost)
      VM_TRAP(TrapKind::kOutOfFuel, "fuel exhausted on host call",
              frame->function, ip->src_pc);
    fuel_ -= limits.host_call_fuel_cost;
    ++host_calls_;
    if (hf.async) {
      block_ = BlockInfo{import_index, hf.name,
                         std::vector<std::int64_t>(sp, sp + hf.arity)};
      block_src_function_ = frame->function;
      block_src_pc_ = ip->src_pc;
      frame->pc = static_cast<std::uint32_t>((ip + 1) - code);
      state_ = State::kBlocked;
      VM_EXIT();
    }
    // Scoped so both are destroyed before VM_DISPATCH: computed goto does
    // not run destructors when it jumps out of a scope.
    std::int64_t host_value;
    {
      const std::vector<std::int64_t> call_args(sp, sp + hf.arity);
      auto result = hf.fn(*instance_, call_args);
      if (!result)
        VM_TRAP(TrapKind::kHostError,
                hf.name + ": " + result.error_message(), frame->function,
                ip->src_pc);
      host_value = *result;
    }
    if (sp == slimit) VM_OVERFLOW("call_host", frame->function, ip->src_pc);
    *sp++ = host_value;
    ++ip;
    VM_DISPATCH();
  }

  VM_OP(kReturn) {
    if (sp == sb) VM_UNDERFLOW("return", frame->function, ip->src_pc);
    const std::int64_t value = *--sp;
    const std::uint32_t ret_func = frame->function;
    const std::uint32_t ret_src = ip->src_pc;
    locals_.resize(frame->locals_base);
    frames_.pop_back();
    if (frames_.empty()) {
      finish_value(value);
      VM_EXIT();
    }
    frame = &frames_.back();
    code = tm.functions[frame->function].code.data();
    ip = code + frame->pc;
    lp = locals_.data() + frame->locals_base;
    if (sp == slimit)
      VM_TRAP(TrapKind::kStackOverflow, "value stack overflow at return",
              ret_func, ret_src);
    *sp++ = value;
    VM_DISPATCH();
  }

  VM_OP(kAbort) {
    VM_TRAP(TrapKind::kAbort,
            "abort(" + std::to_string(ip->imm) + ") in '" +
                module.functions[frame->function].name + "'",
            frame->function, ip->src_pc);
  }

  VM_OP(kFusedLocalBranchIf) {
    if (slimit - sp >= 2) {
      const std::int64_t cond =
          eval_fused_binop(ip->sub, lp[ip->a], ip->imm);
      ip = cond != 0 ? code + ip->target : ip + 1;
      VM_DISPATCH();
    }
    // Replicate the unfused sequence's per-instruction overflow traps.
    if (sp == slimit) VM_OVERFLOW("local.get", frame->function, ip->src_pc);
    VM_OVERFLOW("const", frame->function, ip->src_pc + 1);
  }

  VM_OP(kFusedLocalBranchIfZ) {
    if (slimit - sp >= 2) {
      const std::int64_t cond =
          eval_fused_binop(ip->sub, lp[ip->a], ip->imm);
      ip = cond == 0 ? code + ip->target : ip + 1;
      VM_DISPATCH();
    }
    if (sp == slimit) VM_OVERFLOW("local.get", frame->function, ip->src_pc);
    VM_OVERFLOW("const", frame->function, ip->src_pc + 1);
  }

  VM_OP(kFusedLocalConstArithSet) {
    if (slimit - sp >= 2) {
      lp[ip->b] = eval_fused_binop(ip->sub, lp[ip->a], ip->imm);
      ++ip;
      VM_DISPATCH();
    }
    if (sp == slimit) VM_OVERFLOW("local.get", frame->function, ip->src_pc);
    VM_OVERFLOW("const", frame->function, ip->src_pc + 1);
  }

  VM_OP(kFusedConstArith) {
    if (sp == slimit) VM_OVERFLOW("const", frame->function, ip->src_pc);
    if (sp == sb)
      VM_UNDERFLOW(opcode_name(ip->sub), frame->function, ip->src_pc + 1);
    sp[-1] = eval_fused_binop(ip->sub, sp[-1], ip->imm);
    ++ip;
    VM_DISPATCH();
  }

  VM_OP(kFusedLocalArith) {
    if (sp == slimit) VM_OVERFLOW("local.get", frame->function, ip->src_pc);
    if (sp == sb)
      VM_UNDERFLOW(opcode_name(ip->sub), frame->function, ip->src_pc + 1);
    sp[-1] = eval_fused_binop(ip->sub, sp[-1], lp[ip->a]);
    ++ip;
    VM_DISPATCH();
  }

#if !defined(DEBUGLET_VM_COMPUTED_GOTO)
  }
#endif
  finish_trap(TrapKind::kAbort, "invalid decoded instruction",
              frame->function, 0);
  VM_EXIT();
}

#undef VM_OP
#undef VM_DISPATCH
#undef VM_EXIT
#undef VM_TRAP
#undef VM_UNDERFLOW
#undef VM_OVERFLOW
#undef VM_BINOP

}  // namespace debuglet::vm
