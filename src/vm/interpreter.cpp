#include "vm/interpreter.hpp"

#include <limits>

namespace debuglet::vm {

std::string trap_name(TrapKind kind) {
  switch (kind) {
    case TrapKind::kNone: return "none";
    case TrapKind::kOutOfFuel: return "out-of-fuel";
    case TrapKind::kMemoryOutOfBounds: return "memory-out-of-bounds";
    case TrapKind::kStackOverflow: return "stack-overflow";
    case TrapKind::kStackUnderflow: return "stack-underflow";
    case TrapKind::kDivideByZero: return "divide-by-zero";
    case TrapKind::kIntegerOverflow: return "integer-overflow";
    case TrapKind::kAbort: return "abort";
    case TrapKind::kHostError: return "host-error";
    case TrapKind::kCallDepthExceeded: return "call-depth-exceeded";
  }
  return "unknown";
}

Instance::Instance(Module module, std::vector<HostFunction> bound,
                   ExecutionLimits limits)
    : module_(std::move(module)),
      imports_(std::move(bound)),
      limits_(limits),
      memory_(module_.memory_size, 0),
      globals_(module_.globals) {}

Result<Instance> Instance::create(Module module,
                                  std::vector<HostFunction> host_functions,
                                  ExecutionLimits limits) {
  std::map<std::string, const HostFunction*> by_name;
  for (const HostFunction& hf : host_functions) {
    if (!by_name.emplace(hf.name, &hf).second)
      return fail("duplicate host function '" + hf.name + "'");
  }
  std::vector<HostFunction> bound;
  bound.reserve(module.host_imports.size());
  for (const std::string& import : module.host_imports) {
    auto it = by_name.find(import);
    if (it == by_name.end())
      return fail("unresolved host import '" + import + "'");
    bound.push_back(*it->second);
  }
  return Instance(std::move(module), std::move(bound), limits);
}

RunOutcome Instance::run() {
  return run_function(kEntryPointName, {});
}

RunOutcome Instance::run_function(std::string_view name,
                                  std::span<const std::int64_t> args) {
  auto exec = Execution::start(*this, name, args);
  if (!exec) {
    RunOutcome out;
    out.trapped = true;
    out.trap = TrapKind::kAbort;
    out.trap_message = exec.error_message();
    return out;
  }
  Execution e = std::move(*exec);
  if (e.step() == Execution::State::kBlocked)
    e.fail("async host call '" + e.block().import_name +
           "' in synchronous run");
  return e.outcome();
}

Result<Bytes> Instance::read_memory(std::uint64_t offset,
                                    std::uint64_t length) const {
  if (offset + length > memory_.size() || offset + length < offset)
    return fail("memory read out of bounds");
  return Bytes(memory_.begin() + static_cast<std::ptrdiff_t>(offset),
               memory_.begin() + static_cast<std::ptrdiff_t>(offset + length));
}

Status Instance::write_memory(std::uint64_t offset, BytesView data) {
  if (offset + data.size() > memory_.size() || offset + data.size() < offset)
    return fail("memory write out of bounds");
  std::copy(data.begin(), data.end(),
            memory_.begin() + static_cast<std::ptrdiff_t>(offset));
  return ok_status();
}

Result<BufferDecl> Instance::buffer(std::string_view name) const {
  const int idx = module_.buffer_index(name);
  if (idx < 0) return fail("no buffer named '" + std::string(name) + "'");
  return module_.buffers[static_cast<std::size_t>(idx)];
}

Result<Bytes> Instance::read_buffer(std::string_view name) const {
  auto decl = buffer(name);
  if (!decl) return decl.error();
  return read_memory(decl->offset, decl->size);
}

Status Instance::write_buffer(std::string_view name, BytesView data) {
  auto decl = buffer(name);
  if (!decl) return decl.error();
  if (data.size() > decl->size)
    return fail("data exceeds buffer '" + std::string(name) + "' size");
  return write_memory(decl->offset, data);
}

Execution::Execution(Instance& instance) : instance_(&instance) {
  fuel_ = instance.limits_.fuel;
  stack_.reserve(256);
}

Result<Execution> Execution::start(Instance& instance,
                                   std::string_view function_name,
                                   std::span<const std::int64_t> args) {
  const int index = instance.module().function_index(function_name);
  if (index < 0)
    return ::debuglet::fail("no function '" + std::string(function_name) +
                            "'");
  const Function& f =
      instance.module().functions[static_cast<std::size_t>(index)];
  if (args.size() != f.param_count)
    return ::debuglet::fail("argument count mismatch calling '" +
                            std::string(function_name) + "'");
  Execution e(instance);
  e.push_frame(static_cast<std::uint32_t>(index), args);
  return e;
}

Result<Execution> Execution::start_entry(Instance& instance) {
  return start(instance, kEntryPointName, {});
}

void Execution::push_frame(std::uint32_t function_index,
                           std::span<const std::int64_t> args) {
  const Function& f = instance_->module_.functions[function_index];
  Frame frame;
  frame.function = function_index;
  frame.pc = 0;
  frame.locals_base = static_cast<std::uint32_t>(locals_.size());
  locals_.insert(locals_.end(), args.begin(), args.end());
  locals_.resize(locals_.size() + f.local_count, 0);
  frames_.push_back(frame);
}

void Execution::finish_value(std::int64_t value) {
  outcome_ = RunOutcome{};
  outcome_.value = value;
  outcome_.fuel_used = fuel_used();
  outcome_.host_calls = host_calls_;
  state_ = State::kDone;
}

void Execution::finish_trap(TrapKind kind, std::string message) {
  outcome_ = RunOutcome{};
  outcome_.trapped = true;
  outcome_.trap = kind;
  outcome_.trap_message = std::move(message);
  outcome_.fuel_used = fuel_used();
  outcome_.host_calls = host_calls_;
  state_ = State::kDone;
}

void Execution::resume(std::int64_t value) {
  if (state_ != State::kBlocked)
    throw std::logic_error("Execution::resume: not blocked");
  if (stack_.size() >= instance_->limits_.max_value_stack) {
    finish_trap(TrapKind::kStackOverflow, "overflow resuming host call");
    return;
  }
  stack_.push_back(value);
  state_ = State::kReady;
}

void Execution::fail(std::string message) {
  if (state_ == State::kDone) return;
  finish_trap(TrapKind::kHostError, std::move(message));
}

Execution::State Execution::step() {
  if (state_ == State::kDone || state_ == State::kBlocked) return state_;
  state_ = State::kRunning;
  const ExecutionLimits& limits = instance_->limits_;
  const Module& module = instance_->module_;

  while (state_ == State::kRunning) {
    if (frames_.empty()) {
      finish_trap(TrapKind::kAbort, "no active frame");
      break;
    }
    Frame& frame = frames_.back();
    const Function& f = module.functions[frame.function];
    if (frame.pc >= f.code.size()) {
      finish_trap(TrapKind::kAbort, "fell off function body");
      break;
    }
    const Instruction ins = f.code[frame.pc];

    if (fuel_ == 0) {
      finish_trap(TrapKind::kOutOfFuel, "fuel exhausted in '" + f.name + "'");
      break;
    }
    --fuel_;

    auto pop = [&](std::int64_t& out) {
      if (stack_.empty()) return false;
      out = stack_.back();
      stack_.pop_back();
      return true;
    };
    auto push = [&](std::int64_t v) {
      if (stack_.size() >= limits.max_value_stack) return false;
      stack_.push_back(v);
      return true;
    };
    const auto underflow = [&] {
      finish_trap(TrapKind::kStackUnderflow,
                  "stack underflow at " + opcode_name(ins.op));
    };
    const auto overflow = [&] {
      finish_trap(TrapKind::kStackOverflow,
                  "value stack overflow at " + opcode_name(ins.op));
    };

    ++frame.pc;
    switch (ins.op) {
      case Opcode::kNop:
        break;
      case Opcode::kConst:
        if (!push(ins.imm)) overflow();
        break;
      case Opcode::kDrop: {
        std::int64_t v;
        if (!pop(v)) underflow();
        break;
      }
      case Opcode::kDup: {
        if (stack_.empty()) {
          underflow();
          break;
        }
        if (!push(stack_.back())) overflow();
        break;
      }
      case Opcode::kLocalGet:
        if (!push(locals_[frame.locals_base +
                          static_cast<std::uint32_t>(ins.imm)]))
          overflow();
        break;
      case Opcode::kLocalSet: {
        std::int64_t v;
        if (!pop(v)) {
          underflow();
          break;
        }
        locals_[frame.locals_base + static_cast<std::uint32_t>(ins.imm)] = v;
        break;
      }
      case Opcode::kGlobalGet:
        if (!push(instance_->globals_[static_cast<std::size_t>(ins.imm)]))
          overflow();
        break;
      case Opcode::kGlobalSet: {
        std::int64_t v;
        if (!pop(v)) {
          underflow();
          break;
        }
        instance_->globals_[static_cast<std::size_t>(ins.imm)] = v;
        break;
      }

      case Opcode::kAdd:
      case Opcode::kSub:
      case Opcode::kMul:
      case Opcode::kDivS:
      case Opcode::kRemS:
      case Opcode::kAnd:
      case Opcode::kOr:
      case Opcode::kXor:
      case Opcode::kShl:
      case Opcode::kShrS:
      case Opcode::kShrU:
      case Opcode::kEq:
      case Opcode::kNe:
      case Opcode::kLtS:
      case Opcode::kGtS:
      case Opcode::kLeS:
      case Opcode::kGeS: {
        std::int64_t b, a;
        if (!pop(b) || !pop(a)) {
          underflow();
          break;
        }
        std::int64_t r = 0;
        const auto ua = static_cast<std::uint64_t>(a);
        const auto ub = static_cast<std::uint64_t>(b);
        bool trapped = false;
        switch (ins.op) {
          case Opcode::kAdd: r = static_cast<std::int64_t>(ua + ub); break;
          case Opcode::kSub: r = static_cast<std::int64_t>(ua - ub); break;
          case Opcode::kMul: r = static_cast<std::int64_t>(ua * ub); break;
          case Opcode::kDivS:
            if (b == 0) {
              finish_trap(TrapKind::kDivideByZero, "div_s by zero");
              trapped = true;
            } else if (a == std::numeric_limits<std::int64_t>::min() &&
                       b == -1) {
              finish_trap(TrapKind::kIntegerOverflow, "div_s overflow");
              trapped = true;
            } else {
              r = a / b;
            }
            break;
          case Opcode::kRemS:
            if (b == 0) {
              finish_trap(TrapKind::kDivideByZero, "rem_s by zero");
              trapped = true;
            } else if (a == std::numeric_limits<std::int64_t>::min() &&
                       b == -1) {
              r = 0;
            } else {
              r = a % b;
            }
            break;
          case Opcode::kAnd: r = a & b; break;
          case Opcode::kOr: r = a | b; break;
          case Opcode::kXor: r = a ^ b; break;
          case Opcode::kShl:
            r = static_cast<std::int64_t>(ua << (ub & 63));
            break;
          case Opcode::kShrS: r = a >> (ub & 63); break;
          case Opcode::kShrU:
            r = static_cast<std::int64_t>(ua >> (ub & 63));
            break;
          case Opcode::kEq: r = a == b; break;
          case Opcode::kNe: r = a != b; break;
          case Opcode::kLtS: r = a < b; break;
          case Opcode::kGtS: r = a > b; break;
          case Opcode::kLeS: r = a <= b; break;
          case Opcode::kGeS: r = a >= b; break;
          default: break;
        }
        if (!trapped && !push(r)) overflow();
        break;
      }
      case Opcode::kEqz: {
        std::int64_t a;
        if (!pop(a)) {
          underflow();
          break;
        }
        if (!push(a == 0 ? 1 : 0)) overflow();
        break;
      }

      case Opcode::kLoad8:
      case Opcode::kLoad32:
      case Opcode::kLoad64: {
        std::int64_t addr;
        if (!pop(addr)) {
          underflow();
          break;
        }
        const std::uint64_t width =
            ins.op == Opcode::kLoad8 ? 1 : ins.op == Opcode::kLoad32 ? 4 : 8;
        const std::uint64_t base = static_cast<std::uint64_t>(addr) +
                                   static_cast<std::uint64_t>(ins.imm);
        if (addr < 0 || base + width > instance_->memory_.size() ||
            base + width < base) {
          finish_trap(TrapKind::kMemoryOutOfBounds,
                      "load at " + std::to_string(base));
          break;
        }
        std::uint64_t v = 0;
        for (std::uint64_t i = 0; i < width; ++i)
          v |= static_cast<std::uint64_t>(instance_->memory_[base + i])
               << (i * 8);
        if (!push(static_cast<std::int64_t>(v))) overflow();
        break;
      }
      case Opcode::kStore8:
      case Opcode::kStore32:
      case Opcode::kStore64: {
        std::int64_t value, addr;
        if (!pop(value) || !pop(addr)) {
          underflow();
          break;
        }
        const std::uint64_t width =
            ins.op == Opcode::kStore8 ? 1 : ins.op == Opcode::kStore32 ? 4 : 8;
        const std::uint64_t base = static_cast<std::uint64_t>(addr) +
                                   static_cast<std::uint64_t>(ins.imm);
        if (addr < 0 || base + width > instance_->memory_.size() ||
            base + width < base) {
          finish_trap(TrapKind::kMemoryOutOfBounds,
                      "store at " + std::to_string(base));
          break;
        }
        for (std::uint64_t i = 0; i < width; ++i)
          instance_->memory_[base + i] = static_cast<std::uint8_t>(
              static_cast<std::uint64_t>(value) >> (i * 8));
        break;
      }
      case Opcode::kMemSize:
        if (!push(static_cast<std::int64_t>(instance_->memory_.size())))
          overflow();
        break;

      case Opcode::kJump:
        frame.pc = static_cast<std::uint32_t>(ins.imm);
        break;
      case Opcode::kJumpIf: {
        std::int64_t cond;
        if (!pop(cond)) {
          underflow();
          break;
        }
        if (cond != 0) frame.pc = static_cast<std::uint32_t>(ins.imm);
        break;
      }
      case Opcode::kJumpIfZ: {
        std::int64_t cond;
        if (!pop(cond)) {
          underflow();
          break;
        }
        if (cond == 0) frame.pc = static_cast<std::uint32_t>(ins.imm);
        break;
      }
      case Opcode::kCall: {
        if (frames_.size() >= limits.max_call_depth) {
          finish_trap(TrapKind::kCallDepthExceeded, "call depth limit");
          break;
        }
        const auto callee = static_cast<std::uint32_t>(ins.imm);
        const Function& target = module.functions[callee];
        if (stack_.size() < target.param_count) {
          underflow();
          break;
        }
        std::vector<std::int64_t> call_args(stack_.end() - target.param_count,
                                            stack_.end());
        stack_.resize(stack_.size() - target.param_count);
        push_frame(callee, call_args);
        break;
      }
      case Opcode::kCallHost: {
        const HostFunction& hf =
            instance_->imports_[static_cast<std::size_t>(ins.imm)];
        if (stack_.size() < hf.arity) {
          underflow();
          break;
        }
        std::vector<std::int64_t> call_args(stack_.end() - hf.arity,
                                            stack_.end());
        stack_.resize(stack_.size() - hf.arity);
        if (fuel_ < limits.host_call_fuel_cost) {
          finish_trap(TrapKind::kOutOfFuel, "fuel exhausted on host call");
          break;
        }
        fuel_ -= limits.host_call_fuel_cost;
        ++host_calls_;
        if (hf.async) {
          block_ = BlockInfo{static_cast<std::uint32_t>(ins.imm), hf.name,
                             std::move(call_args)};
          state_ = State::kBlocked;
          break;
        }
        auto result = hf.fn(*instance_, call_args);
        if (!result) {
          finish_trap(TrapKind::kHostError,
                      hf.name + ": " + result.error_message());
          break;
        }
        if (!push(*result)) overflow();
        break;
      }
      case Opcode::kReturn: {
        std::int64_t value;
        if (!pop(value)) {
          underflow();
          break;
        }
        locals_.resize(frames_.back().locals_base);
        frames_.pop_back();
        if (frames_.empty()) {
          finish_value(value);
          break;
        }
        if (!push(value)) overflow();
        break;
      }
      case Opcode::kAbort:
        finish_trap(TrapKind::kAbort, "abort(" + std::to_string(ins.imm) +
                                          ") in '" + f.name + "'");
        break;
    }
  }
  return state_;
}

}  // namespace debuglet::vm
