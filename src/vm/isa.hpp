// The DVM instruction set.
//
// DVM is Debuglet's sandboxed bytecode machine — this repo's substitute for
// WebAssembly/Wasmer (DESIGN.md §2). It keeps the properties the paper
// needs from WA (§IV-B): memory safety (every access bounds-checked against
// a fixed linear memory), bounded execution (fuel), and no ambient
// authority (the only I/O is through host functions the executor chooses to
// expose, plus named buffers mapped into linear memory).
//
// The machine is a stack machine over 64-bit signed integers. Instructions
// carry at most one immediate. Control flow is flat jumps with validated
// in-function targets.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace debuglet::vm {

enum class Opcode : std::uint8_t {
  kNop = 0x00,
  kConst = 0x01,      // imm: value            | push imm
  kDrop = 0x02,       //                       | pop
  kDup = 0x03,        //                       | push top
  kLocalGet = 0x10,   // imm: local index      | push local
  kLocalSet = 0x11,   // imm: local index      | pop into local
  kGlobalGet = 0x12,  // imm: global index     | push global
  kGlobalSet = 0x13,  // imm: global index     | pop into global

  kAdd = 0x20,  // pop b, a; push a + b (wrapping)
  kSub = 0x21,
  kMul = 0x22,
  kDivS = 0x23,  // traps on divide-by-zero or INT64_MIN / -1
  kRemS = 0x24,  // traps on divide-by-zero
  kAnd = 0x25,
  kOr = 0x26,
  kXor = 0x27,
  kShl = 0x28,   // shift count masked to 6 bits
  kShrS = 0x29,
  kShrU = 0x2A,

  kEq = 0x30,  // pop b, a; push (a == b) ? 1 : 0
  kNe = 0x31,
  kLtS = 0x32,
  kGtS = 0x33,
  kLeS = 0x34,
  kGeS = 0x35,
  kEqz = 0x36,  // pop a; push (a == 0) ? 1 : 0

  kLoad8 = 0x40,    // imm: static offset | pop addr; push mem[addr+imm] (zero-extended)
  kLoad32 = 0x41,   // little-endian
  kLoad64 = 0x42,
  kStore8 = 0x43,   // imm: static offset | pop value, addr; store
  kStore32 = 0x44,
  kStore64 = 0x45,
  kMemSize = 0x46,  // push linear memory size in bytes

  kJump = 0x50,       // imm: instruction index within the function
  kJumpIf = 0x51,     // pop cond; jump when cond != 0
  kJumpIfZ = 0x52,    // pop cond; jump when cond == 0
  kCall = 0x53,       // imm: function index
  kCallHost = 0x54,   // imm: host import index
  kReturn = 0x55,     // pop return value; return to caller
  kAbort = 0x56,      // imm: abort code | trap immediately
};

/// A decoded instruction.
struct Instruction {
  Opcode op = Opcode::kNop;
  std::int64_t imm = 0;

  bool operator==(const Instruction&) const = default;
};

/// True if the opcode carries an immediate.
bool opcode_has_immediate(Opcode op);

/// True if the byte is a defined opcode.
bool opcode_is_valid(std::uint8_t byte);

/// Mnemonic ("const", "local.get", ...) used by the assembler and traps.
std::string opcode_name(Opcode op);

/// Reverse of opcode_name; returns false in .second when unknown.
std::pair<Opcode, bool> opcode_from_name(const std::string& name);

/// Every defined opcode, in enum order. The coverage audit walks this so a
/// newly added opcode fails tests until it is exercised.
const std::vector<Opcode>& all_opcodes();

}  // namespace debuglet::vm
