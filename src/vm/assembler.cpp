#include "vm/assembler.hpp"

#include <charconv>
#include <map>
#include <sstream>
#include <vector>

namespace debuglet::vm {

namespace {

struct Line {
  std::size_t number;
  std::vector<std::string> tokens;
};

std::vector<Line> tokenize(std::string_view source) {
  std::vector<Line> lines;
  std::size_t number = 0;
  std::size_t pos = 0;
  while (pos <= source.size()) {
    const std::size_t eol = source.find('\n', pos);
    std::string_view line = source.substr(
        pos, eol == std::string_view::npos ? std::string_view::npos
                                           : eol - pos);
    ++number;
    pos = eol == std::string_view::npos ? source.size() + 1 : eol + 1;
    const std::size_t comment = line.find_first_of(";#");
    if (comment != std::string_view::npos) line = line.substr(0, comment);
    Line out{number, {}};
    std::size_t i = 0;
    while (i < line.size()) {
      while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
      std::size_t start = i;
      while (i < line.size() && line[i] != ' ' && line[i] != '\t') ++i;
      if (i > start) out.tokens.emplace_back(line.substr(start, i - start));
    }
    if (!out.tokens.empty()) lines.push_back(std::move(out));
  }
  return lines;
}

Result<std::int64_t> parse_int(const std::string& token, std::size_t line) {
  std::int64_t value = 0;
  const char* begin = token.data();
  const char* end = token.data() + token.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end)
    return fail("line " + std::to_string(line) + ": expected integer, got '" +
                token + "'");
  return value;
}

}  // namespace

Result<Module> assemble(std::string_view source) {
  const std::vector<Line> lines = tokenize(source);

  // Pass 1: collect function names (for forward calls) and import order.
  Module m;
  std::map<std::string, std::uint32_t> function_ids;
  std::map<std::string, std::uint32_t> import_ids;
  for (const Line& line : lines) {
    if (line.tokens[0] == "func") {
      if (line.tokens.size() < 2)
        return fail("line " + std::to_string(line.number) +
                    ": func requires a name");
      const std::string& name = line.tokens[1];
      if (function_ids.contains(name))
        return fail("line " + std::to_string(line.number) +
                    ": duplicate function '" + name + "'");
      function_ids[name] = static_cast<std::uint32_t>(function_ids.size());
    } else if (line.tokens[0] == "import") {
      if (line.tokens.size() != 2)
        return fail("line " + std::to_string(line.number) +
                    ": import requires a name");
      if (!import_ids.contains(line.tokens[1])) {
        import_ids[line.tokens[1]] =
            static_cast<std::uint32_t>(m.host_imports.size());
        m.host_imports.push_back(line.tokens[1]);
      }
    }
  }

  // Pass 2: full parse.
  Function* current = nullptr;
  std::map<std::string, std::size_t> labels;               // current function
  std::vector<std::pair<std::size_t, std::string>> fixups;  // (pc, label)
  std::size_t current_line = 0;

  auto finish_function = [&]() -> Status {
    for (const auto& [pc, label] : fixups) {
      auto it = labels.find(label);
      if (it == labels.end())
        return fail("function '" + current->name + "': undefined label '" +
                    label + "'");
      current->code[pc].imm = static_cast<std::int64_t>(it->second);
    }
    labels.clear();
    fixups.clear();
    current = nullptr;
    return ok_status();
  };

  for (const Line& line : lines) {
    current_line = line.number;
    const std::string& head = line.tokens[0];
    const auto expect_args = [&](std::size_t n) -> Status {
      if (line.tokens.size() != n + 1)
        return fail("line " + std::to_string(line.number) + ": '" + head +
                    "' expects " + std::to_string(n) + " operand(s)");
      return ok_status();
    };

    if (current == nullptr) {
      if (head == "memory") {
        if (auto s = expect_args(1); !s) return s.error();
        auto v = parse_int(line.tokens[1], line.number);
        if (!v) return v.error();
        if (*v < 0 || *v > (1 << 24))
          return fail("line " + std::to_string(line.number) +
                      ": memory size out of range");
        m.memory_size = static_cast<std::uint32_t>(*v);
      } else if (head == "global") {
        if (auto s = expect_args(1); !s) return s.error();
        auto v = parse_int(line.tokens[1], line.number);
        if (!v) return v.error();
        m.globals.push_back(*v);
      } else if (head == "import") {
        // handled in pass 1
      } else if (head == "buffer") {
        if (auto s = expect_args(3); !s) return s.error();
        auto offset = parse_int(line.tokens[2], line.number);
        if (!offset) return offset.error();
        auto size = parse_int(line.tokens[3], line.number);
        if (!size) return size.error();
        if (*offset < 0 || *size < 0)
          return fail("line " + std::to_string(line.number) +
                      ": negative buffer bounds");
        m.buffers.push_back(BufferDecl{line.tokens[1],
                                       static_cast<std::uint32_t>(*offset),
                                       static_cast<std::uint32_t>(*size)});
      } else if (head == "func") {
        Function f;
        f.name = line.tokens[1];
        for (std::size_t i = 2; i + 1 < line.tokens.size(); i += 2) {
          auto v = parse_int(line.tokens[i + 1], line.number);
          if (!v) return v.error();
          if (line.tokens[i] == "params")
            f.param_count = static_cast<std::uint32_t>(*v);
          else if (line.tokens[i] == "locals")
            f.local_count = static_cast<std::uint32_t>(*v);
          else
            return fail("line " + std::to_string(line.number) +
                        ": unknown func attribute '" + line.tokens[i] + "'");
        }
        m.functions.push_back(std::move(f));
        current = &m.functions.back();
      } else {
        return fail("line " + std::to_string(line.number) +
                    ": unexpected '" + head + "' outside function");
      }
      continue;
    }

    // Inside a function body.
    if (head == "end") {
      if (auto s = finish_function(); !s) return s.error();
      continue;
    }
    if (head.size() > 1 && head.back() == ':') {
      const std::string label = head.substr(0, head.size() - 1);
      if (labels.contains(label))
        return fail("line " + std::to_string(line.number) +
                    ": duplicate label '" + label + "'");
      labels[label] = current->code.size();
      continue;
    }

    auto [op, known] = opcode_from_name(head);
    if (!known)
      return fail("line " + std::to_string(line.number) +
                  ": unknown mnemonic '" + head + "'");
    Instruction ins{op, 0};
    const bool is_memory_op =
        op == Opcode::kLoad8 || op == Opcode::kLoad32 ||
        op == Opcode::kLoad64 || op == Opcode::kStore8 ||
        op == Opcode::kStore32 || op == Opcode::kStore64;
    if (is_memory_op && line.tokens.size() == 1) {
      // Load/store static offsets default to 0 when omitted.
      current->code.push_back(ins);
      continue;
    }
    if (opcode_has_immediate(op)) {
      if (auto s = expect_args(1); !s) return s.error();
      const std::string& operand = line.tokens[1];
      switch (op) {
        case Opcode::kJump:
        case Opcode::kJumpIf:
        case Opcode::kJumpIfZ:
          fixups.emplace_back(current->code.size(), operand);
          break;
        case Opcode::kCall: {
          auto it = function_ids.find(operand);
          if (it == function_ids.end())
            return fail("line " + std::to_string(line.number) +
                        ": unknown function '" + operand + "'");
          ins.imm = it->second;
          break;
        }
        case Opcode::kCallHost: {
          auto it = import_ids.find(operand);
          if (it == import_ids.end())
            return fail("line " + std::to_string(line.number) +
                        ": unknown import '" + operand +
                        "' (declare with 'import')");
          ins.imm = it->second;
          break;
        }
        default: {
          auto v = parse_int(operand, line.number);
          if (!v) return v.error();
          ins.imm = *v;
          break;
        }
      }
    } else if (line.tokens.size() != 1) {
      return fail("line " + std::to_string(line.number) + ": '" + head +
                  "' takes no operand");
    }
    current->code.push_back(ins);
  }

  if (current != nullptr)
    return fail("line " + std::to_string(current_line) +
                ": missing 'end' for function '" + current->name + "'");
  return m;
}

std::string disassemble(const Module& m) {
  std::ostringstream out;
  out << "memory " << m.memory_size << "\n";
  for (std::int64_t g : m.globals) out << "global " << g << "\n";
  for (const std::string& name : m.host_imports) out << "import " << name << "\n";
  for (const BufferDecl& b : m.buffers)
    out << "buffer " << b.name << " " << b.offset << " " << b.size << "\n";
  for (const Function& f : m.functions) {
    out << "func " << f.name;
    if (f.param_count) out << " params " << f.param_count;
    if (f.local_count) out << " locals " << f.local_count;
    out << "\n";
    // Collect jump targets so we can print labels.
    std::map<std::int64_t, std::string> targets;
    for (const Instruction& ins : f.code) {
      if (ins.op == Opcode::kJump || ins.op == Opcode::kJumpIf ||
          ins.op == Opcode::kJumpIfZ) {
        if (!targets.contains(ins.imm))
          targets[ins.imm] = "L" + std::to_string(targets.size());
      }
    }
    for (std::size_t pc = 0; pc < f.code.size(); ++pc) {
      if (auto it = targets.find(static_cast<std::int64_t>(pc));
          it != targets.end())
        out << it->second << ":\n";
      const Instruction& ins = f.code[pc];
      out << "  " << opcode_name(ins.op);
      if (opcode_has_immediate(ins.op)) {
        switch (ins.op) {
          case Opcode::kJump:
          case Opcode::kJumpIf:
          case Opcode::kJumpIfZ:
            out << " " << targets.at(ins.imm);
            break;
          case Opcode::kCall:
            out << " "
                << m.functions[static_cast<std::size_t>(ins.imm)].name;
            break;
          case Opcode::kCallHost:
            out << " "
                << m.host_imports[static_cast<std::size_t>(ins.imm)];
            break;
          default:
            out << " " << ins.imm;
            break;
        }
      }
      out << "\n";
    }
    out << "end\n";
  }
  return out.str();
}

}  // namespace debuglet::vm
