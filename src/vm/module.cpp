#include "vm/module.hpp"

namespace debuglet::vm {

namespace {

constexpr std::uint32_t kMagic = 0x44564D31;  // "DVM1"

constexpr std::uint8_t kSectionMemory = 1;
constexpr std::uint8_t kSectionGlobals = 2;
constexpr std::uint8_t kSectionImports = 3;
constexpr std::uint8_t kSectionBuffers = 4;
constexpr std::uint8_t kSectionFunctions = 5;
constexpr std::uint8_t kSectionEnd = 0;

// Limits enforced at parse time; the validator re-checks semantics.
constexpr std::uint64_t kMaxMemory = 16 * 1024 * 1024;
constexpr std::uint64_t kMaxFunctions = 4096;
constexpr std::uint64_t kMaxCodeLength = 1 << 20;
constexpr std::uint64_t kMaxGlobals = 4096;
constexpr std::uint64_t kMaxImports = 256;
constexpr std::uint64_t kMaxBuffers = 256;
constexpr std::uint64_t kMaxLocals = 65536;

}  // namespace

int Module::function_index(std::string_view name) const {
  for (std::size_t i = 0; i < functions.size(); ++i)
    if (functions[i].name == name) return static_cast<int>(i);
  return -1;
}

int Module::buffer_index(std::string_view name) const {
  for (std::size_t i = 0; i < buffers.size(); ++i)
    if (buffers[i].name == name) return static_cast<int>(i);
  return -1;
}

Bytes Module::serialize() const {
  BytesWriter w;
  w.u32(kMagic);

  w.u8(kSectionMemory);
  w.varint(memory_size);

  w.u8(kSectionGlobals);
  w.varint(globals.size());
  for (std::int64_t g : globals) w.i64(g);

  w.u8(kSectionImports);
  w.varint(host_imports.size());
  for (const std::string& name : host_imports) w.str(name);

  w.u8(kSectionBuffers);
  w.varint(buffers.size());
  for (const BufferDecl& b : buffers) {
    w.str(b.name);
    w.varint(b.offset);
    w.varint(b.size);
  }

  w.u8(kSectionFunctions);
  w.varint(functions.size());
  for (const Function& f : functions) {
    w.str(f.name);
    w.varint(f.param_count);
    w.varint(f.local_count);
    w.varint(f.code.size());
    for (const Instruction& ins : f.code) {
      w.u8(static_cast<std::uint8_t>(ins.op));
      if (opcode_has_immediate(ins.op)) w.i64(ins.imm);
    }
  }

  w.u8(kSectionEnd);
  return w.take();
}

Result<Module> Module::parse(BytesView data) {
  BytesReader r(data);
  auto magic = r.u32();
  if (!magic) return magic.error();
  if (*magic != kMagic) return fail("bad DVM module magic");

  Module m;
  m.memory_size = 0;
  bool saw_functions = false;
  for (;;) {
    auto section = r.u8();
    if (!section) return section.error();
    if (*section == kSectionEnd) break;
    switch (*section) {
      case kSectionMemory: {
        auto size = r.varint();
        if (!size) return size.error();
        if (*size > kMaxMemory) return fail("memory size exceeds limit");
        m.memory_size = static_cast<std::uint32_t>(*size);
        break;
      }
      case kSectionGlobals: {
        auto count = r.varint();
        if (!count) return count.error();
        if (*count > kMaxGlobals) return fail("too many globals");
        m.globals.resize(*count);
        for (auto& g : m.globals) {
          auto v = r.i64();
          if (!v) return v.error();
          g = *v;
        }
        break;
      }
      case kSectionImports: {
        auto count = r.varint();
        if (!count) return count.error();
        if (*count > kMaxImports) return fail("too many imports");
        m.host_imports.resize(*count);
        for (auto& name : m.host_imports) {
          auto s = r.str();
          if (!s) return s.error();
          name = std::move(*s);
        }
        break;
      }
      case kSectionBuffers: {
        auto count = r.varint();
        if (!count) return count.error();
        if (*count > kMaxBuffers) return fail("too many buffers");
        m.buffers.resize(*count);
        for (auto& b : m.buffers) {
          auto name = r.str();
          if (!name) return name.error();
          auto offset = r.varint();
          if (!offset) return offset.error();
          auto size = r.varint();
          if (!size) return size.error();
          if (*offset > kMaxMemory || *size > kMaxMemory)
            return fail("buffer bounds exceed limits");
          b = BufferDecl{std::move(*name), static_cast<std::uint32_t>(*offset),
                         static_cast<std::uint32_t>(*size)};
        }
        break;
      }
      case kSectionFunctions: {
        auto count = r.varint();
        if (!count) return count.error();
        if (*count > kMaxFunctions) return fail("too many functions");
        m.functions.resize(*count);
        for (auto& f : m.functions) {
          auto name = r.str();
          if (!name) return name.error();
          f.name = std::move(*name);
          auto params = r.varint();
          if (!params) return params.error();
          auto locals = r.varint();
          if (!locals) return locals.error();
          if (*params > kMaxLocals || *locals > kMaxLocals)
            return fail("too many parameters or locals");
          f.param_count = static_cast<std::uint32_t>(*params);
          f.local_count = static_cast<std::uint32_t>(*locals);
          auto code_len = r.varint();
          if (!code_len) return code_len.error();
          if (*code_len > kMaxCodeLength) return fail("function too long");
          f.code.resize(*code_len);
          for (auto& ins : f.code) {
            auto op = r.u8();
            if (!op) return op.error();
            if (!opcode_is_valid(*op))
              return fail("invalid opcode 0x" +
                          to_hex(BytesView(&*op, 1)));
            ins.op = static_cast<Opcode>(*op);
            if (opcode_has_immediate(ins.op)) {
              auto imm = r.i64();
              if (!imm) return imm.error();
              ins.imm = *imm;
            }
          }
        }
        saw_functions = true;
        break;
      }
      default:
        return fail("unknown section tag " + std::to_string(*section));
    }
  }
  if (!saw_functions) return fail("module has no function section");
  if (!r.exhausted()) return fail("trailing bytes after module end");
  return m;
}

}  // namespace debuglet::vm
