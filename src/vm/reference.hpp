// The reference DVM interpreter.
//
// This is the original decode-in-the-loop switch interpreter, preserved
// verbatim as the trusted definition of DVM semantics. The fast engine
// (vm/dispatch.hpp) must be observably indistinguishable from it;
// tests/vm_differential_test.cpp runs both over seeded random modules and
// asserts bit-for-bit agreement. Keep this implementation boring: no
// superinstructions, no batching, one fuel check per instruction.
#pragma once

#include <span>
#include <string_view>

#include "vm/interpreter.hpp"

namespace debuglet::vm {

/// Convenience entry points that run with Engine::kReference. The actual
/// loop lives in Execution::step_reference (reference.cpp); this facade
/// exists so tests and tools can name the trusted engine explicitly.
struct ReferenceInterpreter {
  /// Runs the entry point to completion (async host calls trap).
  static RunOutcome run(Instance& instance);

  /// Runs an arbitrary exported function to completion.
  static RunOutcome run_function(Instance& instance, std::string_view name,
                                 std::span<const std::int64_t> args);

  /// Prepares a suspendable reference-engine run.
  static Result<Execution> start(Instance& instance,
                                 std::string_view function_name,
                                 std::span<const std::int64_t> args);

  /// Prepares a suspendable reference-engine run of the entry point.
  static Result<Execution> start_entry(Instance& instance);
};

}  // namespace debuglet::vm
