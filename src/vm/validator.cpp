#include "vm/validator.hpp"

#include <set>

namespace debuglet::vm {

namespace {

Status validate_function(const Module& m, const Function& f,
                         const ValidationLimits& limits) {
  const std::string where = "function '" + f.name + "': ";
  if (f.name.empty()) return fail("function with empty name");
  if (f.param_count + f.local_count > limits.max_locals)
    return fail(where + "too many locals");
  if (f.code.size() > limits.max_code_length)
    return fail(where + "code too long");
  if (f.code.empty()) return fail(where + "empty body");

  const auto code_len = static_cast<std::int64_t>(f.code.size());
  const auto local_total =
      static_cast<std::int64_t>(f.param_count) + f.local_count;
  for (std::size_t pc = 0; pc < f.code.size(); ++pc) {
    const Instruction& ins = f.code[pc];
    const std::string at = where + "pc " + std::to_string(pc) + " (" +
                           opcode_name(ins.op) + "): ";
    switch (ins.op) {
      case Opcode::kLocalGet:
      case Opcode::kLocalSet:
        if (ins.imm < 0 || ins.imm >= local_total)
          return fail(at + "local index out of range");
        break;
      case Opcode::kGlobalGet:
      case Opcode::kGlobalSet:
        if (ins.imm < 0 ||
            ins.imm >= static_cast<std::int64_t>(m.globals.size()))
          return fail(at + "global index out of range");
        break;
      case Opcode::kJump:
      case Opcode::kJumpIf:
      case Opcode::kJumpIfZ:
        if (ins.imm < 0 || ins.imm >= code_len)
          return fail(at + "jump target out of range");
        break;
      case Opcode::kCall:
        if (ins.imm < 0 ||
            ins.imm >= static_cast<std::int64_t>(m.functions.size()))
          return fail(at + "function index out of range");
        break;
      case Opcode::kCallHost:
        if (ins.imm < 0 ||
            ins.imm >= static_cast<std::int64_t>(m.host_imports.size()))
          return fail(at + "host import index out of range");
        break;
      case Opcode::kLoad8:
      case Opcode::kLoad32:
      case Opcode::kLoad64:
      case Opcode::kStore8:
      case Opcode::kStore32:
      case Opcode::kStore64:
        if (ins.imm < 0 ||
            ins.imm >= static_cast<std::int64_t>(m.memory_size))
          return fail(at + "static memory offset out of range");
        break;
      default:
        break;
    }
  }
  // The final instruction must be an unconditional exit so execution cannot
  // fall off the end of the body.
  const Opcode last = f.code.back().op;
  if (last != Opcode::kReturn && last != Opcode::kJump &&
      last != Opcode::kAbort)
    return fail(where + "body must end in return, jump, or abort");
  return ok_status();
}

}  // namespace

Status validate(const Module& m, const ValidationLimits& limits) {
  if (m.memory_size > limits.max_memory)
    return fail("memory size " + std::to_string(m.memory_size) +
                " exceeds limit " + std::to_string(limits.max_memory));
  if (m.functions.size() > limits.max_functions)
    return fail("too many functions");
  if (m.globals.size() > limits.max_globals) return fail("too many globals");

  std::set<std::string> buffer_names;
  for (const BufferDecl& b : m.buffers) {
    if (b.name.empty()) return fail("buffer with empty name");
    if (!buffer_names.insert(b.name).second)
      return fail("duplicate buffer name '" + b.name + "'");
    const std::uint64_t end =
        static_cast<std::uint64_t>(b.offset) + b.size;
    if (end > m.memory_size)
      return fail("buffer '" + b.name + "' exceeds memory bounds");
  }

  std::set<std::string> function_names;
  for (const Function& f : m.functions) {
    if (!function_names.insert(f.name).second)
      return fail("duplicate function name '" + f.name + "'");
    if (auto s = validate_function(m, f, limits); !s) return s;
  }

  const int entry = m.function_index(kEntryPointName);
  if (entry < 0)
    return fail(std::string("module does not export '") + kEntryPointName +
                "'");
  if (m.functions[static_cast<std::size_t>(entry)].param_count !=
      limits.entry_param_count)
    return fail(std::string(kEntryPointName) + " must take exactly " +
                std::to_string(limits.entry_param_count) + " parameters");

  std::set<std::string> import_names;
  for (const std::string& name : m.host_imports) {
    if (name.empty()) return fail("host import with empty name");
    if (!import_names.insert(name).second)
      return fail("duplicate host import '" + name + "'");
  }
  return ok_status();
}

}  // namespace debuglet::vm
