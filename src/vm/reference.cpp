// Execution::step_reference — the original decode-in-the-loop switch
// interpreter, unchanged except that every trap site now records the
// function index and source pc of the trapping instruction. See
// reference.hpp for why this engine stays deliberately simple.
#include <limits>

#include "vm/reference.hpp"

namespace debuglet::vm {

Execution::State Execution::step_reference() {
  const ExecutionLimits& limits = instance_->limits_;
  const Module& module = instance_->module_;

  while (state_ == State::kRunning) {
    if (frames_.empty()) {
      finish_trap(TrapKind::kAbort, "no active frame", 0, 0);
      break;
    }
    Frame& frame = frames_.back();
    const Function& f = module.functions[frame.function];
    const std::uint32_t at_func = frame.function;
    const std::uint32_t at_pc = frame.pc;
    if (frame.pc >= f.code.size()) {
      finish_trap(TrapKind::kAbort, "fell off function body", at_func, at_pc);
      break;
    }
    const Instruction ins = f.code[frame.pc];

    if (fuel_ == 0) {
      finish_trap(TrapKind::kOutOfFuel, "fuel exhausted in '" + f.name + "'",
                  at_func, at_pc);
      break;
    }
    --fuel_;

    auto pop = [&](std::int64_t& out) {
      if (stack_.empty()) return false;
      out = stack_.back();
      stack_.pop_back();
      return true;
    };
    auto push = [&](std::int64_t v) {
      if (stack_.size() >= limits.max_value_stack) return false;
      stack_.push_back(v);
      return true;
    };
    const auto underflow = [&] {
      finish_trap(TrapKind::kStackUnderflow,
                  "stack underflow at " + opcode_name(ins.op), at_func, at_pc);
    };
    const auto overflow = [&] {
      finish_trap(TrapKind::kStackOverflow,
                  "value stack overflow at " + opcode_name(ins.op), at_func,
                  at_pc);
    };

    ++frame.pc;
    switch (ins.op) {
      case Opcode::kNop:
        break;
      case Opcode::kConst:
        if (!push(ins.imm)) overflow();
        break;
      case Opcode::kDrop: {
        std::int64_t v;
        if (!pop(v)) underflow();
        break;
      }
      case Opcode::kDup: {
        if (stack_.empty()) {
          underflow();
          break;
        }
        if (!push(stack_.back())) overflow();
        break;
      }
      case Opcode::kLocalGet:
        if (!push(locals_[frame.locals_base +
                          static_cast<std::uint32_t>(ins.imm)]))
          overflow();
        break;
      case Opcode::kLocalSet: {
        std::int64_t v;
        if (!pop(v)) {
          underflow();
          break;
        }
        locals_[frame.locals_base + static_cast<std::uint32_t>(ins.imm)] = v;
        break;
      }
      case Opcode::kGlobalGet:
        if (!push(instance_->globals_[static_cast<std::size_t>(ins.imm)]))
          overflow();
        break;
      case Opcode::kGlobalSet: {
        std::int64_t v;
        if (!pop(v)) {
          underflow();
          break;
        }
        instance_->globals_[static_cast<std::size_t>(ins.imm)] = v;
        break;
      }

      case Opcode::kAdd:
      case Opcode::kSub:
      case Opcode::kMul:
      case Opcode::kDivS:
      case Opcode::kRemS:
      case Opcode::kAnd:
      case Opcode::kOr:
      case Opcode::kXor:
      case Opcode::kShl:
      case Opcode::kShrS:
      case Opcode::kShrU:
      case Opcode::kEq:
      case Opcode::kNe:
      case Opcode::kLtS:
      case Opcode::kGtS:
      case Opcode::kLeS:
      case Opcode::kGeS: {
        std::int64_t b, a;
        if (!pop(b) || !pop(a)) {
          underflow();
          break;
        }
        std::int64_t r = 0;
        const auto ua = static_cast<std::uint64_t>(a);
        const auto ub = static_cast<std::uint64_t>(b);
        bool trapped = false;
        switch (ins.op) {
          case Opcode::kAdd: r = static_cast<std::int64_t>(ua + ub); break;
          case Opcode::kSub: r = static_cast<std::int64_t>(ua - ub); break;
          case Opcode::kMul: r = static_cast<std::int64_t>(ua * ub); break;
          case Opcode::kDivS:
            if (b == 0) {
              finish_trap(TrapKind::kDivideByZero, "div_s by zero", at_func,
                          at_pc);
              trapped = true;
            } else if (a == std::numeric_limits<std::int64_t>::min() &&
                       b == -1) {
              finish_trap(TrapKind::kIntegerOverflow, "div_s overflow",
                          at_func, at_pc);
              trapped = true;
            } else {
              r = a / b;
            }
            break;
          case Opcode::kRemS:
            if (b == 0) {
              finish_trap(TrapKind::kDivideByZero, "rem_s by zero", at_func,
                          at_pc);
              trapped = true;
            } else if (a == std::numeric_limits<std::int64_t>::min() &&
                       b == -1) {
              r = 0;
            } else {
              r = a % b;
            }
            break;
          case Opcode::kAnd: r = a & b; break;
          case Opcode::kOr: r = a | b; break;
          case Opcode::kXor: r = a ^ b; break;
          case Opcode::kShl:
            r = static_cast<std::int64_t>(ua << (ub & 63));
            break;
          case Opcode::kShrS: r = a >> (ub & 63); break;
          case Opcode::kShrU:
            r = static_cast<std::int64_t>(ua >> (ub & 63));
            break;
          case Opcode::kEq: r = a == b; break;
          case Opcode::kNe: r = a != b; break;
          case Opcode::kLtS: r = a < b; break;
          case Opcode::kGtS: r = a > b; break;
          case Opcode::kLeS: r = a <= b; break;
          case Opcode::kGeS: r = a >= b; break;
          default: break;
        }
        if (!trapped && !push(r)) overflow();
        break;
      }
      case Opcode::kEqz: {
        std::int64_t a;
        if (!pop(a)) {
          underflow();
          break;
        }
        if (!push(a == 0 ? 1 : 0)) overflow();
        break;
      }

      case Opcode::kLoad8:
      case Opcode::kLoad32:
      case Opcode::kLoad64: {
        std::int64_t addr;
        if (!pop(addr)) {
          underflow();
          break;
        }
        const std::uint64_t width =
            ins.op == Opcode::kLoad8 ? 1 : ins.op == Opcode::kLoad32 ? 4 : 8;
        const std::uint64_t base = static_cast<std::uint64_t>(addr) +
                                   static_cast<std::uint64_t>(ins.imm);
        if (addr < 0 || base + width > instance_->memory_.size() ||
            base + width < base) {
          finish_trap(TrapKind::kMemoryOutOfBounds,
                      "load at " + std::to_string(base), at_func, at_pc);
          break;
        }
        std::uint64_t v = 0;
        for (std::uint64_t i = 0; i < width; ++i)
          v |= static_cast<std::uint64_t>(instance_->memory_[base + i])
               << (i * 8);
        if (!push(static_cast<std::int64_t>(v))) overflow();
        break;
      }
      case Opcode::kStore8:
      case Opcode::kStore32:
      case Opcode::kStore64: {
        std::int64_t value, addr;
        if (!pop(value) || !pop(addr)) {
          underflow();
          break;
        }
        const std::uint64_t width =
            ins.op == Opcode::kStore8 ? 1 : ins.op == Opcode::kStore32 ? 4 : 8;
        const std::uint64_t base = static_cast<std::uint64_t>(addr) +
                                   static_cast<std::uint64_t>(ins.imm);
        if (addr < 0 || base + width > instance_->memory_.size() ||
            base + width < base) {
          finish_trap(TrapKind::kMemoryOutOfBounds,
                      "store at " + std::to_string(base), at_func, at_pc);
          break;
        }
        for (std::uint64_t i = 0; i < width; ++i)
          instance_->memory_[base + i] = static_cast<std::uint8_t>(
              static_cast<std::uint64_t>(value) >> (i * 8));
        break;
      }
      case Opcode::kMemSize:
        if (!push(static_cast<std::int64_t>(instance_->memory_.size())))
          overflow();
        break;

      case Opcode::kJump:
        frame.pc = static_cast<std::uint32_t>(ins.imm);
        break;
      case Opcode::kJumpIf: {
        std::int64_t cond;
        if (!pop(cond)) {
          underflow();
          break;
        }
        if (cond != 0) frame.pc = static_cast<std::uint32_t>(ins.imm);
        break;
      }
      case Opcode::kJumpIfZ: {
        std::int64_t cond;
        if (!pop(cond)) {
          underflow();
          break;
        }
        if (cond == 0) frame.pc = static_cast<std::uint32_t>(ins.imm);
        break;
      }
      case Opcode::kCall: {
        if (frames_.size() >= limits.max_call_depth) {
          finish_trap(TrapKind::kCallDepthExceeded, "call depth limit",
                      at_func, at_pc);
          break;
        }
        const auto callee = static_cast<std::uint32_t>(ins.imm);
        const Function& target = module.functions[callee];
        if (stack_.size() < target.param_count) {
          underflow();
          break;
        }
        std::vector<std::int64_t> call_args(stack_.end() - target.param_count,
                                            stack_.end());
        stack_.resize(stack_.size() - target.param_count);
        push_frame(callee, call_args);
        break;
      }
      case Opcode::kCallHost: {
        const HostFunction& hf =
            instance_->imports_[static_cast<std::size_t>(ins.imm)];
        if (stack_.size() < hf.arity) {
          underflow();
          break;
        }
        std::vector<std::int64_t> call_args(stack_.end() - hf.arity,
                                            stack_.end());
        stack_.resize(stack_.size() - hf.arity);
        if (fuel_ < limits.host_call_fuel_cost) {
          finish_trap(TrapKind::kOutOfFuel, "fuel exhausted on host call",
                      at_func, at_pc);
          break;
        }
        fuel_ -= limits.host_call_fuel_cost;
        ++host_calls_;
        if (hf.async) {
          block_ = BlockInfo{static_cast<std::uint32_t>(ins.imm), hf.name,
                             std::move(call_args)};
          block_src_function_ = at_func;
          block_src_pc_ = at_pc;
          state_ = State::kBlocked;
          break;
        }
        auto result = hf.fn(*instance_, call_args);
        if (!result) {
          finish_trap(TrapKind::kHostError,
                      hf.name + ": " + result.error_message(), at_func, at_pc);
          break;
        }
        if (!push(*result)) overflow();
        break;
      }
      case Opcode::kReturn: {
        std::int64_t value;
        if (!pop(value)) {
          underflow();
          break;
        }
        locals_.resize(frames_.back().locals_base);
        frames_.pop_back();
        if (frames_.empty()) {
          finish_value(value);
          break;
        }
        if (!push(value)) overflow();
        break;
      }
      case Opcode::kAbort:
        finish_trap(TrapKind::kAbort,
                    "abort(" + std::to_string(ins.imm) + ") in '" + f.name +
                        "'",
                    at_func, at_pc);
        break;
    }
  }
  return state_;
}

RunOutcome ReferenceInterpreter::run(Instance& instance) {
  return run_function(instance, kEntryPointName, {});
}

RunOutcome ReferenceInterpreter::run_function(
    Instance& instance, std::string_view name,
    std::span<const std::int64_t> args) {
  return instance.run_function(name, args, Engine::kReference);
}

Result<Execution> ReferenceInterpreter::start(
    Instance& instance, std::string_view function_name,
    std::span<const std::int64_t> args) {
  return Execution::start(instance, function_name, args, Engine::kReference);
}

Result<Execution> ReferenceInterpreter::start_entry(Instance& instance) {
  return Execution::start_entry(instance, Engine::kReference);
}

}  // namespace debuglet::vm
