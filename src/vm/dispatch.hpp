// Decode-once execution pipeline for the DVM.
//
// Instance::create translates validated bytecode into a dense pre-decoded
// instruction array: one fixed-size DecodedInst per executed step, with the
// immediate widened in place, jump targets rewritten to decoded indices,
// hot instruction pairs fused into superinstructions, and fuel accounting
// batched per basic block. The interpreter then dispatches over DecodedInst
// via computed-goto threaded code (or a portable switch fallback, see
// DEBUGLET_VM_COMPUTED_GOTO) instead of re-inspecting Instruction in the
// loop.
//
// The translation is strictly semantics-preserving: for every module and
// every input, the fast engine must produce the same return value, trap
// kind/message/pc, fuel_used, host-call sequence, and final memory as the
// ReferenceInterpreter (vm/reference.hpp). tests/vm_differential_test.cpp
// enforces this over seeded random modules.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/result.hpp"
#include "vm/module.hpp"

namespace debuglet::vm {

/// Decoded operations: the base ISA one-to-one, plus translation-internal
/// pseudo-ops and fused superinstructions.
enum class FusedOp : std::uint8_t {
  // Base opcodes (same semantics as the matching Opcode).
  kNop = 0,
  kConst,
  kDrop,
  kDup,
  kLocalGet,
  kLocalSet,
  kGlobalGet,
  kGlobalSet,
  kAdd,
  kSub,
  kMul,
  kDivS,
  kRemS,
  kAnd,
  kOr,
  kXor,
  kShl,
  kShrS,
  kShrU,
  kEq,
  kNe,
  kLtS,
  kGtS,
  kLeS,
  kGeS,
  kEqz,
  kLoad8,
  kLoad32,
  kLoad64,
  kStore8,
  kStore32,
  kStore64,
  kMemSize,
  kJump,
  kJumpIf,
  kJumpIfZ,
  kCall,
  kCallHost,
  kReturn,
  kAbort,

  // Pseudo-ops inserted by the translator.
  kChargeFuel,  // basic-block leader: batch-charge `a` units of fuel
  kFallOff,     // sentinel after the last instruction ("fell off body")

  // Superinstructions (the hot pairs/quads the apps and benches emit).
  kFusedLocalBranchIf,       // if (locals[a] <sub> imm) goto target
  kFusedLocalBranchIfZ,      // if (!(locals[a] <sub> imm)) goto target
  kFusedLocalConstArithSet,  // locals[b] = locals[a] <sub> imm
  kFusedConstArith,          // top = top <sub> imm
  kFusedLocalArith,          // top = top <sub> locals[a]

  kCount,
};

/// One pre-decoded instruction. 32 bytes, laid out for dense sequential
/// access; `src_pc` maps back to the first source instruction the entry
/// covers so traps report original program counters.
struct DecodedInst {
  FusedOp op = FusedOp::kNop;
  std::uint8_t cost = 1;       // source instructions covered (fuel units)
  Opcode sub = Opcode::kNop;   // component operator of a fused op
  std::uint32_t a = 0;         // local/global/function/import index, charge
  std::uint32_t b = 0;         // destination local of a fused set
  std::uint32_t target = 0;    // decoded jump target
  std::uint32_t src_pc = 0;    // source pc of the first covered instruction
  std::int64_t imm = 0;        // widened immediate
};

struct TranslatedFunction {
  std::vector<DecodedInst> code;  // always ends with a kFallOff sentinel
};

struct TranslatedModule {
  std::vector<TranslatedFunction> functions;
};

struct TranslateOptions {
  bool fuse = true;  // emit superinstructions (off: 1:1 decode only)
};

/// Translates a module that passed vm::validate(). Re-checks the structural
/// properties translation relies on (jump targets and indices in range) and
/// fails — never misbehaves — when handed an unvalidated module.
Result<TranslatedModule> translate(const Module& module,
                                   const TranslateOptions& options = {});

/// Name of a decoded op, for diagnostics and the coverage audit.
std::string fused_op_name(FusedOp op);

/// Every decoded op, in enum order (pseudo-ops and fusions included).
const std::vector<FusedOp>& all_fused_ops();

/// Compile-time dispatch strategy of the fast engine: "threaded"
/// (computed goto) or "switch" (portable fallback).
const char* dispatch_mode();

}  // namespace debuglet::vm
