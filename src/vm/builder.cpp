#include "vm/builder.hpp"

#include <stdexcept>

namespace debuglet::vm {

FunctionBuilder& FunctionBuilder::emit(Opcode op, std::int64_t imm) {
  code_.push_back(Instruction{op, opcode_has_immediate(op) ? imm : 0});
  return *this;
}

FunctionBuilder::Label FunctionBuilder::make_label() {
  label_targets_.push_back(-1);
  return static_cast<Label>(label_targets_.size() - 1);
}

FunctionBuilder& FunctionBuilder::bind(Label label) {
  if (label >= label_targets_.size())
    throw std::logic_error("bind: unknown label");
  if (label_targets_[label] != -1)
    throw std::logic_error("bind: label already bound");
  label_targets_[label] = static_cast<std::int64_t>(code_.size());
  return *this;
}

FunctionBuilder& FunctionBuilder::jump_op(Opcode op, Label label) {
  if (label >= label_targets_.size())
    throw std::logic_error("jump: unknown label");
  fixups_.emplace_back(code_.size(), label);
  return emit(op, 0);
}

FunctionBuilder& FunctionBuilder::call(std::string callee) {
  call_fixups_.emplace_back(code_.size(), std::move(callee));
  return emit(Opcode::kCall, 0);
}

FunctionBuilder& FunctionBuilder::call_host(std::string import_name) {
  const std::uint32_t idx = parent_->import(std::move(import_name));
  return emit(Opcode::kCallHost, idx);
}

ModuleBuilder& ModuleBuilder::memory(std::uint32_t bytes) {
  module_.memory_size = bytes;
  return *this;
}

std::uint32_t ModuleBuilder::add_global(std::int64_t init) {
  module_.globals.push_back(init);
  return static_cast<std::uint32_t>(module_.globals.size() - 1);
}

ModuleBuilder& ModuleBuilder::add_buffer(std::string name,
                                         std::uint32_t offset,
                                         std::uint32_t size) {
  module_.buffers.push_back(BufferDecl{std::move(name), offset, size});
  return *this;
}

std::uint32_t ModuleBuilder::import(std::string name) {
  auto it = import_indices_.find(name);
  if (it != import_indices_.end()) return it->second;
  const auto idx = static_cast<std::uint32_t>(module_.host_imports.size());
  module_.host_imports.push_back(name);
  import_indices_.emplace(std::move(name), idx);
  return idx;
}

FunctionBuilder& ModuleBuilder::function(std::string name,
                                         std::uint32_t params,
                                         std::uint32_t locals) {
  for (std::size_t i = 0; i < module_.functions.size(); ++i) {
    if (module_.functions[i].name == name) return builders_[i];
  }
  Function f;
  f.name = std::move(name);
  f.param_count = params;
  f.local_count = locals;
  module_.functions.push_back(std::move(f));
  builders_.push_back(
      FunctionBuilder(*this, module_.functions.size() - 1));
  return builders_.back();
}

Module ModuleBuilder::build() {
  for (std::size_t i = 0; i < builders_.size(); ++i) {
    FunctionBuilder& fb = builders_[i];
    for (const auto& [pc, label] : fb.fixups_) {
      const std::int64_t target = fb.label_targets_[label];
      if (target < 0)
        throw std::logic_error("build: unbound label in function '" +
                               module_.functions[i].name + "'");
      fb.code_[pc].imm = target;
    }
    for (const auto& [pc, callee] : fb.call_fixups_) {
      const int idx = module_.function_index(callee);
      if (idx < 0)
        throw std::logic_error("build: unknown callee '" + callee + "'");
      fb.code_[pc].imm = idx;
    }
    module_.functions[i].code = fb.code_;
  }
  return module_;
}

}  // namespace debuglet::vm
