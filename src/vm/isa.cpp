#include "vm/isa.hpp"

#include <map>

namespace debuglet::vm {

namespace {

const std::map<Opcode, std::string>& names() {
  static const std::map<Opcode, std::string> kNames = {
      {Opcode::kNop, "nop"},
      {Opcode::kConst, "const"},
      {Opcode::kDrop, "drop"},
      {Opcode::kDup, "dup"},
      {Opcode::kLocalGet, "local.get"},
      {Opcode::kLocalSet, "local.set"},
      {Opcode::kGlobalGet, "global.get"},
      {Opcode::kGlobalSet, "global.set"},
      {Opcode::kAdd, "add"},
      {Opcode::kSub, "sub"},
      {Opcode::kMul, "mul"},
      {Opcode::kDivS, "div_s"},
      {Opcode::kRemS, "rem_s"},
      {Opcode::kAnd, "and"},
      {Opcode::kOr, "or"},
      {Opcode::kXor, "xor"},
      {Opcode::kShl, "shl"},
      {Opcode::kShrS, "shr_s"},
      {Opcode::kShrU, "shr_u"},
      {Opcode::kEq, "eq"},
      {Opcode::kNe, "ne"},
      {Opcode::kLtS, "lt_s"},
      {Opcode::kGtS, "gt_s"},
      {Opcode::kLeS, "le_s"},
      {Opcode::kGeS, "ge_s"},
      {Opcode::kEqz, "eqz"},
      {Opcode::kLoad8, "load8"},
      {Opcode::kLoad32, "load32"},
      {Opcode::kLoad64, "load64"},
      {Opcode::kStore8, "store8"},
      {Opcode::kStore32, "store32"},
      {Opcode::kStore64, "store64"},
      {Opcode::kMemSize, "mem.size"},
      {Opcode::kJump, "jump"},
      {Opcode::kJumpIf, "jump_if"},
      {Opcode::kJumpIfZ, "jump_ifz"},
      {Opcode::kCall, "call"},
      {Opcode::kCallHost, "call_host"},
      {Opcode::kReturn, "return"},
      {Opcode::kAbort, "abort"},
  };
  return kNames;
}

}  // namespace

bool opcode_has_immediate(Opcode op) {
  switch (op) {
    case Opcode::kConst:
    case Opcode::kLocalGet:
    case Opcode::kLocalSet:
    case Opcode::kGlobalGet:
    case Opcode::kGlobalSet:
    case Opcode::kLoad8:
    case Opcode::kLoad32:
    case Opcode::kLoad64:
    case Opcode::kStore8:
    case Opcode::kStore32:
    case Opcode::kStore64:
    case Opcode::kJump:
    case Opcode::kJumpIf:
    case Opcode::kJumpIfZ:
    case Opcode::kCall:
    case Opcode::kCallHost:
    case Opcode::kAbort:
      return true;
    default:
      return false;
  }
}

bool opcode_is_valid(std::uint8_t byte) {
  return names().contains(static_cast<Opcode>(byte));
}

std::string opcode_name(Opcode op) {
  auto it = names().find(op);
  return it != names().end() ? it->second : "invalid";
}

std::pair<Opcode, bool> opcode_from_name(const std::string& name) {
  for (const auto& [op, n] : names())
    if (n == name) return {op, true};
  return {Opcode::kNop, false};
}

const std::vector<Opcode>& all_opcodes() {
  static const std::vector<Opcode> kAll = [] {
    std::vector<Opcode> out;
    for (const auto& [op, _] : names()) out.push_back(op);
    return out;
  }();
  return kAll;
}

}  // namespace debuglet::vm
