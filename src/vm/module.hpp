// DVM module format.
//
// A module is the unit a Debuglet is shipped as (the paper ships WA
// bytecode strings through the marketplace). It declares linear memory
// size, global variables, host imports by name, named buffer regions
// (the paper's udp_send_buffer / tcp_receive_buffer / output buffer
// namespaces, §IV-B), and functions. The entry point is the function named
// "run_debuglet", mirroring the paper's convention.
//
// The binary encoding is a magic header followed by tagged sections; it
// round-trips exactly and rejects malformed input with precise errors.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/bytes.hpp"
#include "util/result.hpp"
#include "vm/isa.hpp"

namespace debuglet::vm {

/// Entry-point name every Debuglet must export (paper §IV-B).
inline constexpr const char* kEntryPointName = "run_debuglet";

/// Well-known buffer names the executor maps (paper §IV-B).
inline constexpr const char* kUdpSendBuffer = "udp_send_buffer";
inline constexpr const char* kUdpReceiveBuffer = "udp_receive_buffer";
inline constexpr const char* kTcpSendBuffer = "tcp_send_buffer";
inline constexpr const char* kTcpReceiveBuffer = "tcp_receive_buffer";
inline constexpr const char* kOutputBuffer = "output_buffer";

/// A named region of linear memory.
struct BufferDecl {
  std::string name;
  std::uint32_t offset = 0;
  std::uint32_t size = 0;
  bool operator==(const BufferDecl&) const = default;
};

/// One function: fixed parameter and local counts, flat instruction list.
/// Every function returns exactly one i64.
struct Function {
  std::string name;
  std::uint32_t param_count = 0;
  std::uint32_t local_count = 0;  // additional locals beyond parameters
  std::vector<Instruction> code;
  bool operator==(const Function&) const = default;
};

/// A complete DVM module.
struct Module {
  std::uint32_t memory_size = 4096;     // linear memory, bytes
  std::vector<std::int64_t> globals;    // initial global values
  std::vector<std::string> host_imports;  // names bound at instantiation
  std::vector<BufferDecl> buffers;
  std::vector<Function> functions;

  bool operator==(const Module&) const = default;

  /// Index of a function by name; -1 if absent.
  int function_index(std::string_view name) const;

  /// Index of a buffer by name; -1 if absent.
  int buffer_index(std::string_view name) const;

  /// Serialized size is what the marketplace charges storage for.
  Bytes serialize() const;
  static Result<Module> parse(BytesView data);
};

}  // namespace debuglet::vm
