// The DVM interpreter.
//
// Instance is one sandboxed environment: fixed linear memory, globals, and
// a host-function table bound by name at instantiation. Host functions are
// the ONLY channel to the outside world.
//
// Execution is a resumable run of one function. Synchronous host functions
// (clock reads, buffer ops, packet sends) execute inline; asynchronous
// ones (receive-with-timeout, sleep) suspend the Execution and hand
// control back to the embedder — the Debuglet executor — which resumes it
// when the awaited simulated event occurs. This is how a strictly
// deterministic event-driven simulator hosts code written in a blocking
// style, mirroring how Wasmer host calls block on real sockets.
//
// Two engines execute the same Instance state:
//  - Engine::kFast runs the decode-once pipeline (vm/dispatch.hpp): dense
//    pre-decoded instructions, threaded dispatch, superinstructions, and
//    per-basic-block fuel batching.
//  - Engine::kReference is the original decode-in-the-loop switch
//    interpreter (vm/reference.hpp), kept as the trusted semantics the
//    differential harness compares the fast engine against.
// Both must agree bit-for-bit on every observable: return value, trap
// kind/message/pc, fuel_used, host-call sequence, memory, and globals.
#pragma once

#include <functional>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "util/result.hpp"
#include "vm/dispatch.hpp"
#include "vm/module.hpp"

namespace debuglet::vm {

class Instance;

/// Which interpreter executes a run. See the file comment.
enum class Engine {
  kFast,
  kReference,
};

/// A host function. If `async` is false, `fn` runs inline and its value is
/// pushed. If `async` is true, the call suspends the Execution; the
/// embedder inspects Execution::block() and later resume()s with a value.
struct HostFunction {
  std::string name;
  std::uint32_t arity = 0;
  std::function<Result<std::int64_t>(Instance&,
                                     std::span<const std::int64_t>)>
      fn;
  bool async = false;
};

/// Execution limits for one run.
struct ExecutionLimits {
  std::uint64_t fuel = 10'000'000;      // instruction budget
  std::uint32_t max_value_stack = 4096;
  std::uint32_t max_call_depth = 256;
  std::uint64_t host_call_fuel_cost = 32;  // fuel charged per host call
  bool fuse_superinstructions = true;      // fast engine: emit fused ops
};

/// Why a run ended.
enum class TrapKind {
  kNone,
  kOutOfFuel,
  kMemoryOutOfBounds,
  kStackOverflow,
  kStackUnderflow,
  kDivideByZero,
  kIntegerOverflow,
  kAbort,
  kHostError,
  kCallDepthExceeded,
};

std::string trap_name(TrapKind kind);

/// The outcome of a finished run: a return value or a trap.
struct RunOutcome {
  bool trapped = false;
  TrapKind trap = TrapKind::kNone;
  std::string trap_message;
  std::int64_t value = 0;  // return value when !trapped
  std::uint64_t fuel_used = 0;
  std::uint64_t host_calls = 0;
  std::uint32_t trap_function = 0;  // function index of the trap site
  std::uint32_t trap_pc = 0;        // source pc of the trapping instruction

  bool ok() const { return !trapped; }
};

/// One instantiated module.
class Instance {
 public:
  /// Binds the module against the provided host functions and translates
  /// the code for the fast engine. Fails on unresolved imports, duplicate
  /// host-function names, or code the translator rejects. The module must
  /// already have passed validate().
  static Result<Instance> create(Module module,
                                 std::vector<HostFunction> host_functions,
                                 ExecutionLimits limits = ExecutionLimits{});

  /// Runs the entry point (run_debuglet) to completion. An async host call
  /// traps in this mode; use Execution directly for suspendable runs.
  RunOutcome run();

  /// Runs an arbitrary exported function to completion (same restriction).
  RunOutcome run_function(std::string_view name,
                          std::span<const std::int64_t> args,
                          Engine engine = Engine::kFast);

  // --- Host-facing API ------------------------------------------------

  /// Bounds-checked memory read.
  Result<Bytes> read_memory(std::uint64_t offset, std::uint64_t length) const;
  /// Bounds-checked memory write.
  Status write_memory(std::uint64_t offset, BytesView data);
  /// Locates a named buffer declared by the module.
  Result<BufferDecl> buffer(std::string_view name) const;
  /// Reads the full contents of a named buffer.
  Result<Bytes> read_buffer(std::string_view name) const;
  /// Writes into a named buffer (must fit).
  Status write_buffer(std::string_view name, BytesView data);

  /// Bounds-checked global write. The host-facing twin of globals():
  /// embedders that carry state between runs (telemetry hop registers)
  /// load it here before each run and read it back afterwards.
  Status set_global(std::size_t index, std::int64_t value) {
    if (index >= globals_.size())
      return fail("set_global: index " + std::to_string(index) +
                  " out of range");
    globals_[index] = value;
    return ok_status();
  }

  const Module& module() const { return module_; }
  const ExecutionLimits& limits() const { return limits_; }
  const TranslatedModule& translated() const { return translated_; }
  std::span<const std::int64_t> globals() const { return globals_; }
  std::uint32_t memory_size() const {
    return static_cast<std::uint32_t>(memory_.size());
  }
  const HostFunction& host_function(std::uint32_t import_index) const {
    return imports_[import_index];
  }

 private:
  friend class Execution;
  Instance(Module module, std::vector<HostFunction> bound,
           ExecutionLimits limits);

  Module module_;
  TranslatedModule translated_;
  std::vector<HostFunction> imports_;  // index-aligned with module imports
  ExecutionLimits limits_;
  std::vector<std::uint8_t> memory_;
  std::vector<std::int64_t> globals_;
};

/// A resumable run of one function within an Instance.
class Execution {
 public:
  enum class State { kReady, kRunning, kBlocked, kDone };

  /// Details of the async host call an Execution is blocked on.
  struct BlockInfo {
    std::uint32_t import_index = 0;
    std::string import_name;
    std::vector<std::int64_t> args;
  };

  /// Prepares a run of `function_name` with `args`. Fails if the function
  /// is missing or the argument count mismatches.
  static Result<Execution> start(Instance& instance,
                                 std::string_view function_name,
                                 std::span<const std::int64_t> args,
                                 Engine engine = Engine::kFast);

  /// Prepares a run of the entry point.
  static Result<Execution> start_entry(Instance& instance,
                                       Engine engine = Engine::kFast);

  /// Runs until completion or suspension on an async host call.
  /// Returns the state after stepping (kDone or kBlocked).
  State step();

  /// Unblocks the execution, pushing `value` as the async host call's
  /// result. Does NOT run any code — call step() afterwards to continue.
  /// Precondition: state() == kBlocked.
  void resume(std::int64_t value);

  /// Resumes a blocked execution by trapping it with a host error.
  void fail(std::string message);

  State state() const { return state_; }
  Engine engine() const { return engine_; }
  /// Valid when state() == kBlocked.
  const BlockInfo& block() const { return block_; }
  /// Valid when state() == kDone.
  const RunOutcome& outcome() const { return outcome_; }

  Instance& instance() { return *instance_; }

 private:
  explicit Execution(Instance& instance);

  struct Frame {
    std::uint32_t function = 0;
    // Resume position. Source-instruction index under Engine::kReference,
    // decoded-instruction index under Engine::kFast — never mixed: the
    // fast engine's fall-back to reference semantics (out-of-fuel blocks)
    // is entered only at states where no saved pc is ever re-read.
    std::uint32_t pc = 0;
    std::uint32_t locals_base = 0;
  };

  void push_frame(std::uint32_t function_index,
                  std::span<const std::int64_t> args);
  void finish_value(std::int64_t value);
  void finish_trap(TrapKind kind, std::string message, std::uint32_t function,
                   std::uint32_t pc);
  std::uint64_t fuel_used() const { return instance_->limits_.fuel - fuel_; }

  State step_fast();
  State step_reference();

  Instance* instance_;
  Engine engine_ = Engine::kFast;
  State state_ = State::kReady;
  RunOutcome outcome_;
  BlockInfo block_;
  std::vector<std::int64_t> stack_;
  std::vector<std::int64_t> locals_;
  std::vector<Frame> frames_;
  std::uint64_t fuel_ = 0;
  std::uint64_t host_calls_ = 0;
  // Fast-engine block accounting: end (exclusive, source pc) of the basic
  // block whose fuel was last batch-charged. A trap at source pc P inside
  // that block refunds block_end_src_ - (P + 1) so fuel_used matches the
  // reference engine's pay-per-instruction totals exactly.
  std::uint64_t block_end_src_ = 0;
  // Source position of the call_host an Execution blocked on; used so
  // resume()/fail() traps report engine-independent trap pcs.
  std::uint32_t block_src_pc_ = 0;
  std::uint32_t block_src_function_ = 0;

  friend struct ReferenceInterpreter;
};

}  // namespace debuglet::vm
