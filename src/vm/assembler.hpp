// Text assembler for DVM modules.
//
// A small line-oriented language so examples and tests can write Debuglets
// readably. Grammar (one construct per line; ';' or '#' start comments):
//
//   memory <bytes>
//   global <init>
//   import <host_name>
//   buffer <name> <offset> <size>
//   func <name> [params <n>] [locals <n>]
//     <label>:
//     <mnemonic> [<operand>]
//   end
//
// Operands: integers for immediates; label names for jump/jump_if/jump_ifz;
// function names for call; import names for call_host. Functions may call
// functions declared later in the file.
#pragma once

#include <string_view>

#include "util/result.hpp"
#include "vm/module.hpp"

namespace debuglet::vm {

/// Assembles source text into a Module. Errors carry line numbers.
Result<Module> assemble(std::string_view source);

/// Renders a module back to assembler text (labels synthesized as L<n>).
std::string disassemble(const Module& module);

}  // namespace debuglet::vm
