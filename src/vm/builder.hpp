// Programmatic DVM module construction.
//
// The apps module composes Debuglet programs (echo clients/servers, probe
// loops) with this builder; tests use it to make targeted modules. Labels
// resolve forward references, so loops read naturally.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "vm/module.hpp"

namespace debuglet::vm {

class ModuleBuilder;

/// Builds one function's body. Obtained from ModuleBuilder::function().
class FunctionBuilder {
 public:
  using Label = std::uint32_t;

  /// Emits an instruction (imm ignored for immediate-less opcodes).
  FunctionBuilder& emit(Opcode op, std::int64_t imm = 0);

  /// Shorthands for the common cases.
  FunctionBuilder& constant(std::int64_t v) { return emit(Opcode::kConst, v); }
  FunctionBuilder& local_get(std::uint32_t i) { return emit(Opcode::kLocalGet, i); }
  FunctionBuilder& local_set(std::uint32_t i) { return emit(Opcode::kLocalSet, i); }
  FunctionBuilder& global_get(std::uint32_t i) { return emit(Opcode::kGlobalGet, i); }
  FunctionBuilder& global_set(std::uint32_t i) { return emit(Opcode::kGlobalSet, i); }

  /// Creates an unbound label.
  Label make_label();

  /// Binds a label to the next emitted instruction.
  FunctionBuilder& bind(Label label);

  /// Emits a jump-family instruction targeting a label (bound or not yet).
  FunctionBuilder& jump(Label label) { return jump_op(Opcode::kJump, label); }
  FunctionBuilder& jump_if(Label label) { return jump_op(Opcode::kJumpIf, label); }
  FunctionBuilder& jump_ifz(Label label) { return jump_op(Opcode::kJumpIfZ, label); }

  /// Emits a call to a function by name (resolved at build()).
  FunctionBuilder& call(std::string callee);

  /// Emits a host call by import name (import registered on first use).
  FunctionBuilder& call_host(std::string import_name);

  FunctionBuilder& ret() { return emit(Opcode::kReturn); }

 private:
  friend class ModuleBuilder;
  FunctionBuilder(ModuleBuilder& parent, std::size_t index)
      : parent_(&parent), index_(index) {}
  FunctionBuilder& jump_op(Opcode op, Label label);

  ModuleBuilder* parent_;
  std::size_t index_;
  std::vector<Instruction> code_;
  std::vector<std::int64_t> label_targets_;           // -1 = unbound
  std::vector<std::pair<std::size_t, Label>> fixups_;  // (pc, label)
  std::vector<std::pair<std::size_t, std::string>> call_fixups_;
};

/// Builds a whole module.
class ModuleBuilder {
 public:
  ModuleBuilder& memory(std::uint32_t bytes);
  /// Returns the new global's index.
  std::uint32_t add_global(std::int64_t init);
  /// Declares a named buffer region.
  ModuleBuilder& add_buffer(std::string name, std::uint32_t offset,
                            std::uint32_t size);
  /// Registers a host import explicitly; returns its index. Idempotent.
  std::uint32_t import(std::string name);

  /// Starts (or continues) a function. Function order = declaration order.
  FunctionBuilder& function(std::string name, std::uint32_t params = 0,
                            std::uint32_t locals = 0);

  /// Resolves all labels and call fixups. Throws std::logic_error on
  /// unbound labels or unknown callees (builder misuse is a bug).
  Module build();

 private:
  friend class FunctionBuilder;
  Module module_;
  std::vector<FunctionBuilder> builders_;
  std::map<std::string, std::uint32_t> import_indices_;
};

}  // namespace debuglet::vm
