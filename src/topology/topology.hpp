// Path-aware inter-domain topology.
//
// Debuglet requires path awareness (paper §III-A): endpoints know, and can
// select, the ingress and egress interface of every AS on a path — the
// granularity SCION and segment routing provide. This module models the AS
// graph, inter-domain links keyed by ⟨AS, interface⟩ pairs, and path
// discovery returning full interface-level paths.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "net/address.hpp"
#include "util/result.hpp"

namespace debuglet::topology {

using AsNumber = std::uint32_t;
using InterfaceId = std::uint16_t;

/// The ⟨AS, interface⟩ pair that identifies either end of an inter-domain
/// link — the unit the marketplace indexes executors by (paper §IV-C).
struct InterfaceKey {
  AsNumber asn = 0;
  InterfaceId interface = 0;

  auto operator<=>(const InterfaceKey&) const = default;
  std::string to_string() const;
};

/// One AS on a path with the interfaces the packet enters and leaves by.
/// ingress == 0 on the first AS; egress == 0 on the last.
struct PathHop {
  AsNumber asn = 0;
  InterfaceId ingress = 0;
  InterfaceId egress = 0;

  bool operator==(const PathHop&) const = default;
};

/// An interface-granular AS-level path.
struct AsPath {
  std::vector<PathHop> hops;

  bool empty() const { return hops.empty(); }
  std::size_t length() const { return hops.size(); }

  /// The inter-domain link crossed after hop i: ⟨egress of hop i,
  /// ingress of hop i+1⟩. Precondition: i + 1 < length().
  std::pair<InterfaceKey, InterfaceKey> link_after(std::size_t i) const;

  /// The sub-path spanning hops [first, last] inclusive, with the outer
  /// ingress/egress zeroed so the sub-path is itself a well-formed path.
  AsPath subpath(std::size_t first, std::size_t last) const;

  std::string to_string() const;
  bool operator==(const AsPath&) const = default;
};

/// An inter-domain link between two interface keys.
struct InterDomainLink {
  InterfaceKey a;
  InterfaceKey b;
  bool operator==(const InterDomainLink&) const = default;
};

/// The AS graph. ASes and links are added up front; the structure is then
/// queried for neighbors, paths, and executor addressing.
class Topology {
 public:
  /// Registers an AS. Fails if the number is already present.
  Status add_as(AsNumber asn, std::string name);

  /// Connects two ASes through fresh or explicit interface IDs. Both ASes
  /// must exist; an interface may carry only one link.
  Status add_link(InterfaceKey a, InterfaceKey b);

  bool has_as(AsNumber asn) const;
  Result<std::string> as_name(AsNumber asn) const;
  std::vector<AsNumber> as_numbers() const;

  /// All interfaces registered for an AS (sorted).
  std::vector<InterfaceId> interfaces_of(AsNumber asn) const;

  /// The interface key on the far side of a link.
  Result<InterfaceKey> remote_of(InterfaceKey local) const;

  /// All inter-domain links (each reported once, a < b by key order).
  std::vector<InterDomainLink> links() const;

  /// Deterministic address of the border router / executor at a key:
  /// 10.<asn_hi>.<asn_lo>.<interface>.
  net::Ipv4Address address_of(InterfaceKey key) const;

  /// Reverse lookup of address_of. Fails for unknown addresses.
  Result<InterfaceKey> key_of(net::Ipv4Address address) const;

  /// Shortest path (fewest ASes) from src to dst, interface-granular.
  /// Ties break deterministically by AS number. Fails if disconnected.
  Result<AsPath> shortest_path(AsNumber src, AsNumber dst) const;

  /// Up to `limit` distinct simple paths, shortest first (by hop count,
  /// then lexicographic AS order).
  std::vector<AsPath> find_paths(AsNumber src, AsNumber dst,
                                 std::size_t limit,
                                 std::size_t max_hops = 16) const;

 private:
  struct AsEntry {
    std::string name;
    std::map<InterfaceId, InterfaceKey> links;  // local intf -> remote key
  };
  std::map<AsNumber, AsEntry> ases_;
  std::map<net::Ipv4Address, InterfaceKey> by_address_;
};

/// Reverses a path: hop order flipped and ingress/egress swapped.
AsPath reverse_path(const AsPath& path);

}  // namespace debuglet::topology
