#include "topology/topology.hpp"

#include <algorithm>
#include <deque>
#include <set>

namespace debuglet::topology {

std::string InterfaceKey::to_string() const {
  return "AS" + std::to_string(asn) + "#" + std::to_string(interface);
}

std::pair<InterfaceKey, InterfaceKey> AsPath::link_after(std::size_t i) const {
  if (i + 1 >= hops.size())
    throw std::out_of_range("AsPath::link_after: no link after last hop");
  return {InterfaceKey{hops[i].asn, hops[i].egress},
          InterfaceKey{hops[i + 1].asn, hops[i + 1].ingress}};
}

AsPath AsPath::subpath(std::size_t first, std::size_t last) const {
  if (first > last || last >= hops.size())
    throw std::out_of_range("AsPath::subpath: bad range");
  AsPath out;
  out.hops.assign(hops.begin() + static_cast<std::ptrdiff_t>(first),
                  hops.begin() + static_cast<std::ptrdiff_t>(last + 1));
  out.hops.front().ingress = 0;
  out.hops.back().egress = 0;
  return out;
}

std::string AsPath::to_string() const {
  std::string out;
  for (std::size_t i = 0; i < hops.size(); ++i) {
    if (i > 0) out += " -> ";
    out += "AS" + std::to_string(hops[i].asn);
    if (hops[i].ingress || hops[i].egress) {
      out += "(" + std::to_string(hops[i].ingress) + "," +
             std::to_string(hops[i].egress) + ")";
    }
  }
  return out;
}

Status Topology::add_as(AsNumber asn, std::string name) {
  if (ases_.contains(asn))
    return fail("AS" + std::to_string(asn) + " already exists");
  ases_[asn] = AsEntry{std::move(name), {}};
  return ok_status();
}

Status Topology::add_link(InterfaceKey a, InterfaceKey b) {
  auto ita = ases_.find(a.asn);
  auto itb = ases_.find(b.asn);
  if (ita == ases_.end()) return fail("unknown AS" + std::to_string(a.asn));
  if (itb == ases_.end()) return fail("unknown AS" + std::to_string(b.asn));
  if (a.asn == b.asn) return fail("self-link on AS" + std::to_string(a.asn));
  if (a.interface == 0 || b.interface == 0)
    return fail("interface IDs must be nonzero");
  if (ita->second.links.contains(a.interface))
    return fail(a.to_string() + " already linked");
  if (itb->second.links.contains(b.interface))
    return fail(b.to_string() + " already linked");
  ita->second.links[a.interface] = b;
  itb->second.links[b.interface] = a;
  by_address_[address_of(a)] = a;
  by_address_[address_of(b)] = b;
  return ok_status();
}

bool Topology::has_as(AsNumber asn) const { return ases_.contains(asn); }

Result<std::string> Topology::as_name(AsNumber asn) const {
  auto it = ases_.find(asn);
  if (it == ases_.end()) return fail("unknown AS" + std::to_string(asn));
  return it->second.name;
}

std::vector<AsNumber> Topology::as_numbers() const {
  std::vector<AsNumber> out;
  out.reserve(ases_.size());
  for (const auto& [asn, _] : ases_) out.push_back(asn);
  return out;
}

std::vector<InterfaceId> Topology::interfaces_of(AsNumber asn) const {
  std::vector<InterfaceId> out;
  auto it = ases_.find(asn);
  if (it == ases_.end()) return out;
  for (const auto& [intf, _] : it->second.links) out.push_back(intf);
  return out;
}

Result<InterfaceKey> Topology::remote_of(InterfaceKey local) const {
  auto it = ases_.find(local.asn);
  if (it == ases_.end()) return fail("unknown AS" + std::to_string(local.asn));
  auto lit = it->second.links.find(local.interface);
  if (lit == it->second.links.end())
    return fail("no link at " + local.to_string());
  return lit->second;
}

std::vector<InterDomainLink> Topology::links() const {
  std::vector<InterDomainLink> out;
  for (const auto& [asn, entry] : ases_) {
    for (const auto& [intf, remote] : entry.links) {
      const InterfaceKey local{asn, intf};
      if (local < remote) out.push_back(InterDomainLink{local, remote});
    }
  }
  return out;
}

net::Ipv4Address Topology::address_of(InterfaceKey key) const {
  return net::Ipv4Address(10, static_cast<std::uint8_t>(key.asn >> 8),
                          static_cast<std::uint8_t>(key.asn),
                          static_cast<std::uint8_t>(key.interface));
}

Result<InterfaceKey> Topology::key_of(net::Ipv4Address address) const {
  auto it = by_address_.find(address);
  if (it == by_address_.end())
    return fail("no interface at " + address.to_string());
  return it->second;
}

Result<AsPath> Topology::shortest_path(AsNumber src, AsNumber dst) const {
  auto paths = find_paths(src, dst, 1);
  if (paths.empty())
    return fail("no path from AS" + std::to_string(src) + " to AS" +
                std::to_string(dst));
  return paths.front();
}

std::vector<AsPath> Topology::find_paths(AsNumber src, AsNumber dst,
                                         std::size_t limit,
                                         std::size_t max_hops) const {
  std::vector<AsPath> out;
  if (!ases_.contains(src) || !ases_.contains(dst) || limit == 0) return out;
  if (src == dst) {
    out.push_back(AsPath{{PathHop{src, 0, 0}}});
    return out;
  }

  // Iterative-deepening DFS over simple paths: produces paths ordered by
  // hop count, then lexicographically (maps iterate in key order).
  struct Frame {
    AsNumber asn;
    InterfaceId ingress;
    std::map<InterfaceId, InterfaceKey>::const_iterator next;
  };
  for (std::size_t depth = 2; depth <= max_hops && out.size() < limit;
       ++depth) {
    std::vector<Frame> stack;
    std::set<AsNumber> visited{src};
    stack.push_back(Frame{src, 0, ases_.at(src).links.begin()});
    std::vector<PathHop> hops{PathHop{src, 0, 0}};
    while (!stack.empty()) {
      Frame& top = stack.back();
      const auto& links = ases_.at(top.asn).links;
      if (top.next == links.end() || stack.size() >= depth) {
        visited.erase(top.asn);
        stack.pop_back();
        hops.pop_back();
        continue;
      }
      const InterfaceId egress = top.next->first;
      const InterfaceKey remote = top.next->second;
      ++top.next;
      if (visited.contains(remote.asn)) continue;
      if (remote.asn == dst) {
        if (stack.size() + 1 != depth) continue;  // only exact depth this round
        std::vector<PathHop> full = hops;
        full.back().egress = egress;
        full.push_back(PathHop{remote.asn, remote.interface, 0});
        out.push_back(AsPath{std::move(full)});
        if (out.size() >= limit) return out;
        continue;
      }
      if (stack.size() + 1 >= depth) continue;
      std::vector<PathHop> updated = hops;
      updated.back().egress = egress;
      updated.push_back(PathHop{remote.asn, remote.interface, 0});
      hops = std::move(updated);
      visited.insert(remote.asn);
      stack.push_back(Frame{remote.asn, remote.interface,
                            ases_.at(remote.asn).links.begin()});
    }
  }
  return out;
}

AsPath reverse_path(const AsPath& path) {
  AsPath out;
  out.hops.reserve(path.hops.size());
  for (auto it = path.hops.rbegin(); it != path.hops.rend(); ++it)
    out.hops.push_back(PathHop{it->asn, it->egress, it->ingress});
  return out;
}

}  // namespace debuglet::topology
