#include "net/address.hpp"

#include <charconv>
#include <cstdio>

namespace debuglet::net {

std::string protocol_name(Protocol p) {
  switch (p) {
    case Protocol::kUdp: return "UDP";
    case Protocol::kTcp: return "TCP";
    case Protocol::kIcmp: return "ICMP";
    case Protocol::kRawIp: return "RawIP";
  }
  return "proto-" + std::to_string(static_cast<int>(p));
}

std::string Ipv4Address::to_string() const {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", (value >> 24) & 0xFF,
                (value >> 16) & 0xFF, (value >> 8) & 0xFF, value & 0xFF);
  return buf;
}

Result<Ipv4Address> Ipv4Address::parse(std::string_view dotted) {
  std::uint32_t out = 0;
  std::size_t pos = 0;
  for (int octet = 0; octet < 4; ++octet) {
    if (octet > 0) {
      if (pos >= dotted.size() || dotted[pos] != '.')
        return fail("invalid IPv4 address: " + std::string(dotted));
      ++pos;
    }
    unsigned value = 0;
    const char* begin = dotted.data() + pos;
    const char* end = dotted.data() + dotted.size();
    auto [next, ec] = std::from_chars(begin, end, value);
    if (ec != std::errc{} || value > 255 || next == begin)
      return fail("invalid IPv4 address: " + std::string(dotted));
    out = (out << 8) | value;
    pos += static_cast<std::size_t>(next - begin);
  }
  if (pos != dotted.size())
    return fail("invalid IPv4 address: " + std::string(dotted));
  return Ipv4Address(out);
}

std::string Endpoint::to_string() const {
  return address.to_string() + ":" + std::to_string(port);
}

}  // namespace debuglet::net
