// Layer-3/4 packet construction and parsing.
//
// The paper's probes must be byte-for-byte realistic so forwarding devices
// treat them like data packets: we build real IPv4 frames with UDP, TCP
// (random sequence number, no flags), ICMP echo, or raw-IP (protocol 201)
// payloads, equalized to the same total layer-3 length across protocols
// (paper §II "Experiment Setup").
#pragma once

#include <cstdint>
#include <optional>

#include "net/address.hpp"
#include "util/bytes.hpp"
#include "util/result.hpp"

namespace debuglet::net {

/// RFC 1071 Internet checksum over a byte span.
std::uint16_t internet_checksum(BytesView data);

/// Why a wire buffer failed to parse. Receive paths branch on the kind
/// (never on error strings) and export it as the `reason` label of the
/// `net.parse_rejected` counter, so in-flight damage is visible instead of
/// silently dropped.
enum class ParseErrorKind : std::uint8_t {
  kNone = 0,
  kTruncatedHeader,      // buffer shorter than a fixed header
  kNotIpv4,              // version nibble != 4
  kOptionsUnsupported,   // IPv4 IHL != 5 / TCP data offset != 5
  kBadChecksum,          // IPv4 or ICMP checksum mismatch
  kBadLength,            // a length field is impossibly small
  kFrameTruncated,       // valid-looking header claims more bytes than
                         // the buffer holds (in-flight truncation)
  kUnsupportedProtocol,  // unknown IP protocol or ICMP type
};

/// Stable label text for a kind ("frame_truncated", ...).
const char* parse_error_name(ParseErrorKind kind);

/// IPv4 header (no options; IHL = 5).
struct Ipv4Header {
  std::uint8_t dscp = 0;
  std::uint16_t total_length = 0;  // header + payload, bytes
  std::uint16_t identification = 0;
  std::uint8_t ttl = 64;
  std::uint8_t protocol = 0;      // raw IP protocol number
  Ipv4Address source;
  Ipv4Address destination;

  static constexpr std::size_t kSize = 20;

  /// Serializes with a correct header checksum.
  Bytes serialize() const;

  /// Parses and validates version, IHL, length, and checksum. On failure
  /// `kind` (when non-null) receives the typed cause.
  static Result<Ipv4Header> parse(BytesView data,
                                  ParseErrorKind* kind = nullptr);
};

/// UDP header.
struct UdpHeader {
  std::uint16_t source_port = 0;
  std::uint16_t destination_port = 0;
  std::uint16_t length = 0;  // header + payload

  static constexpr std::size_t kSize = 8;
  Bytes serialize(const Ipv4Header& ip, BytesView payload) const;
  static Result<UdpHeader> parse(BytesView data,
                                 ParseErrorKind* kind = nullptr);
};

/// TCP header (20 bytes, no options). Probe packets carry a random
/// sequence number and no control flags, per the paper.
struct TcpHeader {
  std::uint16_t source_port = 0;
  std::uint16_t destination_port = 0;
  std::uint32_t sequence = 0;
  std::uint32_t acknowledgment = 0;
  std::uint8_t flags = 0;
  std::uint16_t window = 65535;

  static constexpr std::size_t kSize = 20;
  Bytes serialize(const Ipv4Header& ip, BytesView payload) const;
  static Result<TcpHeader> parse(BytesView data,
                                 ParseErrorKind* kind = nullptr);
};

/// ICMP header for the message types the simulator carries: echo request
/// (8), echo reply (0), and time exceeded (11, sent by routers when a TTL
/// expires — the mechanism traceroute depends on).
struct IcmpEchoHeader {
  std::uint8_t type = 8;
  std::uint16_t identifier = 0;
  std::uint16_t sequence = 0;

  static constexpr std::size_t kSize = 8;
  Bytes serialize(BytesView payload) const;
  static Result<IcmpEchoHeader> parse(BytesView data,
                                      ParseErrorKind* kind = nullptr);
};

inline constexpr std::uint8_t kIcmpEchoRequest = 8;
inline constexpr std::uint8_t kIcmpEchoReply = 0;
inline constexpr std::uint8_t kIcmpTimeExceeded = 11;

/// A fully decoded probe packet.
struct Packet {
  Ipv4Header ip;
  Protocol protocol = Protocol::kUdp;
  // Transport fields, populated per protocol.
  std::optional<UdpHeader> udp;
  std::optional<TcpHeader> tcp;
  std::optional<IcmpEchoHeader> icmp;
  Bytes payload;  // application payload (after any transport header)

  /// Total layer-3 length in bytes.
  std::size_t wire_size() const { return ip.total_length; }
};

/// Parameters for building one probe packet.
struct ProbeSpec {
  Protocol protocol = Protocol::kUdp;
  Ipv4Address source;
  Ipv4Address destination;
  std::uint16_t source_port = 0;
  std::uint16_t destination_port = 0;
  std::uint16_t sequence = 0;       // probe sequence number
  std::uint32_t tcp_sequence = 0;   // random ISN for TCP probes
  std::uint8_t ttl = 64;            // small values enable traceroute probes
  Bytes payload;                    // application payload
  /// Target total layer-3 length; the builder pads the payload so all four
  /// protocols produce identical lengths. 0 = no equalization.
  std::uint16_t equalized_length = 0;
};

/// Builds the on-wire bytes for a probe. Fails if the equalized length is
/// too small for headers + payload or exceeds 65535.
Result<Bytes> build_probe(const ProbeSpec& spec);

/// Parses on-wire bytes into a Packet (validating all checksums). On
/// failure `kind` (when non-null) receives the typed cause — simnet's
/// receive path feeds it to the `net.parse_rejected{reason}` counter.
Result<Packet> parse_packet(BytesView wire, ParseErrorKind* kind = nullptr);

/// Re-serializes a parsed (possibly modified) Packet to wire bytes,
/// recomputing lengths and every checksum — the inverse of parse_packet.
/// Forwarding devices that rewrite a packet in flight (TTL decrement,
/// in-band telemetry pushes) use this so the emitted frame parses cleanly
/// again. Fails when the transport header required by the protocol is
/// missing or the payload exceeds the 65535-byte IPv4 budget.
Result<Bytes> serialize_packet(const Packet& packet);

/// Builds the reply a Debuglet echo server sends for `request`: source and
/// destination swapped, ICMP type flipped to reply, payload echoed.
Result<Bytes> build_echo_reply(const Packet& request);

/// Builds the ICMP time-exceeded message a router at `router_address`
/// sends to the source of an expired packet. The reply's IP identification
/// echoes the expired packet's, and its 8-byte payload carries the same
/// value so probers can match probes without transport state.
Result<Bytes> build_time_exceeded(const Packet& expired,
                                  Ipv4Address router_address);

/// Transport-header overhead for a protocol (0 for raw IP). Defined from
/// the header types' kSize constants — the single source of truth the
/// packet builder, payload accounting, and tests all share.
constexpr std::size_t transport_header_size(Protocol p) {
  switch (p) {
    case Protocol::kUdp: return UdpHeader::kSize;
    case Protocol::kTcp: return TcpHeader::kSize;
    case Protocol::kIcmp: return IcmpEchoHeader::kSize;
    case Protocol::kRawIp: return 0;
  }
  return 0;
}

/// Layer-3 overhead in front of a probe's application payload.
constexpr std::size_t header_overhead(Protocol p) {
  return Ipv4Header::kSize + transport_header_size(p);
}

/// The largest application payload a probe of protocol `p` can carry
/// (total_length is a u16, so 65535 minus the headers).
constexpr std::size_t max_payload_size(Protocol p) {
  return 65535 - header_overhead(p);
}

/// Shannon entropy estimate of a byte span, in bits per byte (0 for an
/// empty or constant span, up to 8 for uniform bytes). The fingerprint DPI
/// classifiers and twin-probe crafting share: zero-padded probe payloads
/// sit near 0, encrypted/compressed data traffic near 8.
double payload_entropy_bits(BytesView payload);

}  // namespace debuglet::net
