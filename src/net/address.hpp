// Network addresses and the probe-protocol taxonomy from the paper (§II):
// UDP, TCP (no flags, random sequence numbers), ICMP echo, and custom raw
// IP with the unassigned protocol number 201.
#pragma once

#include <cstdint>
#include <string>

#include "util/result.hpp"

namespace debuglet::net {

/// The four probe protocols the paper measures, plus their IP numbers.
enum class Protocol : std::uint8_t {
  kIcmp = 1,
  kTcp = 6,
  kUdp = 17,
  kRawIp = 201,  // unassigned IP protocol number used by the paper
};

/// Human-readable protocol name ("UDP", "TCP", "ICMP", "RawIP").
std::string protocol_name(Protocol p);

/// All four probe protocols, in the paper's round-robin order.
inline constexpr Protocol kAllProtocols[] = {Protocol::kUdp, Protocol::kTcp,
                                             Protocol::kIcmp,
                                             Protocol::kRawIp};

/// IPv4 address with value semantics.
struct Ipv4Address {
  std::uint32_t value = 0;  // host byte order

  constexpr Ipv4Address() = default;
  constexpr explicit Ipv4Address(std::uint32_t v) : value(v) {}
  constexpr Ipv4Address(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                        std::uint8_t d)
      : value(static_cast<std::uint32_t>(a) << 24 |
              static_cast<std::uint32_t>(b) << 16 |
              static_cast<std::uint32_t>(c) << 8 | d) {}

  auto operator<=>(const Ipv4Address&) const = default;

  std::string to_string() const;
  static Result<Ipv4Address> parse(std::string_view dotted);
};

/// Transport endpoint (address + port; port is 0 for ICMP / raw IP).
struct Endpoint {
  Ipv4Address address;
  std::uint16_t port = 0;

  auto operator<=>(const Endpoint&) const = default;
  std::string to_string() const;
};

}  // namespace debuglet::net
