#include "net/packet.hpp"

#include <array>
#include <cmath>
#include <cstring>

namespace debuglet::net {

namespace {

void put_u16_be(Bytes& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

void put_u32_be(Bytes& out, std::uint32_t v) {
  put_u16_be(out, static_cast<std::uint16_t>(v >> 16));
  put_u16_be(out, static_cast<std::uint16_t>(v));
}

std::uint16_t get_u16_be(BytesView v, std::size_t off) {
  return static_cast<std::uint16_t>(v[off] << 8 | v[off + 1]);
}

std::uint32_t get_u32_be(BytesView v, std::size_t off) {
  return static_cast<std::uint32_t>(v[off]) << 24 |
         static_cast<std::uint32_t>(v[off + 1]) << 16 |
         static_cast<std::uint32_t>(v[off + 2]) << 8 | v[off + 3];
}

// Pseudo-header checksum seed for UDP/TCP (RFC 768 / RFC 9293).
Bytes pseudo_header(const Ipv4Header& ip, std::uint8_t protocol,
                    std::uint16_t transport_length) {
  Bytes ph;
  ph.reserve(12);
  put_u32_be(ph, ip.source.value);
  put_u32_be(ph, ip.destination.value);
  ph.push_back(0);
  ph.push_back(protocol);
  put_u16_be(ph, transport_length);
  return ph;
}

std::uint16_t checksum_with_pseudo(const Ipv4Header& ip, std::uint8_t protocol,
                                   BytesView transport) {
  Bytes all = pseudo_header(ip, protocol,
                            static_cast<std::uint16_t>(transport.size()));
  all.insert(all.end(), transport.begin(), transport.end());
  return internet_checksum(BytesView(all.data(), all.size()));
}

// Records the typed cause (when the caller asked for it) and builds the
// human-readable error in one step, so every rejection path stays typed.
Error reject(ParseErrorKind* kind, ParseErrorKind k, std::string message) {
  if (kind != nullptr) *kind = k;
  return fail(std::move(message));
}

}  // namespace

const char* parse_error_name(ParseErrorKind kind) {
  switch (kind) {
    case ParseErrorKind::kNone: return "none";
    case ParseErrorKind::kTruncatedHeader: return "truncated_header";
    case ParseErrorKind::kNotIpv4: return "not_ipv4";
    case ParseErrorKind::kOptionsUnsupported: return "options_unsupported";
    case ParseErrorKind::kBadChecksum: return "bad_checksum";
    case ParseErrorKind::kBadLength: return "bad_length";
    case ParseErrorKind::kFrameTruncated: return "frame_truncated";
    case ParseErrorKind::kUnsupportedProtocol: return "unsupported_protocol";
  }
  return "unknown";
}

std::uint16_t internet_checksum(BytesView data) {
  std::uint32_t sum = 0;
  std::size_t i = 0;
  for (; i + 1 < data.size(); i += 2)
    sum += static_cast<std::uint32_t>(data[i] << 8 | data[i + 1]);
  if (i < data.size()) sum += static_cast<std::uint32_t>(data[i] << 8);
  while (sum >> 16) sum = (sum & 0xFFFF) + (sum >> 16);
  return static_cast<std::uint16_t>(~sum);
}

Bytes Ipv4Header::serialize() const {
  Bytes out;
  out.reserve(kSize);
  out.push_back(0x45);  // version 4, IHL 5
  out.push_back(dscp << 2);
  put_u16_be(out, total_length);
  put_u16_be(out, identification);
  put_u16_be(out, 0x4000);  // flags: DF, fragment offset 0
  out.push_back(ttl);
  out.push_back(protocol);
  put_u16_be(out, 0);  // checksum placeholder
  put_u32_be(out, source.value);
  put_u32_be(out, destination.value);
  const std::uint16_t sum = internet_checksum(BytesView(out.data(), out.size()));
  out[10] = static_cast<std::uint8_t>(sum >> 8);
  out[11] = static_cast<std::uint8_t>(sum);
  return out;
}

Result<Ipv4Header> Ipv4Header::parse(BytesView data, ParseErrorKind* kind) {
  if (data.size() < kSize)
    return reject(kind, ParseErrorKind::kTruncatedHeader,
                  "IPv4 header truncated");
  if ((data[0] >> 4) != 4)
    return reject(kind, ParseErrorKind::kNotIpv4, "not an IPv4 packet");
  if ((data[0] & 0x0F) != 5)
    return reject(kind, ParseErrorKind::kOptionsUnsupported,
                  "IPv4 options unsupported");
  if (internet_checksum(data.subspan(0, kSize)) != 0)
    return reject(kind, ParseErrorKind::kBadChecksum,
                  "IPv4 header checksum mismatch");
  Ipv4Header h;
  h.dscp = data[1] >> 2;
  h.total_length = get_u16_be(data, 2);
  h.identification = get_u16_be(data, 4);
  h.ttl = data[8];
  h.protocol = data[9];
  h.source = Ipv4Address(get_u32_be(data, 12));
  h.destination = Ipv4Address(get_u32_be(data, 16));
  // Two distinct failure shapes hide behind "length inconsistent": a
  // length field no header could have (field damage), and a valid header
  // whose frame lost its tail in flight (truncation damage). Receive
  // paths and the fuzz suite care which one happened.
  if (h.total_length < kSize)
    return reject(kind, ParseErrorKind::kBadLength,
                  "IPv4 total length smaller than header");
  if (h.total_length > data.size())
    return reject(kind, ParseErrorKind::kFrameTruncated,
                  "IPv4 total length exceeds frame");
  return h;
}

Bytes UdpHeader::serialize(const Ipv4Header& ip, BytesView payload) const {
  Bytes out;
  out.reserve(kSize + payload.size());
  put_u16_be(out, source_port);
  put_u16_be(out, destination_port);
  put_u16_be(out, static_cast<std::uint16_t>(kSize + payload.size()));
  put_u16_be(out, 0);  // checksum placeholder
  out.insert(out.end(), payload.begin(), payload.end());
  std::uint16_t sum = checksum_with_pseudo(
      ip, static_cast<std::uint8_t>(Protocol::kUdp),
      BytesView(out.data(), out.size()));
  if (sum == 0) sum = 0xFFFF;  // RFC 768: transmitted zero means "no checksum"
  out[6] = static_cast<std::uint8_t>(sum >> 8);
  out[7] = static_cast<std::uint8_t>(sum);
  return out;
}

Result<UdpHeader> UdpHeader::parse(BytesView data, ParseErrorKind* kind) {
  if (data.size() < kSize)
    return reject(kind, ParseErrorKind::kTruncatedHeader,
                  "UDP header truncated");
  UdpHeader h;
  h.source_port = get_u16_be(data, 0);
  h.destination_port = get_u16_be(data, 2);
  h.length = get_u16_be(data, 4);
  if (h.length < kSize)
    return reject(kind, ParseErrorKind::kBadLength,
                  "UDP length smaller than header");
  if (h.length > data.size())
    return reject(kind, ParseErrorKind::kFrameTruncated,
                  "UDP length exceeds datagram");
  return h;
}

Bytes TcpHeader::serialize(const Ipv4Header& ip, BytesView payload) const {
  Bytes out;
  out.reserve(kSize + payload.size());
  put_u16_be(out, source_port);
  put_u16_be(out, destination_port);
  put_u32_be(out, sequence);
  put_u32_be(out, acknowledgment);
  out.push_back(0x50);  // data offset 5 words
  out.push_back(flags);
  put_u16_be(out, window);
  put_u16_be(out, 0);  // checksum placeholder
  put_u16_be(out, 0);  // urgent pointer
  out.insert(out.end(), payload.begin(), payload.end());
  const std::uint16_t sum = checksum_with_pseudo(
      ip, static_cast<std::uint8_t>(Protocol::kTcp),
      BytesView(out.data(), out.size()));
  out[16] = static_cast<std::uint8_t>(sum >> 8);
  out[17] = static_cast<std::uint8_t>(sum);
  return out;
}

Result<TcpHeader> TcpHeader::parse(BytesView data, ParseErrorKind* kind) {
  if (data.size() < kSize)
    return reject(kind, ParseErrorKind::kTruncatedHeader,
                  "TCP header truncated");
  if ((data[12] >> 4) != 5)
    return reject(kind, ParseErrorKind::kOptionsUnsupported,
                  "TCP options unsupported");
  TcpHeader h;
  h.source_port = get_u16_be(data, 0);
  h.destination_port = get_u16_be(data, 2);
  h.sequence = get_u32_be(data, 4);
  h.acknowledgment = get_u32_be(data, 8);
  h.flags = data[13];
  h.window = get_u16_be(data, 14);
  return h;
}

Bytes IcmpEchoHeader::serialize(BytesView payload) const {
  Bytes out;
  out.reserve(kSize + payload.size());
  out.push_back(type);
  out.push_back(0);  // code
  put_u16_be(out, 0);  // checksum placeholder
  put_u16_be(out, identifier);
  put_u16_be(out, sequence);
  out.insert(out.end(), payload.begin(), payload.end());
  const std::uint16_t sum = internet_checksum(BytesView(out.data(), out.size()));
  out[2] = static_cast<std::uint8_t>(sum >> 8);
  out[3] = static_cast<std::uint8_t>(sum);
  return out;
}

Result<IcmpEchoHeader> IcmpEchoHeader::parse(BytesView data,
                                             ParseErrorKind* kind) {
  if (data.size() < kSize)
    return reject(kind, ParseErrorKind::kTruncatedHeader,
                  "ICMP header truncated");
  if (internet_checksum(data) != 0)
    return reject(kind, ParseErrorKind::kBadChecksum,
                  "ICMP checksum mismatch");
  if (data[0] != kIcmpEchoRequest && data[0] != kIcmpEchoReply &&
      data[0] != kIcmpTimeExceeded)
    return reject(kind, ParseErrorKind::kUnsupportedProtocol,
                  "unsupported ICMP type " + std::to_string(data[0]));
  IcmpEchoHeader h;
  h.type = data[0];
  h.identifier = get_u16_be(data, 4);
  h.sequence = get_u16_be(data, 6);
  return h;
}

Result<Bytes> build_probe(const ProbeSpec& spec) {
  const std::size_t overhead = header_overhead(spec.protocol);
  Bytes payload = spec.payload;
  if (spec.equalized_length != 0) {
    const std::size_t minimum = overhead + payload.size();
    if (spec.equalized_length < minimum)
      return fail("equalized length " + std::to_string(spec.equalized_length) +
                  " smaller than headers+payload " + std::to_string(minimum));
    payload.resize(spec.equalized_length - overhead, 0);
  }
  if (payload.size() > max_payload_size(spec.protocol))
    return fail("packet exceeds 65535 bytes");
  const std::size_t total = overhead + payload.size();

  Ipv4Header ip;
  ip.total_length = static_cast<std::uint16_t>(total);
  ip.identification = spec.sequence;
  ip.ttl = spec.ttl;
  ip.protocol = static_cast<std::uint8_t>(spec.protocol);
  ip.source = spec.source;
  ip.destination = spec.destination;

  Bytes transport;
  const BytesView payload_view(payload.data(), payload.size());
  switch (spec.protocol) {
    case Protocol::kUdp: {
      UdpHeader udp;
      udp.source_port = spec.source_port;
      udp.destination_port = spec.destination_port;
      transport = udp.serialize(ip, payload_view);
      break;
    }
    case Protocol::kTcp: {
      TcpHeader tcp;
      tcp.source_port = spec.source_port;
      tcp.destination_port = spec.destination_port;
      tcp.sequence = spec.tcp_sequence;
      tcp.flags = 0;  // no control flags, per the paper's probe design
      transport = tcp.serialize(ip, payload_view);
      break;
    }
    case Protocol::kIcmp: {
      // ICMP has no transport ports; Debuglet convention reuses the echo
      // header's 16-bit fields as (identifier, sequence) =
      // (destination port, source port), so executor demultiplexing is
      // uniform across protocols. The probe sequence number rides in the
      // IP identification field (echoed back by build_echo_reply).
      IcmpEchoHeader icmp;
      icmp.type = 8;
      icmp.identifier = spec.destination_port;
      icmp.sequence = spec.source_port;
      transport = icmp.serialize(payload_view);
      break;
    }
    case Protocol::kRawIp: {
      transport.assign(payload.begin(), payload.end());
      break;
    }
  }

  Bytes wire = ip.serialize();
  wire.insert(wire.end(), transport.begin(), transport.end());
  return wire;
}

Result<Bytes> serialize_packet(const Packet& packet) {
  const std::size_t total = header_overhead(packet.protocol) +
                            packet.payload.size();
  if (total > 65535) return fail("serialize_packet: exceeds 65535 bytes");
  Ipv4Header ip = packet.ip;
  ip.total_length = static_cast<std::uint16_t>(total);
  ip.protocol = static_cast<std::uint8_t>(packet.protocol);
  const BytesView payload(packet.payload.data(), packet.payload.size());
  Bytes transport;
  switch (packet.protocol) {
    case Protocol::kUdp:
      if (!packet.udp) return fail("serialize_packet: missing UDP header");
      transport = packet.udp->serialize(ip, payload);
      break;
    case Protocol::kTcp:
      if (!packet.tcp) return fail("serialize_packet: missing TCP header");
      transport = packet.tcp->serialize(ip, payload);
      break;
    case Protocol::kIcmp:
      if (!packet.icmp) return fail("serialize_packet: missing ICMP header");
      transport = packet.icmp->serialize(payload);
      break;
    case Protocol::kRawIp:
      transport.assign(packet.payload.begin(), packet.payload.end());
      break;
  }
  Bytes wire = ip.serialize();
  wire.insert(wire.end(), transport.begin(), transport.end());
  return wire;
}

Result<Bytes> build_time_exceeded(const Packet& expired,
                                  Ipv4Address router_address) {
  // RFC 1122 §3.2.2: an ICMP error message is never sent about an ICMP
  // error message. Without this, two looping pinned paths bounce
  // time-exceeded replies back and forth forever, each expiry minting a
  // fresh TTL-64 reply about the previous one.
  if (expired.protocol == Protocol::kIcmp && expired.icmp &&
      expired.icmp->type == kIcmpTimeExceeded)
    return fail("no ICMP errors about ICMP errors (RFC 1122)");
  Ipv4Header ip;
  ip.protocol = static_cast<std::uint8_t>(Protocol::kIcmp);
  ip.source = router_address;
  ip.destination = expired.ip.source;
  ip.identification = expired.ip.identification;

  IcmpEchoHeader icmp;
  icmp.type = kIcmpTimeExceeded;
  icmp.identifier = 0;
  icmp.sequence = 0;
  BytesWriter payload;
  payload.u64(expired.ip.identification);
  const Bytes transport = icmp.serialize(
      BytesView(payload.bytes().data(), payload.bytes().size()));
  ip.total_length =
      static_cast<std::uint16_t>(Ipv4Header::kSize + transport.size());
  Bytes wire = ip.serialize();
  wire.insert(wire.end(), transport.begin(), transport.end());
  return wire;
}

Result<Packet> parse_packet(BytesView wire, ParseErrorKind* kind) {
  auto ip = Ipv4Header::parse(wire, kind);
  if (!ip) return ip.error();
  Packet pkt;
  pkt.ip = *ip;
  const BytesView rest = wire.subspan(Ipv4Header::kSize,
                                      ip->total_length - Ipv4Header::kSize);
  switch (ip->protocol) {
    case static_cast<std::uint8_t>(Protocol::kUdp): {
      pkt.protocol = Protocol::kUdp;
      auto udp = UdpHeader::parse(rest, kind);
      if (!udp) return udp.error();
      pkt.udp = *udp;
      pkt.payload.assign(rest.begin() + UdpHeader::kSize, rest.end());
      break;
    }
    case static_cast<std::uint8_t>(Protocol::kTcp): {
      pkt.protocol = Protocol::kTcp;
      auto tcp = TcpHeader::parse(rest, kind);
      if (!tcp) return tcp.error();
      pkt.tcp = *tcp;
      pkt.payload.assign(rest.begin() + TcpHeader::kSize, rest.end());
      break;
    }
    case static_cast<std::uint8_t>(Protocol::kIcmp): {
      pkt.protocol = Protocol::kIcmp;
      auto icmp = IcmpEchoHeader::parse(rest, kind);
      if (!icmp) return icmp.error();
      pkt.icmp = *icmp;
      pkt.payload.assign(rest.begin() + IcmpEchoHeader::kSize, rest.end());
      break;
    }
    case static_cast<std::uint8_t>(Protocol::kRawIp): {
      pkt.protocol = Protocol::kRawIp;
      pkt.payload.assign(rest.begin(), rest.end());
      break;
    }
    default:
      return reject(kind, ParseErrorKind::kUnsupportedProtocol,
                    "unsupported IP protocol " + std::to_string(ip->protocol));
  }
  return pkt;
}

Result<Bytes> build_echo_reply(const Packet& request) {
  ProbeSpec spec;
  spec.protocol = request.protocol;
  spec.source = request.ip.destination;
  spec.destination = request.ip.source;
  spec.payload = request.payload;
  spec.sequence = request.ip.identification;
  switch (request.protocol) {
    case Protocol::kUdp:
      if (!request.udp) return fail("echo reply: missing UDP header");
      spec.source_port = request.udp->destination_port;
      spec.destination_port = request.udp->source_port;
      break;
    case Protocol::kTcp:
      if (!request.tcp) return fail("echo reply: missing TCP header");
      spec.source_port = request.tcp->destination_port;
      spec.destination_port = request.tcp->source_port;
      spec.tcp_sequence = request.tcp->acknowledgment;
      break;
    case Protocol::kIcmp:
      if (!request.icmp) return fail("echo reply: missing ICMP header");
      // Swap the (dst, src) port pair encoded in (identifier, sequence).
      spec.source_port = request.icmp->identifier;
      spec.destination_port = request.icmp->sequence;
      break;
    case Protocol::kRawIp:
      break;
  }
  auto wire = build_probe(spec);
  if (!wire) return wire;
  if (request.protocol == Protocol::kIcmp) {
    // Flip type to echo reply (0) and fix the ICMP checksum in place.
    Bytes& w = *wire;
    const std::size_t icmp_off = Ipv4Header::kSize;
    w[icmp_off] = 0;
    w[icmp_off + 2] = 0;
    w[icmp_off + 3] = 0;
    const std::uint16_t sum = internet_checksum(
        BytesView(w.data() + icmp_off, w.size() - icmp_off));
    w[icmp_off + 2] = static_cast<std::uint8_t>(sum >> 8);
    w[icmp_off + 3] = static_cast<std::uint8_t>(sum);
  }
  return wire;
}

double payload_entropy_bits(BytesView payload) {
  if (payload.size() < 2) return 0.0;
  std::array<std::uint32_t, 256> histogram{};
  for (std::uint8_t b : payload) ++histogram[b];
  const double n = static_cast<double>(payload.size());
  double bits = 0.0;
  for (std::uint32_t count : histogram) {
    if (count == 0) continue;
    const double p = static_cast<double>(count) / n;
    bits -= p * std::log2(p);
  }
  return bits;
}

}  // namespace debuglet::net
