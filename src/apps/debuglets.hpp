// Ready-made Debuglet programs.
//
// These are the measurement applications the paper writes in Rust and
// compiles to WebAssembly (§V-A) — here composed as DVM bytecode with the
// module builder. Each program is parameterized through dbg_param(i), so
// one bytecode blob serves every measurement; the initiator supplies the
// peer address, protocol, probe count, and pacing per deployment.
//
// Probe payload layout (client <-> echo server):
//   bytes [0,8)  : probe sequence number (u64 LE)
//   bytes [8,16) : client send timestamp, ns (i64 LE)
//
// Result stream layouts (what dbg_output accumulates):
//   probe client   : 16 bytes per answered probe — (seq u64, rtt_ns i64)
//   echo server    : 8 bytes — total packets echoed (u64)
//   one-way sender : 8 bytes — packets sent (u64)
//   one-way recv   : 16 bytes per packet — (seq u64, one_way_delay_ns i64)
//   stats server   : 16 bytes — (requests served u64, chunk count u64)
#pragma once

#include <vector>

#include "executor/manifest.hpp"
#include "net/address.hpp"
#include "util/time.hpp"
#include "vm/module.hpp"

namespace debuglet::apps {

/// Memory layout shared by the built-in Debuglets.
inline constexpr std::uint32_t kMemorySize = 8192;
inline constexpr std::uint32_t kSendBufferOffset = 1024;
inline constexpr std::uint32_t kRecvBufferOffset = 2048;
inline constexpr std::uint32_t kBufferSize = 512;
inline constexpr std::uint32_t kScratchOffset = 3072;

/// Parameter indices of the probe client Debuglet.
struct ProbeClientParams {
  net::Protocol protocol = net::Protocol::kUdp;
  net::Ipv4Address server;
  std::uint16_t server_port = 0;
  std::int64_t probe_count = 10;
  std::int64_t interval_ms = 1000;
  std::int64_t recv_timeout_ms = 900;
  std::int64_t payload_len = 16;  // >= 16 (sequence + timestamp)

  std::vector<std::int64_t> to_parameters() const;
};

/// Parameter indices of the echo server Debuglet.
struct EchoServerParams {
  net::Protocol protocol = net::Protocol::kUdp;
  std::int64_t max_echoes = 0;       // 0 = until idle timeout
  std::int64_t idle_timeout_ms = 5000;

  std::vector<std::int64_t> to_parameters() const;
};

/// Parameters of the one-way measurement pair.
struct OneWaySenderParams {
  net::Protocol protocol = net::Protocol::kUdp;
  net::Ipv4Address receiver;
  std::uint16_t receiver_port = 0;
  std::int64_t packet_count = 10;
  std::int64_t interval_ms = 1000;
  std::int64_t payload_len = 16;

  std::vector<std::int64_t> to_parameters() const;
};

struct OneWayReceiverParams {
  net::Protocol protocol = net::Protocol::kUdp;
  std::int64_t expected_packets = 10;
  std::int64_t idle_timeout_ms = 5000;

  std::vector<std::int64_t> to_parameters() const;
};

/// Parameters of the stats (telemetry-serving) Debuglet.
struct StatsServerParams {
  net::Protocol protocol = net::Protocol::kUdp;
  /// Snapshot bytes per chunk (obs::wire payload size). Must leave room
  /// for ~30 bytes of chunk framing inside the 512-byte send buffer.
  std::int64_t chunk_payload = 400;
  std::int64_t idle_timeout_ms = 5000;
  std::int64_t max_requests = 0;  // 0 = until idle timeout

  std::vector<std::int64_t> to_parameters() const;
};

/// Builds the probe client Debuglet: sends `probe_count` equal-payload
/// probes, matches echoed sequence numbers, records (seq, RTT) pairs.
vm::Module make_probe_client_debuglet();

/// Builds the echo server Debuglet: reflects every received probe back to
/// its sender until `max_echoes` or an idle timeout.
vm::Module make_echo_server_debuglet();

/// Builds the one-way sender: paced packets carrying send timestamps.
vm::Module make_oneway_sender_debuglet();

/// Builds the one-way receiver: records (seq, one-way delay) per packet.
vm::Module make_oneway_receiver_debuglet();

/// Builds the stats Debuglet: freezes the hosting executor's metrics
/// registry via dbg_metrics_prepare, then serves chunk requests (an
/// 8-byte LE chunk index per request packet) with obs::wire chunk
/// messages until max_requests or an idle timeout. A request for chunk 0
/// re-freezes a fresh snapshot, so each scrape session observes the
/// registry at scrape time; malformed and out-of-range requests are
/// ignored, never fatal.
vm::Module make_stats_debuglet();

/// A manifest sized for a probe-client/one-way-sender run against `peer`.
executor::Manifest client_manifest(net::Protocol protocol,
                                   net::Ipv4Address peer,
                                   std::int64_t probe_count,
                                   SimDuration max_duration);

/// A manifest sized for an echo-server/one-way-receiver run with `peer`
/// allowed as reply destination.
executor::Manifest server_manifest(net::Protocol protocol,
                                   net::Ipv4Address peer,
                                   std::int64_t packet_budget,
                                   SimDuration max_duration);

/// A manifest for the stats Debuglet: the protocol's I/O capability plus
/// Capability::kHostMetrics, with `scraper` as the one contactable peer.
executor::Manifest stats_manifest(net::Protocol protocol,
                                  net::Ipv4Address scraper,
                                  std::int64_t request_budget,
                                  SimDuration max_duration);

/// One decoded (sequence, delay) measurement sample.
struct MeasurementSample {
  std::uint64_t sequence = 0;
  std::int64_t delay_ns = 0;
};

/// Decodes a probe-client or one-way-receiver output stream.
Result<std::vector<MeasurementSample>> decode_samples(BytesView output);

}  // namespace debuglet::apps
