#include "apps/debuglets.hpp"

#include "vm/builder.hpp"

namespace debuglet::apps {

namespace {

using vm::FunctionBuilder;
using vm::ModuleBuilder;
using vm::Opcode;

// Declares the conventional named buffers on a builder. The built-in
// Debuglets report through the explicit dbg_output API, so they do NOT
// declare "output_buffer" — declaring it would make the executor fall back
// to dumping the whole (zero-filled) region when a run produces no samples.
void declare_buffers(ModuleBuilder& b) {
  b.memory(kMemorySize);
  b.add_buffer(vm::kUdpSendBuffer, kSendBufferOffset, kBufferSize);
  b.add_buffer(vm::kUdpReceiveBuffer, kRecvBufferOffset, kBufferSize);
}

// Pushes dbg_param(index).
void push_param(FunctionBuilder& f, std::int64_t index) {
  f.constant(index);
  f.call_host("dbg_param");
}

}  // namespace

std::vector<std::int64_t> ProbeClientParams::to_parameters() const {
  return {static_cast<std::int64_t>(protocol),
          static_cast<std::int64_t>(server.value),
          server_port,
          probe_count,
          interval_ms,
          recv_timeout_ms,
          payload_len};
}

std::vector<std::int64_t> EchoServerParams::to_parameters() const {
  return {static_cast<std::int64_t>(protocol), max_echoes, idle_timeout_ms};
}

std::vector<std::int64_t> OneWaySenderParams::to_parameters() const {
  return {static_cast<std::int64_t>(protocol),
          static_cast<std::int64_t>(receiver.value),
          receiver_port,
          packet_count,
          interval_ms,
          payload_len};
}

std::vector<std::int64_t> OneWayReceiverParams::to_parameters() const {
  return {static_cast<std::int64_t>(protocol), expected_packets,
          idle_timeout_ms};
}

std::vector<std::int64_t> StatsServerParams::to_parameters() const {
  return {static_cast<std::int64_t>(protocol), chunk_payload, idle_timeout_ms,
          max_requests};
}

vm::Module make_probe_client_debuglet() {
  // Locals: 0 = i (probes sent), 1 = received, 2 = t0, 3 = len, 4 = tmp.
  constexpr std::uint32_t kI = 0, kReceived = 1, kT0 = 2, kLen = 3, kTmp = 4;
  ModuleBuilder b;
  declare_buffers(b);
  FunctionBuilder& f = b.function(vm::kEntryPointName, 0, 5);

  const auto loop_top = f.make_label();
  const auto recv_retry = f.make_label();
  const auto after_record = f.make_label();
  const auto done = f.make_label();

  f.bind(loop_top);
  // if (i >= probe_count) goto done
  f.local_get(kI);
  push_param(f, 3);
  f.emit(Opcode::kGeS);
  f.jump_if(done);

  // t0 = dbg_now()
  f.call_host("dbg_now");
  f.local_set(kT0);

  // send_buffer[0..8) = i ; send_buffer[8..16) = t0
  f.constant(kSendBufferOffset);
  f.local_get(kI);
  f.emit(Opcode::kStore64, 0);
  f.constant(kSendBufferOffset);
  f.local_get(kT0);
  f.emit(Opcode::kStore64, 8);

  // dbg_send(proto, server, port, send_buffer, payload_len)
  push_param(f, 0);
  push_param(f, 1);
  push_param(f, 2);
  f.constant(kSendBufferOffset);
  push_param(f, 6);
  f.call_host("dbg_send");
  f.emit(Opcode::kDrop);

  // Receive loop: a duplicated or reordered echo of an EARLIER probe can
  // be sitting in the inbox, and a single recv would hand it to us here —
  // mismatching this probe's sequence and, worse, leaving our genuine
  // echo queued to poison the next probe the same way (one wire
  // duplicate would cascade into losing most of the batch). So drain:
  // stale and runt replies are discarded and the recv repeats with
  // whatever remains of this probe's listen window.
  f.bind(recv_retry);
  // tmp = recv_timeout_ms - (now - t0) ms; if exhausted, count lost
  f.call_host("dbg_now");
  f.local_get(kT0);
  f.emit(Opcode::kSub);
  f.constant(1'000'000);
  f.emit(Opcode::kDivS);
  f.local_set(kTmp);
  push_param(f, 5);
  f.local_get(kTmp);
  f.emit(Opcode::kSub);
  f.local_set(kTmp);
  f.local_get(kTmp);
  f.constant(0);
  f.emit(Opcode::kLeS);
  f.jump_if(after_record);

  // len = dbg_recv(proto, recv_buffer, cap, remaining)
  push_param(f, 0);
  f.constant(kRecvBufferOffset);
  f.constant(kBufferSize);
  f.local_get(kTmp);
  f.call_host("dbg_recv");
  f.local_set(kLen);

  // if (len < 0) goto after_record             — timed out, count lost
  f.local_get(kLen);
  f.constant(0);
  f.emit(Opcode::kLtS);
  f.jump_if(after_record);

  // if (len < 16) goto recv_retry              — runt reply, drain it
  f.local_get(kLen);
  f.constant(16);
  f.emit(Opcode::kLtS);
  f.jump_if(recv_retry);

  // if (recv_buffer.seq != i) goto recv_retry  — stale echo, drain it
  f.constant(kRecvBufferOffset);
  f.emit(Opcode::kLoad64, 0);
  f.local_get(kI);
  f.emit(Opcode::kNe);
  f.jump_if(recv_retry);

  // scratch = (seq, now - t0); dbg_output(scratch, 16)
  f.constant(kScratchOffset);
  f.local_get(kI);
  f.emit(Opcode::kStore64, 0);
  f.constant(kScratchOffset);
  f.call_host("dbg_now");
  f.local_get(kT0);
  f.emit(Opcode::kSub);
  f.emit(Opcode::kStore64, 8);
  f.constant(kScratchOffset);
  f.constant(16);
  f.call_host("dbg_output");
  f.emit(Opcode::kDrop);

  // received += 1
  f.local_get(kReceived);
  f.constant(1);
  f.emit(Opcode::kAdd);
  f.local_set(kReceived);

  f.bind(after_record);
  // i += 1
  f.local_get(kI);
  f.constant(1);
  f.emit(Opcode::kAdd);
  f.local_set(kI);
  // Keep the paper's one-probe-per-interval cadence regardless of RTT:
  // sleep(interval - elapsed_ms), clamped to >= 0 by the host.
  f.call_host("dbg_now");
  f.local_get(kT0);
  f.emit(Opcode::kSub);
  f.constant(1'000'000);
  f.emit(Opcode::kDivS);  // elapsed ms
  f.local_set(kTmp);
  push_param(f, 4);
  f.local_get(kTmp);
  f.emit(Opcode::kSub);
  f.call_host("dbg_sleep");
  f.emit(Opcode::kDrop);
  f.jump(loop_top);

  f.bind(done);
  f.local_get(kReceived);
  f.ret();
  return b.build();
}

vm::Module make_echo_server_debuglet() {
  // Locals: 0 = echoed, 1 = len, 2 = max_echoes.
  constexpr std::uint32_t kEchoed = 0, kLen = 1, kMax = 2;
  ModuleBuilder b;
  declare_buffers(b);
  FunctionBuilder& f = b.function(vm::kEntryPointName, 0, 3);

  const auto loop_top = f.make_label();
  const auto done = f.make_label();

  // max = dbg_param(1)
  push_param(f, 1);
  f.local_set(kMax);

  f.bind(loop_top);
  // len = dbg_recv(proto, recv_buffer, cap, idle_timeout)
  push_param(f, 0);
  f.constant(kRecvBufferOffset);
  f.constant(kBufferSize);
  push_param(f, 2);
  f.call_host("dbg_recv");
  f.local_set(kLen);

  // timeout → finish
  f.local_get(kLen);
  f.constant(0);
  f.emit(Opcode::kLtS);
  f.jump_if(done);

  // dbg_send(proto, last_sender, last_sender_port, recv_buffer, len)
  push_param(f, 0);
  f.call_host("dbg_last_sender");
  f.call_host("dbg_last_sender_port");
  f.constant(kRecvBufferOffset);
  f.local_get(kLen);
  f.call_host("dbg_send");
  f.emit(Opcode::kDrop);

  // echoed += 1
  f.local_get(kEchoed);
  f.constant(1);
  f.emit(Opcode::kAdd);
  f.local_set(kEchoed);

  // unbounded if max == 0
  f.local_get(kMax);
  f.emit(Opcode::kEqz);
  f.jump_if(loop_top);
  // continue while echoed < max
  f.local_get(kEchoed);
  f.local_get(kMax);
  f.emit(Opcode::kLtS);
  f.jump_if(loop_top);

  f.bind(done);
  // output the echo count
  f.constant(kScratchOffset);
  f.local_get(kEchoed);
  f.emit(Opcode::kStore64, 0);
  f.constant(kScratchOffset);
  f.constant(8);
  f.call_host("dbg_output");
  f.emit(Opcode::kDrop);
  f.local_get(kEchoed);
  f.ret();
  return b.build();
}

vm::Module make_oneway_sender_debuglet() {
  // Locals: 0 = i.
  constexpr std::uint32_t kI = 0;
  ModuleBuilder b;
  declare_buffers(b);
  FunctionBuilder& f = b.function(vm::kEntryPointName, 0, 1);

  const auto loop_top = f.make_label();
  const auto done = f.make_label();

  f.bind(loop_top);
  f.local_get(kI);
  push_param(f, 3);
  f.emit(Opcode::kGeS);
  f.jump_if(done);

  // payload = (seq, send timestamp)
  f.constant(kSendBufferOffset);
  f.local_get(kI);
  f.emit(Opcode::kStore64, 0);
  f.constant(kSendBufferOffset);
  f.call_host("dbg_now");
  f.emit(Opcode::kStore64, 8);

  push_param(f, 0);
  push_param(f, 1);
  push_param(f, 2);
  f.constant(kSendBufferOffset);
  push_param(f, 5);
  f.call_host("dbg_send");
  f.emit(Opcode::kDrop);

  f.local_get(kI);
  f.constant(1);
  f.emit(Opcode::kAdd);
  f.local_set(kI);
  push_param(f, 4);
  f.call_host("dbg_sleep");
  f.emit(Opcode::kDrop);
  f.jump(loop_top);

  f.bind(done);
  f.constant(kScratchOffset);
  f.local_get(kI);
  f.emit(Opcode::kStore64, 0);
  f.constant(kScratchOffset);
  f.constant(8);
  f.call_host("dbg_output");
  f.emit(Opcode::kDrop);
  f.local_get(kI);
  f.ret();
  return b.build();
}

vm::Module make_oneway_receiver_debuglet() {
  // Locals: 0 = received, 1 = len.
  constexpr std::uint32_t kReceived = 0, kLen = 1;
  ModuleBuilder b;
  declare_buffers(b);
  FunctionBuilder& f = b.function(vm::kEntryPointName, 0, 2);

  const auto loop_top = f.make_label();
  const auto done = f.make_label();

  f.bind(loop_top);
  // done when the expected count arrived
  f.local_get(kReceived);
  push_param(f, 1);
  f.emit(Opcode::kGeS);
  f.jump_if(done);

  push_param(f, 0);
  f.constant(kRecvBufferOffset);
  f.constant(kBufferSize);
  push_param(f, 2);
  f.call_host("dbg_recv");
  f.local_set(kLen);

  f.local_get(kLen);
  f.constant(16);
  f.emit(Opcode::kLtS);
  f.jump_if(done);  // idle timeout (or runt) ends the receiver

  // record (seq, now - embedded send time)
  f.constant(kScratchOffset);
  f.constant(kRecvBufferOffset);
  f.emit(Opcode::kLoad64, 0);
  f.emit(Opcode::kStore64, 0);
  f.constant(kScratchOffset);
  f.call_host("dbg_now");
  f.constant(kRecvBufferOffset);
  f.emit(Opcode::kLoad64, 8);
  f.emit(Opcode::kSub);
  f.emit(Opcode::kStore64, 8);
  f.constant(kScratchOffset);
  f.constant(16);
  f.call_host("dbg_output");
  f.emit(Opcode::kDrop);

  f.local_get(kReceived);
  f.constant(1);
  f.emit(Opcode::kAdd);
  f.local_set(kReceived);
  f.jump(loop_top);

  f.bind(done);
  f.local_get(kReceived);
  f.ret();
  return b.build();
}

vm::Module make_stats_debuglet() {
  // Locals: 0 = served, 1 = len, 2 = idx, 3 = max, 4 = chunks.
  constexpr std::uint32_t kServed = 0, kLen = 1, kIdx = 2, kMax = 3,
                          kChunks = 4;
  ModuleBuilder b;
  declare_buffers(b);
  FunctionBuilder& f = b.function(vm::kEntryPointName, 0, 5);

  const auto loop_top = f.make_label();
  const auto serve = f.make_label();
  const auto done = f.make_label();

  // max = dbg_param(3); chunks = dbg_metrics_prepare(chunk_payload)
  push_param(f, 3);
  f.local_set(kMax);
  push_param(f, 1);
  f.call_host("dbg_metrics_prepare");
  f.local_set(kChunks);

  f.bind(loop_top);
  // len = dbg_recv(proto, recv_buffer, cap, idle_timeout)
  push_param(f, 0);
  f.constant(kRecvBufferOffset);
  f.constant(kBufferSize);
  push_param(f, 2);
  f.call_host("dbg_recv");
  f.local_set(kLen);

  // idle timeout → finish
  f.local_get(kLen);
  f.constant(0);
  f.emit(Opcode::kLtS);
  f.jump_if(done);

  // runt request (no 8-byte index) → ignore
  f.local_get(kLen);
  f.constant(8);
  f.emit(Opcode::kLtS);
  f.jump_if(loop_top);

  // idx = recv_buffer[0..8)
  f.constant(kRecvBufferOffset);
  f.emit(Opcode::kLoad64, 0);
  f.local_set(kIdx);

  // A chunk-0 request starts a scrape session: re-freeze a fresh snapshot
  // so the scraper observes the registry at scrape time, not start time.
  f.local_get(kIdx);
  f.constant(0);
  f.emit(Opcode::kNe);
  f.jump_if(serve);
  push_param(f, 1);
  f.call_host("dbg_metrics_prepare");
  f.local_set(kChunks);

  f.bind(serve);
  // len = dbg_metrics_chunk(idx, send_buffer, cap)
  f.local_get(kIdx);
  f.constant(kSendBufferOffset);
  f.constant(kBufferSize);
  f.call_host("dbg_metrics_chunk");
  f.local_set(kLen);

  // bad index / buffer too small → ignore the request
  f.local_get(kLen);
  f.constant(0);
  f.emit(Opcode::kLtS);
  f.jump_if(loop_top);

  // dbg_send(proto, last_sender, last_sender_port, send_buffer, len)
  push_param(f, 0);
  f.call_host("dbg_last_sender");
  f.call_host("dbg_last_sender_port");
  f.constant(kSendBufferOffset);
  f.local_get(kLen);
  f.call_host("dbg_send");
  f.emit(Opcode::kDrop);

  // served += 1
  f.local_get(kServed);
  f.constant(1);
  f.emit(Opcode::kAdd);
  f.local_set(kServed);

  // unbounded if max == 0
  f.local_get(kMax);
  f.emit(Opcode::kEqz);
  f.jump_if(loop_top);
  f.local_get(kServed);
  f.local_get(kMax);
  f.emit(Opcode::kLtS);
  f.jump_if(loop_top);

  f.bind(done);
  // output (served, chunks)
  f.constant(kScratchOffset);
  f.local_get(kServed);
  f.emit(Opcode::kStore64, 0);
  f.constant(kScratchOffset);
  f.local_get(kChunks);
  f.emit(Opcode::kStore64, 8);
  f.constant(kScratchOffset);
  f.constant(16);
  f.call_host("dbg_output");
  f.emit(Opcode::kDrop);
  f.local_get(kServed);
  f.ret();
  return b.build();
}

namespace {

executor::Manifest base_manifest(net::Protocol protocol,
                                 net::Ipv4Address peer,
                                 std::int64_t packet_budget,
                                 SimDuration max_duration) {
  executor::Manifest m;
  // ~70 instructions plus ~10 host calls (32 fuel each) per probe loop
  // iteration; ×8 headroom so legitimate Debuglets never starve.
  m.cpu_fuel =
      static_cast<std::uint64_t>(std::max<std::int64_t>(packet_budget, 1)) *
          3200 +
      100'000;
  m.max_duration = max_duration;
  m.peak_memory = kMemorySize;
  m.max_packets_sent =
      static_cast<std::uint32_t>(std::max<std::int64_t>(packet_budget, 0));
  // The receive budget counts every packet HANDED to the sandbox, and the
  // probe client drains stale echoes — under wire-level duplication it
  // legitimately receives more than it sends. Budget headroom keeps a
  // duplicated wire from being a deployment-fatal event while still
  // bounding a flood.
  m.max_packets_received = 4 * m.max_packets_sent + 16;
  m.allowed_addresses = {peer};
  m.capabilities = {executor::capability_for(protocol),
                    executor::Capability::kClock,
                    executor::Capability::kRandom};
  return m;
}

}  // namespace

executor::Manifest client_manifest(net::Protocol protocol,
                                   net::Ipv4Address peer,
                                   std::int64_t probe_count,
                                   SimDuration max_duration) {
  return base_manifest(protocol, peer, probe_count, max_duration);
}

executor::Manifest server_manifest(net::Protocol protocol,
                                   net::Ipv4Address peer,
                                   std::int64_t packet_budget,
                                   SimDuration max_duration) {
  return base_manifest(protocol, peer, packet_budget, max_duration);
}

executor::Manifest stats_manifest(net::Protocol protocol,
                                  net::Ipv4Address scraper,
                                  std::int64_t request_budget,
                                  SimDuration max_duration) {
  executor::Manifest m =
      base_manifest(protocol, scraper, request_budget, max_duration);
  m.capabilities = {executor::capability_for(protocol),
                    executor::Capability::kHostMetrics};
  return m;
}

Result<std::vector<MeasurementSample>> decode_samples(BytesView output) {
  if (output.size() % 16 != 0)
    return fail("sample stream length " + std::to_string(output.size()) +
                " is not a multiple of 16");
  BytesReader r(output);
  std::vector<MeasurementSample> out;
  out.reserve(output.size() / 16);
  while (!r.exhausted()) {
    MeasurementSample s;
    auto seq = r.u64();
    if (!seq) return seq.error();
    s.sequence = *seq;
    auto delay = r.i64();
    if (!delay) return delay.error();
    s.delay_ns = *delay;
    out.push_back(s);
  }
  return out;
}

}  // namespace debuglet::apps
