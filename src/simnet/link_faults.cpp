#include "simnet/link_faults.hpp"

namespace debuglet::simnet {

namespace {

// splitmix64 — the same stream-derivation primitive Rng seeds with. Damage
// application must be a pure function of WireDamage::seed so the network
// can apply it at delivery time without consuming link RNG state.
std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

void apply_wire_damage(Bytes& wire, const WireDamage& damage) {
  switch (damage.kind) {
    case WireDamage::Kind::kNone:
      return;
    case WireDamage::Kind::kCorrupt: {
      if (wire.empty()) return;
      std::uint64_t state = damage.seed;
      for (std::uint32_t i = 0; i < damage.bit_flips; ++i) {
        const std::uint64_t draw = splitmix64(state);
        const std::size_t bit = draw % (wire.size() * 8);
        wire[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
      }
      return;
    }
    case WireDamage::Kind::kTruncate:
      if (damage.truncate_to < wire.size()) wire.resize(damage.truncate_to);
      return;
    case WireDamage::Kind::kMangle: {
      if (damage.offset >= wire.size()) return;
      const std::size_t span = wire.size() - damage.offset;
      std::uint64_t state = damage.seed;
      for (std::uint32_t i = 0; i < damage.bit_flips; ++i) {
        const std::uint64_t draw = splitmix64(state);
        const std::size_t bit = draw % (span * 8);
        wire[damage.offset + bit / 8] ^=
            static_cast<std::uint8_t>(1u << (bit % 8));
      }
      return;
    }
  }
}

LinkFaultPlan& LinkFaultPlan::corrupt(double probability_pm,
                                      std::uint32_t max_bit_flips,
                                      FaultWindow window) {
  corrupt_.probability_pm = probability_pm;
  corrupt_.max_bit_flips = max_bit_flips == 0 ? 1 : max_bit_flips;
  corrupt_.window = window;
  return *this;
}

LinkFaultPlan& LinkFaultPlan::truncate(double probability_pm,
                                       FaultWindow window) {
  truncate_.probability_pm = probability_pm;
  truncate_.window = window;
  return *this;
}

LinkFaultPlan& LinkFaultPlan::duplicate(double probability_pm,
                                        std::uint32_t max_copies,
                                        FaultWindow window) {
  duplicate_.probability_pm = probability_pm;
  duplicate_.max_copies = max_copies == 0 ? 1 : max_copies;
  duplicate_.window = window;
  return *this;
}

LinkFaultPlan& LinkFaultPlan::reorder(double probability_pm,
                                      double max_extra_delay_ms,
                                      FaultWindow window) {
  reorder_.probability_pm = probability_pm;
  reorder_.max_extra_delay_ms = max_extra_delay_ms;
  reorder_.window = window;
  return *this;
}

LinkFaultPlan& LinkFaultPlan::flap(SimTime start, SimTime end) {
  flaps_.push_back(FaultWindow{start, end});
  return *this;
}

}  // namespace debuglet::simnet
