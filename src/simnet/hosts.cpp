#include "simnet/hosts.hpp"

#include <cmath>

#include "util/log.hpp"

namespace debuglet::simnet {

EchoServerHost::EchoServerHost(SimulatedNetwork& network,
                               net::Ipv4Address address,
                               SimDuration processing_overhead,
                               double overhead_jitter_ns, std::uint64_t seed)
    : network_(network),
      address_(address),
      overhead_(processing_overhead),
      overhead_jitter_ns_(overhead_jitter_ns),
      rng_(seed) {}

void EchoServerHost::on_packet(const Delivery& delivery) {
  auto reply = net::build_echo_reply(delivery.packet);
  if (!reply) {
    DEBUGLET_LOG(kWarn, "echo") << "cannot reply: " << reply.error_message();
    return;
  }
  ++echoed_;
  SimDuration overhead = overhead_;
  if (overhead_jitter_ns_ > 0.0)
    overhead += static_cast<SimDuration>(
        std::abs(rng_.normal(0.0, overhead_jitter_ns_)));
  Bytes wire = std::move(*reply);
  network_.queue().schedule_after(
      overhead, [this, wire = std::move(wire)]() mutable {
        auto status = network_.send(address_, std::move(wire));
        if (!status)
          DEBUGLET_LOG(kWarn, "echo") << "send: " << status.error_message();
      });
}

double ProbeReport::loss_per_mille(net::Protocol p) const {
  auto sent_it = sent.find(p);
  if (sent_it == sent.end() || sent_it->second == 0) return 0.0;
  const auto recv_it = received.find(p);
  const std::uint64_t got = recv_it == received.end() ? 0 : recv_it->second;
  return 1000.0 *
         static_cast<double>(sent_it->second - got) /
         static_cast<double>(sent_it->second);
}

ProbeClientHost::ProbeClientHost(SimulatedNetwork& network,
                                 net::Ipv4Address address,
                                 ProbeClientConfig config, std::uint64_t seed)
    : network_(network),
      address_(address),
      config_(std::move(config)),
      rng_(seed) {
  for (net::Protocol p : config_.protocols) {
    report_.rtt_ms[p];
    report_.sent[p] = 0;
    report_.received[p] = 0;
    if (config_.record_series)
      report_.series[p].label = net::protocol_name(p);
  }
}

void ProbeClientHost::start() { send_round(0); }

void ProbeClientHost::send_round(std::uint64_t round) {
  if (round >= config_.probe_count) return;
  for (net::Protocol protocol : config_.protocols)
    send_probe(protocol, round);
  // Self-timers are homed on the host's own domain so every mutation of
  // report_/outstanding_ — timer sends and deliveries alike — runs on the
  // one event-queue lane that owns this host.
  network_.queue().schedule_on(
      network_.domain_of(address_), network_.now() + config_.interval,
      [this, round] { send_round(round + 1); });
}

void ProbeClientHost::send_probe(net::Protocol protocol, std::uint64_t round) {
  net::ProbeSpec spec;
  spec.protocol = protocol;
  spec.source = address_;
  spec.destination = config_.server;
  spec.source_port = next_client_port_;
  spec.destination_port = config_.server_port;
  spec.sequence = static_cast<std::uint16_t>(round);
  spec.tcp_sequence = static_cast<std::uint32_t>(rng_.next_u64());
  spec.equalized_length = config_.equalized_length;
  // Probe payload convention (shared with the DVM Debuglets): bytes [0,8)
  // carry the sequence number, [8,16) the send timestamp. Echo servers of
  // either kind preserve the payload, so replies match by content even
  // when an intermediary rewrites IP-level fields.
  {
    BytesWriter payload;
    payload.u64(round);
    payload.i64(network_.now());
    spec.payload = payload.take();
  }
  auto wire = net::build_probe(spec);
  if (!wire) {
    DEBUGLET_LOG(kError, "probe") << "build: " << wire.error_message();
    return;
  }

  SimDuration overhead = config_.processing_overhead;
  if (config_.overhead_jitter_ns > 0.0)
    overhead += static_cast<SimDuration>(
        std::abs(rng_.normal(0.0, config_.overhead_jitter_ns)));

  ++report_.sent[protocol];
  const auto key = std::make_pair(protocol, spec.sequence);
  // The application's clock starts when it initiates the probe, so any
  // sandbox processing overhead before the packet hits the wire is part of
  // the measured RTT (exactly what Fig. 8 quantifies).
  outstanding_[key] = Outstanding{network_.now(), round};
  network_.queue().schedule_on(
      network_.domain_of(address_), network_.now() + overhead,
      [this, wire = std::move(*wire)]() mutable {
        auto status = network_.send(address_, std::move(wire));
        if (!status)
          DEBUGLET_LOG(kError, "probe") << "send: " << status.error_message();
      });
}

void ProbeClientHost::on_packet(const Delivery& delivery) {
  const net::Packet& pkt = delivery.packet;
  // Match replies by the sequence number embedded in the echoed payload.
  if (pkt.payload.size() < 8) return;
  BytesReader reader(BytesView(pkt.payload.data(), pkt.payload.size()));
  const auto seq = reader.u64();
  if (!seq) return;
  const auto key =
      std::make_pair(pkt.protocol, static_cast<std::uint16_t>(*seq));
  auto it = outstanding_.find(key);
  if (it == outstanding_.end()) return;  // duplicate or late beyond reuse
  const SimDuration rtt = delivery.received_at - it->second.sent_at;
  if (rtt <= config_.rtt_timeout) {
    ++report_.received[pkt.protocol];
    report_.rtt_ms[pkt.protocol].add(duration::to_ms(rtt));
    if (config_.record_series) {
      Series& s = report_.series[pkt.protocol];
      s.times_s.push_back(duration::to_seconds(it->second.sent_at));
      s.values.push_back(duration::to_ms(rtt));
    }
  }
  outstanding_.erase(it);
}

const ProbeReport& ProbeClientHost::report() {
  if (!finalized_) {
    finalized_ = true;
    outstanding_.clear();  // anything unanswered counts as lost
  }
  return report_;
}

double TracerouteReport::silent_hop_fraction() const {
  if (hops.empty()) return 0.0;
  std::size_t silent = 0;
  for (const TracerouteHop& hop : hops) silent += hop.responded ? 0 : 1;
  return static_cast<double>(silent) / static_cast<double>(hops.size());
}

TracerouteProber::TracerouteProber(SimulatedNetwork& network,
                                   net::Ipv4Address address,
                                   TracerouteConfig config, std::uint64_t seed)
    : network_(network),
      address_(address),
      config_(config),
      rng_(seed) {}

void TracerouteProber::start() {
  report_.hops.clear();
  report_.hops.resize(config_.max_ttl);
  for (std::uint8_t ttl = 1; ttl <= config_.max_ttl; ++ttl)
    report_.hops[ttl - 1].ttl = ttl;
  // Schedule the whole probe train up front; replies arrive as they may.
  // Probe events are homed on the prober's domain so sends and deliveries
  // mutate report_/outstanding_ from a single event-queue lane.
  const SimTime base = network_.now();
  SimDuration offset = 0;
  for (std::uint8_t ttl = 1; ttl <= config_.max_ttl; ++ttl) {
    for (std::uint32_t attempt = 0; attempt < config_.probes_per_ttl;
         ++attempt) {
      network_.queue().schedule_on(
          network_.domain_of(address_), base + offset,
          [this, ttl, attempt] { send_probe(ttl, attempt); });
      offset += config_.probe_interval;
    }
  }
}

void TracerouteProber::send_probe(std::uint8_t ttl, std::uint32_t) {
  if (destination_seen_ && ttl > 0) {
    // Classic traceroute stops probing past a responding destination.
    bool past_destination = false;
    for (const TracerouteHop& hop : report_.hops)
      if (hop.responded && hop.responder == config_.destination &&
          ttl > hop.ttl)
        past_destination = true;
    if (past_destination) return;
  }
  const std::uint16_t ident = next_ident_++;
  net::ProbeSpec spec;
  spec.protocol = config_.protocol;
  spec.source = address_;
  spec.destination = config_.destination;
  spec.source_port = 33000;
  spec.destination_port = config_.destination_port;
  spec.sequence = ident;  // echoed back by time-exceeded and echo replies
  spec.ttl = ttl;
  spec.tcp_sequence = static_cast<std::uint32_t>(rng_.next_u64());
  BytesWriter payload;
  payload.u64(ident);
  payload.i64(network_.now());
  spec.payload = payload.take();
  auto wire = net::build_probe(spec);
  if (!wire) return;
  report_.hops[ttl - 1].probes_sent++;
  outstanding_[ident] = {ttl, network_.now()};
  (void)network_.send(address_, std::move(*wire));
}

void TracerouteProber::on_packet(const Delivery& delivery) {
  const net::Packet& pkt = delivery.packet;
  std::uint16_t ident = 0;
  bool from_destination = false;
  if (pkt.protocol == net::Protocol::kIcmp && pkt.icmp &&
      pkt.icmp->type == net::kIcmpTimeExceeded) {
    ident = pkt.ip.identification;
  } else if (pkt.ip.source == config_.destination) {
    // An echo (or any reply) from the destination itself.
    ident = pkt.ip.identification;
    from_destination = true;
  } else {
    return;
  }
  auto it = outstanding_.find(ident);
  if (it == outstanding_.end()) return;
  const auto [ttl, sent_at] = it->second;
  outstanding_.erase(it);
  const SimDuration rtt = delivery.received_at - sent_at;
  if (rtt > config_.reply_timeout) return;  // too late, counted silent
  TracerouteHop& hop = report_.hops[ttl - 1];
  hop.responded = true;
  hop.responder = pkt.ip.source;
  hop.rtt_ms.add(duration::to_ms(rtt));
  if (from_destination) {
    destination_seen_ = true;
    report_.reached_destination = true;
  }
}

}  // namespace debuglet::simnet
