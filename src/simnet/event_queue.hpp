// Discrete-event simulation engine, sharded.
//
// The queue is split into S lanes, each owning a 4-ary min-heap of events.
// Every event belongs to a *domain* (0 = the control plane, otherwise an
// AS number); a domain always maps to the same lane, so all state owned by
// one domain is mutated by exactly one thread. Lanes execute windows of
// [W, W + lookahead) concurrently, where the lookahead is half the
// smallest configured link latency floor — the classic conservative
// (null-message-free) barrier: no event can schedule work on another
// domain closer than the lookahead, so a window's lanes are independent.
//
// Determinism contract (docs/SIMNET.md): events are totally ordered by
// (time, id) where ids encode the scheduling context — the i-th event
// scheduled while executing event E gets id (mix64(E.id) << 20) | i,
// and events scheduled outside any event (the main thread seeding a
// scenario) get ordered root ids (seq << 20), so equal-time events from
// one context fire in scheduling order. Ids therefore do not depend on the shard count or on which
// thread pushed the event first, and per-domain execution order — the
// only order observable through simulated state — is bit-identical at any
// shard count, including shards=1, which runs a plain pop-min loop with
// no threads at all.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "util/time.hpp"

namespace debuglet::simnet {

/// The simulation clock and event dispatcher.
class EventQueue {
 public:
  using Callback = std::function<void()>;
  /// Allocation-free callback used on the packet hot path: a plain
  /// function pointer plus a context argument (the in-flight packet).
  using RawFn = void (*)(void*);

  /// The domain of the control plane (executors, chain, marketplace, the
  /// main thread) and of any event that never declared one.
  static constexpr std::uint32_t kControlDomain = 0;

  EventQueue();
  ~EventQueue();
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Current virtual time: the executing event's timestamp on a dispatch
  /// thread, the global clock (end of the last run) elsewhere.
  SimTime now() const;

  /// The domain of the currently executing event (kControlDomain outside
  /// dispatch). New events inherit it unless scheduled with schedule_on.
  std::uint32_t current_domain() const;

  /// Schedules `fn` at absolute time `at` (clamped to now()) on the
  /// current domain.
  void schedule_at(SimTime at, Callback fn);

  /// Schedules `fn` after `delay` from now on the current domain.
  void schedule_after(SimDuration delay, Callback fn);

  /// Schedules `fn` at `at` on an explicit domain. Cross-domain schedules
  /// are clamped to now() + lookahead at EVERY shard count — the clamp is
  /// part of the simulation semantics, not a sharding artifact, which is
  /// what keeps traces identical when the shard count changes.
  void schedule_on(std::uint32_t domain, SimTime at, Callback fn);

  /// schedule_on without the std::function allocation; `fn(arg)` runs at
  /// `at`. The caller keeps ownership of whatever `arg` points at.
  void schedule_raw_on(std::uint32_t domain, SimTime at, RawFn fn, void* arg);

  /// Repartitions the queue into `count` lanes (clamped to >= 1). Safe to
  /// call between runs; pending events are re-dealt to their domains'
  /// new lanes. Worker threads (count - 1 of them) start lazily at the
  /// first sharded run.
  void set_shards(std::size_t count);
  std::size_t shards() const { return lanes_.size(); }

  /// Registers a lower bound on some link's latency; the lookahead is
  /// half the smallest registered floor. Links report their floor when
  /// configured, before any traffic is scheduled.
  void note_link_floor(SimDuration floor);
  /// The cross-domain scheduling clamp, >= 1 ns.
  SimDuration lookahead() const;

  /// Runs events until the queue empties. Returns events processed.
  std::size_t run();

  /// Runs events with time <= deadline; the clock ends at `deadline` even
  /// if the queue drained earlier. Returns events processed.
  std::size_t run_until(SimTime deadline);

  bool empty() const { return pending() == 0; }
  std::size_t pending() const;

 private:
  struct Event {
    SimTime at = 0;
    std::uint64_t id = 0;
    std::uint32_t domain = kControlDomain;
    RawFn raw = nullptr;
    void* arg = nullptr;
    Callback fn;
  };

  /// One shard: a heap the owning thread pops from and a mutex-guarded
  /// inbox other lanes push cross-domain events through. The inbox is
  /// drained into the heap at the window barrier, on the main thread.
  struct Lane {
    std::vector<Event> heap;
    std::mutex inbox_mu;
    std::vector<Event> inbox;
    std::size_t processed = 0;
    SimTime last_at = 0;
  };

  std::size_t lane_of(std::uint32_t domain) const;
  void enqueue(std::uint32_t domain, SimTime at, Event ev);
  void dispatch_single_lane(Event ev);
  std::size_t run_single_lane(SimTime deadline, bool until_empty);
  std::size_t run_sharded(SimTime deadline, bool until_empty);
  void run_lane_window(std::size_t lane_index, SimTime horizon);
  void ensure_workers();
  void stop_workers();
  void worker_main(std::size_t lane_index);

  std::vector<std::unique_ptr<Lane>> lanes_;
  SimTime global_now_ = 0;
  std::uint64_t root_seq_ = 0;
  SimDuration min_link_floor_ = 0;  // 0 = none registered yet

  // Window barrier (only touched when shards() > 1). Workers sleep until
  // window_gen_ changes, run their lane up to window_horizon_, then
  // report done; the main thread runs lane 0 itself.
  std::vector<std::thread> workers_;
  std::mutex barrier_mu_;
  std::condition_variable window_start_cv_;
  std::condition_variable window_done_cv_;
  std::uint64_t window_gen_ = 0;
  SimTime window_horizon_ = 0;
  std::size_t workers_done_ = 0;
  bool stopping_ = false;

  // Cached at construction from the active obs registry; the registry owns
  // them and record operations no-op while observability is disabled.
  obs::Gauge* depth_gauge_;
  obs::Histogram* pop_latency_ns_;
  obs::Counter* events_processed_;
};

}  // namespace debuglet::simnet
