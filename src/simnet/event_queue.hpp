// Discrete-event simulation engine.
//
// A single global virtual clock with a priority queue of callbacks. Events
// scheduled for equal times fire in scheduling order (stable sequence
// numbers), which keeps every scenario bit-deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "obs/metrics.hpp"
#include "util/time.hpp"

namespace debuglet::simnet {

/// The simulation clock and event dispatcher.
class EventQueue {
 public:
  using Callback = std::function<void()>;

  EventQueue();

  /// Current virtual time.
  SimTime now() const { return now_; }

  /// Schedules `fn` at absolute time `at` (clamped to now()).
  void schedule_at(SimTime at, Callback fn);

  /// Schedules `fn` after `delay` from now.
  void schedule_after(SimDuration delay, Callback fn);

  /// Runs events until the queue empties. Returns events processed.
  std::size_t run();

  /// Runs events with time <= deadline; the clock ends at `deadline` even
  /// if the queue drained earlier. Returns events processed.
  std::size_t run_until(SimTime deadline);

  bool empty() const { return events_.empty(); }
  std::size_t pending() const { return events_.size(); }

 private:
  struct Event {
    SimTime at;
    std::uint64_t seq;
    Callback fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };
  /// Pops the next event, advances the clock, runs the callback and
  /// updates the queue metrics around it.
  void dispatch_next();

  std::priority_queue<Event, std::vector<Event>, Later> events_;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  // Cached at construction from the active obs registry; the registry owns
  // them and record operations no-op while observability is disabled.
  obs::Gauge* depth_gauge_;
  obs::Histogram* pop_latency_ns_;
  obs::Counter* events_processed_;
};

}  // namespace debuglet::simnet
