// Per-link forwarding behaviour with protocol-differential treatment.
//
// The paper's motivation (§II) is that forwarding devices treat packets
// differently by protocol: ICMP rides priority queues; UDP is load-balanced
// per packet across parallel routes; TCP is pinned per flow and
// deprioritized (dropped preferentially) on congested links; raw IP follows
// stable routes. This module expresses exactly those mechanisms, per
// directed inter-domain link:
//
//   * a set of parallel ROUTES, each with a latency offset, jitter, and
//     base loss (router-level ECMP / LAG members);
//   * a per-protocol SELECTION POLICY over those routes — fixed,
//     per-packet, or per-flow;
//   * EPISODE processes (congestion, route elevation): ON/OFF renewal
//     processes adding delay and loss to a chosen protocol set, skipped by
//     priority traffic;
//   * slow ROUTE-SHIFT drift re-drawn at random times (BGP path changes);
//   * an injectable FAULT overlay for localization experiments.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "net/address.hpp"
#include "obs/metrics.hpp"
#include "simnet/link_faults.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace debuglet::simnet {

/// One parallel route (ECMP/LAG member) within a link.
struct RouteSpec {
  double offset_ms = 0.0;    // latency relative to the link's propagation
  double jitter_ms = 0.0;    // gaussian jitter stddev (truncated at 0)
  double loss_pm = 0.0;      // base loss, per mille
};

/// How a protocol chooses among routes.
enum class SelectionPolicy {
  kFixed,      // always routes.front()
  kPerPacket,  // uniform per packet (fine-grained load balancing; UDP)
  kPerFlow,    // hash of the 5-tuple, stable per flow (TCP)
};

/// A protocol's forwarding treatment on this link.
struct ProtocolPolicy {
  SelectionPolicy selection = SelectionPolicy::kFixed;
  std::vector<std::size_t> routes{0};  // candidate route indices
  double drop_multiplier = 1.0;        // >1 = deprioritized on congestion
  bool priority = false;               // true = skips episode queueing
};

/// An ON/OFF renewal process adding delay/loss while ON.
struct EpisodeSpec {
  std::string label;
  double on_mean_s = 0.0;    // mean episode duration; 0 disables
  double off_mean_s = 1.0;   // mean gap between episodes
  double extra_delay_ms = 0.0;
  double extra_loss_pm = 0.0;
  std::set<net::Protocol> affects;  // empty = affects all protocols
};

/// Slow piecewise-constant drift of route offsets (BGP route changes over a
/// day). Each route drifts independently, so protocols pinned to different
/// routes shift without cross-correlation (paper Fig. 3 discussion).
struct ShiftSpec {
  double period_mean_s = 0.0;  // mean dwell between shifts; 0 disables
  double amplitude_ms = 0.0;   // each shift draws uniform [-a, +a]
};

/// Operator-injected fault for localization experiments.
struct FaultSpec {
  double extra_delay_ms = 0.0;
  double extra_loss_pm = 0.0;
  SimTime start = 0;
  SimTime end = 0;  // exclusive; end <= start means "never active"

  bool active_at(SimTime t) const { return t >= start && t < end; }
};

/// Full configuration of one direction of a link.
struct LinkConfig {
  double propagation_ms = 1.0;
  /// Link capacity; packets add size*8/bandwidth serialization delay
  /// (0 = infinite). Packet size affecting forwarding delay is one reason
  /// the paper equalizes probe lengths (§II).
  double bandwidth_bps = 0.0;
  std::vector<RouteSpec> routes{{}};
  std::map<net::Protocol, ProtocolPolicy> policies;  // missing = defaults
  std::vector<EpisodeSpec> episodes;
  ShiftSpec shift;
  /// Addresses whose traffic the operator covertly prioritizes (skipping
  /// episode queueing/loss) — the fault-hiding strategy of paper §VI-E.
  /// Matched against both source and destination.
  std::set<net::Ipv4Address> prioritized_addresses;

  /// Convenience: sets one policy entry.
  LinkConfig& with_policy(net::Protocol p, ProtocolPolicy policy) {
    policies[p] = policy;
    return *this;
  }
};

/// One copy of a frame coming off the far end of a link. A healthy
/// crossing yields exactly one undamaged copy; a LinkFaultPlan can damage
/// it, hold it back, or mint extra copies.
struct DeliveryCopy {
  SimDuration delay = 0;
  std::size_t route = 0;
  bool duplicate = false;  // an extra copy beyond the original
  bool reordered = false;  // held back by a forced-reordering burst
  WireDamage damage;       // corruption/truncation to apply to the bytes
};

/// The outcome of one packet crossing one link: zero or more delivery
/// copies (zero = lost). `dropped`/`delay`/`route` summarize the primary
/// copy for callers that predate the wire-fault layer; `copies` is the
/// full story and what the network actually forwards.
struct TraverseOutcome {
  bool dropped = false;
  SimDuration delay = 0;
  std::size_t route = 0;  // which route carried the packet (if not dropped)
  std::vector<DeliveryCopy> copies;
};

/// Stateful directional link simulator. All stochastic state (episode
/// phases, shifts, per-flow pins) lives here and advances lazily with the
/// query time, so links are pay-as-you-go regardless of scenario length.
class LinkModel {
 public:
  LinkModel(LinkConfig config, Rng rng);

  /// Simulates one packet crossing at time `now`. `flow_hash` identifies
  /// the 5-tuple for per-flow selection; `source`/`destination` feed the
  /// operator's covert prioritization list (defaults match nothing);
  /// `size_bytes` adds serialization delay on capacity-limited links.
  TraverseOutcome traverse(net::Protocol protocol, std::uint64_t flow_hash,
                           SimTime now,
                           net::Ipv4Address source = net::Ipv4Address(),
                           net::Ipv4Address destination = net::Ipv4Address(),
                           std::uint32_t size_bytes = 0);

  /// Installs (replaces) the fault overlay.
  void inject_fault(const FaultSpec& fault) { fault_ = fault; }
  void clear_fault() { fault_ = FaultSpec{}; }
  const FaultSpec& fault() const { return fault_; }

  /// Installs (replaces) the wire-fault schedule. `rng` must be forked
  /// from the scenario seed by the caller (SimulatedNetwork derives it
  /// from the network seed and the link identity) so that equal-seed runs
  /// damage the same packets the same way regardless of install order.
  void install_fault_plan(LinkFaultPlan plan, Rng rng);
  void clear_fault_plan();
  const LinkFaultPlan& fault_plan() const { return fault_plan_; }

  /// Running totals of wire faults this link has injected.
  const LinkIntegrityStats& integrity() const { return integrity_; }

  /// Episode processes currently ON at `now` — the queue-depth proxy an
  /// INT hop record snapshots at enqueue. Advancing to a time the link
  /// has already been queried at draws no randomness, so calling this
  /// right after traverse() leaves the RNG stream untouched.
  std::uint32_t active_episodes(SimTime now);

  const LinkConfig& config() const { return config_; }

  /// Hard lower bound on this direction's delay, in milliseconds: half
  /// the propagation time, at least 1 µs. traverse() never returns a
  /// copy faster than this even when negative route offsets and jitter
  /// conspire (it used to clamp at zero); the event queue's cross-shard
  /// lookahead is derived from the smallest floor of any configured link
  /// (docs/SIMNET.md). Calibrated scenarios sit far above their floors,
  /// so the clamp never binds in practice.
  double floor_ms() const;

  /// Mean delay this link would add for a protocol right now, faults and
  /// active episodes included — ground truth for localization tests.
  double expected_delay_ms(net::Protocol protocol, SimTime now) const;

 private:
  struct EpisodeState {
    bool on = false;
    SimTime next_toggle = 0;
  };
  const ProtocolPolicy& policy_for(net::Protocol p) const;
  void advance_episodes(SimTime now);
  void advance_shift(SimTime now);
  std::size_t select_route(const ProtocolPolicy& policy,
                           std::uint64_t flow_hash);
  void apply_fault_plan(TraverseOutcome& out, SimTime now,
                        std::uint32_t size_bytes);

  LinkConfig config_;
  Rng rng_;
  ProtocolPolicy default_policy_;
  std::vector<EpisodeState> episode_states_;
  std::vector<double> route_shift_ms_;     // per-route drift offsets
  std::vector<SimTime> next_route_shift_;  // per-route next redraw time
  std::map<std::uint64_t, std::size_t> flow_pins_;
  std::uint64_t pin_epoch_ = 0;  // flows re-pin after each route shift
  FaultSpec fault_;
  LinkFaultPlan fault_plan_;
  Rng fault_rng_{0};  // replaced on install; untouched while plan empty
  LinkIntegrityStats integrity_;
  // Registry counters mirroring `integrity_` (shared across links via the
  // kind label; all no-op while obs is disabled).
  struct WireFaultObs {
    obs::Counter* corrupted = nullptr;
    obs::Counter* truncated = nullptr;
    obs::Counter* duplicated = nullptr;
    obs::Counter* reordered = nullptr;
    obs::Counter* flap_dropped = nullptr;
  };
  WireFaultObs fault_obs_;
};

}  // namespace debuglet::simnet
