#include "simnet/scenarios.hpp"

#include <map>
#include <stdexcept>

namespace debuglet::simnet {

namespace {

using net::Protocol;

constexpr topology::AsNumber kLondonAs = 100;

// Per-city forwarding mechanisms on the city -> London direction. The
// reverse direction is a clean single route (propagation + light jitter),
// so RTT differences are produced by forward-path treatment only — which is
// also what makes the unidirectional-measurement experiments meaningful.
struct CityCalibration {
  double prop_ms;            // one-way propagation per direction
  RouteSpec icmp;            // route 0
  bool icmp_priority;
  RouteSpec raw;             // route 1
  std::vector<RouteSpec> tcp;  // routes 2..
  double tcp_drop_multiplier;
  std::vector<RouteSpec> udp;  // routes after TCP's
  std::vector<EpisodeSpec> episodes;
  ShiftSpec shift;
};

const std::map<std::string, CityCalibration>& calibrations() {
  static const std::map<std::string, CityCalibration> kCal = [] {
    std::map<std::string, CityCalibration> m;

    // Bangalore: widest UDP spread (Fig. 3 — ~20+ ms, near-uniform); TCP
    // pinned to a distinctly slower route pair; slow 4-hour route drift.
    m["Bangalore"] = CityCalibration{
        /*prop_ms=*/72.0,
        /*icmp=*/{1.2, 3.4, 0.5}, /*icmp_priority=*/false,
        /*raw=*/{7.2, 2.3, 0.38},
        /*tcp=*/{{13.5, 4.9, 1.7}, {14.2, 4.9, 1.7}},
        /*tcp_drop_multiplier=*/1.0,
        /*udp=*/{{-8.2, 1.0, 0.21}, {-5.3, 1.0, 0.21}, {-2.5, 1.0, 0.21},
                 {0.4, 1.0, 0.21}, {3.2, 1.0, 0.21}, {6.1, 1.0, 0.21},
                 {9.0, 1.0, 0.21}, {11.8, 1.0, 0.21}},
        /*episodes=*/{},
        /*shift=*/{14400.0, 3.0}};

    // Frankfurt: ICMP rides a priority queue (lowest, tightest RTT); UDP
    // load-balances per packet over exactly 4 routes (the 4 clusters of
    // Fig. 2); a multi-hour elevation episode lifts UDP and raw IP only.
    m["Frankfurt"] = CityCalibration{
        /*prop_ms=*/5.7,
        /*icmp=*/{0.35, 0.5, 0.005}, /*icmp_priority=*/true,
        /*raw=*/{3.5, 0.5, 0.0},
        /*tcp=*/{{2.9, 1.15, 1.05}, {3.3, 1.15, 1.05}},
        /*tcp_drop_multiplier=*/1.0,
        /*udp=*/{{0.55, 0.3, 0.0}, {2.1, 0.3, 0.0}, {3.65, 0.3, 0.0},
                 {5.2, 0.3, 0.0}},
        /*episodes=*/{{"path-elevation", 10800.0, 25200.0, 0.9, 0.0,
                       {Protocol::kUdp, Protocol::kRawIp}}},
        /*shift=*/{}};

    // New York: UDP/TCP ride the faster (but congestion-lossy) routes, so
    // their RTT sits BELOW ICMP/raw (Fig. 1); congestion episodes drop
    // them — TCP deprioritized 3x (highest loss in Table I); 5 ms route
    // shifts appear as sudden steps.
    m["NewYork"] = CityCalibration{
        /*prop_ms=*/35.0,
        /*icmp=*/{5.9, 2.7, 0.22}, /*icmp_priority=*/false,
        /*raw=*/{6.3, 2.8, 0.25},
        /*tcp=*/{{1.0, 5.3, 0.3}, {1.7, 5.3, 0.3}},
        /*tcp_drop_multiplier=*/3.0,
        /*udp=*/{{2.2, 5.6, 0.3}, {3.7, 5.6, 0.3}, {5.2, 5.6, 0.3}},
        /*episodes=*/{{"congestion", 1800.0, 5400.0, 0.0, 21.0,
                       {Protocol::kUdp, Protocol::kTcp}}},
        /*shift=*/{5400.0, 5.0}};

    // San Francisco: a boringly stable path — every protocol tight, only
    // TCP sees (deprioritization) loss.
    m["SanFrancisco"] = CityCalibration{
        /*prop_ms=*/66.6,
        /*icmp=*/{1.2, 0.65, 0.02}, /*icmp_priority=*/false,
        /*raw=*/{1.7, 1.70, 0.03},
        /*tcp=*/{{1.0, 0.70, 1.5}},
        /*tcp_drop_multiplier=*/1.0,
        /*udp=*/{{1.15, 0.95, 0.0}, {1.65, 0.95, 0.0}},
        /*episodes=*/{},
        /*shift=*/{}};

    // Singapore: UDP spread across 5 well-separated routes; ICMP detours
    // over a longer stable route.
    m["Singapore"] = CityCalibration{
        /*prop_ms=*/86.4,
        /*icmp=*/{8.7, 2.9, 0.05}, /*icmp_priority=*/false,
        /*raw=*/{6.0, 4.55, 0.03},
        /*tcp=*/{{3.7, 4.25, 1.7}, {4.2, 4.25, 1.7}},
        /*tcp_drop_multiplier=*/1.0,
        /*udp=*/{{-11.2, 1.0, 0.08}, {-4.1, 1.0, 0.08}, {3.1, 1.0, 0.08},
                 {10.3, 1.0, 0.08}, {17.4, 1.0, 0.08}},
        /*episodes=*/{},
        /*shift=*/{}};

    // Sydney: long path, all protocols moderately noisy and lossy.
    m["Sydney"] = CityCalibration{
        /*prop_ms=*/135.9,
        /*icmp=*/{6.0, 4.85, 0.90}, /*icmp_priority=*/false,
        /*raw=*/{6.4, 4.85, 0.95},
        /*tcp=*/{{6.3, 4.85, 1.02}, {6.9, 4.85, 1.02}},
        /*tcp_drop_multiplier=*/1.0,
        /*udp=*/{{-5.0, 5.3, 0.45}, {-0.3, 5.3, 0.45}, {4.3, 5.3, 0.45},
                 {9.0, 5.3, 0.45}},
        /*episodes=*/{},
        /*shift=*/{14400.0, 3.0}};
    return m;
  }();
  return kCal;
}

LinkConfig forward_config(const CityCalibration& cal) {
  LinkConfig cfg;
  // +0.1 ms stands in for the stub segments between each endpoint host and
  // its border router (endpoint ASes add no transit in the link model).
  cfg.propagation_ms = cal.prop_ms + 0.1;
  cfg.routes.clear();
  cfg.routes.push_back(cal.icmp);                       // route 0
  cfg.routes.push_back(cal.raw);                        // route 1
  std::vector<std::size_t> tcp_routes, udp_routes;
  for (const RouteSpec& r : cal.tcp) {
    tcp_routes.push_back(cfg.routes.size());
    cfg.routes.push_back(r);
  }
  for (const RouteSpec& r : cal.udp) {
    udp_routes.push_back(cfg.routes.size());
    cfg.routes.push_back(r);
  }
  cfg.policies[Protocol::kIcmp] =
      ProtocolPolicy{SelectionPolicy::kFixed, {0}, 1.0, cal.icmp_priority};
  cfg.policies[Protocol::kRawIp] =
      ProtocolPolicy{SelectionPolicy::kFixed, {1}, 1.0, false};
  cfg.policies[Protocol::kTcp] = ProtocolPolicy{
      SelectionPolicy::kPerFlow, tcp_routes, cal.tcp_drop_multiplier, false};
  cfg.policies[Protocol::kUdp] =
      ProtocolPolicy{SelectionPolicy::kPerPacket, udp_routes, 1.0, false};
  cfg.episodes = cal.episodes;
  cfg.shift = cal.shift;
  return cfg;
}

LinkConfig reverse_config(const CityCalibration& cal) {
  LinkConfig cfg;
  cfg.propagation_ms = cal.prop_ms + 0.1;
  cfg.routes = {{0.0, 0.1, 0.02}};
  return cfg;
}

}  // namespace

const std::vector<std::string>& city_names() {
  static const std::vector<std::string> kNames = {
      "Bangalore", "Frankfurt", "NewYork", "SanFrancisco", "Singapore",
      "Sydney"};
  return kNames;
}

topology::AsNumber london_as() { return kLondonAs; }

topology::AsNumber city_as(const std::string& city) {
  const auto& names = city_names();
  for (std::size_t i = 0; i < names.size(); ++i)
    if (names[i] == city)
      return kLondonAs + 1 + static_cast<topology::AsNumber>(i);
  throw std::invalid_argument("unknown city: " + city);
}

PaperCityRow paper_table1(const std::string& city, net::Protocol protocol) {
  // Table I of the paper, verbatim (RTT ms mean/std; loss in per mille).
  static const std::map<std::string, std::map<Protocol, PaperCityRow>> kRows =
      {{"Bangalore",
        {{Protocol::kUdp, {146.01, 7.01, 0.23}},
         {Protocol::kTcp, {158.05, 5.27, 1.72}},
         {Protocol::kIcmp, {145.44, 3.89, 0.57}},
         {Protocol::kRawIp, {151.44, 2.87, 0.41}}}},
       {"Frankfurt",
        {{Protocol::kUdp, {14.75, 1.78, 0.00}},
         {Protocol::kTcp, {14.72, 1.22, 1.09}},
         {Protocol::kIcmp, {11.95, 0.51, 0.01}},
         {Protocol::kRawIp, {15.36, 0.55, 0.00}}}},
       {"NewYork",
        {{Protocol::kUdp, {73.94, 6.64, 5.59}},
         {Protocol::kTcp, {71.58, 6.12, 16.19}},
         {Protocol::kIcmp, {76.08, 3.98, 0.24}},
         {Protocol::kRawIp, {76.47, 4.02, 0.27}}}},
       {"SanFrancisco",
        {{Protocol::kUdp, {134.79, 1.00, 0.00}},
         {Protocol::kTcp, {134.42, 0.70, 1.56}},
         {Protocol::kIcmp, {134.62, 0.66, 0.02}},
         {Protocol::kRawIp, {135.09, 1.71, 0.03}}}},
       {"Singapore",
        {{Protocol::kUdp, {176.14, 10.04, 0.09}},
         {Protocol::kTcp, {176.95, 4.33, 1.74}},
         {Protocol::kIcmp, {181.74, 3.00, 0.06}},
         {Protocol::kRawIp, {178.98, 4.61, 0.03}}}},
       {"Sydney",
        {{Protocol::kUdp, {274.01, 7.79, 0.50}},
         {Protocol::kTcp, {278.60, 5.19, 1.09}},
         {Protocol::kIcmp, {277.99, 5.15, 0.96}},
         {Protocol::kRawIp, {278.44, 5.18, 1.01}}}}};
  return kRows.at(city).at(protocol);
}

Scenario build_city_scenario(std::uint64_t seed) {
  topology::Topology topo;
  if (auto s = topo.add_as(kLondonAs, "London"); !s)
    throw std::runtime_error(s.error_message());
  const auto& names = city_names();
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (auto s = topo.add_as(city_as(names[i]), names[i]); !s)
      throw std::runtime_error(s.error_message());
    const topology::InterfaceKey city_key{city_as(names[i]), 1};
    const topology::InterfaceKey london_key{
        kLondonAs, static_cast<topology::InterfaceId>(i + 1)};
    if (auto s = topo.add_link(city_key, london_key); !s)
      throw std::runtime_error(s.error_message());
  }

  Scenario out;
  out.queue = std::make_unique<EventQueue>();
  out.network = std::make_unique<SimulatedNetwork>(*out.queue, std::move(topo),
                                                   seed);
  out.ases.push_back(kLondonAs);
  for (std::size_t i = 0; i < names.size(); ++i) {
    const std::string& city = names[i];
    const CityCalibration& cal = calibrations().at(city);
    const topology::InterfaceKey city_key{city_as(city), 1};
    const topology::InterfaceKey london_key{
        kLondonAs, static_cast<topology::InterfaceId>(i + 1)};
    auto fwd = out.network->configure_link(city_key, london_key,
                                           forward_config(cal));
    if (!fwd) throw std::runtime_error(fwd.error_message());
    auto rev = out.network->configure_link(london_key, city_key,
                                           reverse_config(cal));
    if (!rev) throw std::runtime_error(rev.error_message());
    out.network->configure_transit(city_as(city), {0.05, 0.005, 0.0});
    out.ases.push_back(city_as(city));
  }
  out.network->configure_transit(kLondonAs, {0.05, 0.005, 0.0});
  return out;
}

topology::InterfaceKey chain_egress(std::size_t i) {
  return {static_cast<topology::AsNumber>(i + 1), 2};
}

topology::InterfaceKey chain_ingress(std::size_t i_plus_1) {
  return {static_cast<topology::AsNumber>(i_plus_1 + 1), 1};
}

Scenario build_chain_scenario(std::size_t as_count, std::uint64_t seed,
                              double hop_ms) {
  if (as_count < 2)
    throw std::invalid_argument("chain scenario needs at least 2 ASes");
  topology::Topology topo;
  for (std::size_t i = 0; i < as_count; ++i) {
    if (auto s = topo.add_as(static_cast<topology::AsNumber>(i + 1),
                             "AS" + std::to_string(i + 1));
        !s)
      throw std::runtime_error(s.error_message());
  }
  for (std::size_t i = 0; i + 1 < as_count; ++i) {
    if (auto s = topo.add_link(chain_egress(i), chain_ingress(i + 1)); !s)
      throw std::runtime_error(s.error_message());
  }

  Scenario out;
  out.queue = std::make_unique<EventQueue>();
  out.network = std::make_unique<SimulatedNetwork>(*out.queue, std::move(topo),
                                                   seed);
  LinkConfig cfg;
  cfg.propagation_ms = hop_ms;
  cfg.routes = {{0.0, 0.05, 0.0}};
  for (std::size_t i = 0; i + 1 < as_count; ++i) {
    auto s = out.network->configure_link_symmetric(chain_egress(i),
                                                   chain_ingress(i + 1), cfg);
    if (!s) throw std::runtime_error(s.error_message());
  }
  for (std::size_t i = 0; i < as_count; ++i) {
    out.network->configure_transit(static_cast<topology::AsNumber>(i + 1),
                                   {0.1, 0.01, 0.0});
    out.ases.push_back(static_cast<topology::AsNumber>(i + 1));
  }
  return out;
}

Scenario build_internet_scenario(std::size_t as_count, std::uint64_t seed,
                                 double hop_ms) {
  if (as_count < 3)
    throw std::invalid_argument("internet scenario needs at least 3 ASes");
  topology::Topology topo;
  for (std::size_t i = 0; i < as_count; ++i) {
    if (auto s = topo.add_as(static_cast<topology::AsNumber>(i + 1),
                             "AS" + std::to_string(i + 1));
        !s)
      throw std::runtime_error(s.error_message());
  }
  // Chain links AS_i#2 -> AS_{i+1}#1, plus the closing link AS_n#2 ->
  // AS_1#1: same interface convention as the chain (1 faces the previous
  // AS, 2 the next), so chain_egress/chain_ingress keys still apply.
  const topology::InterfaceKey close_egress{
      static_cast<topology::AsNumber>(as_count), 2};
  const topology::InterfaceKey close_ingress{1, 1};
  for (std::size_t i = 0; i + 1 < as_count; ++i) {
    if (auto s = topo.add_link(chain_egress(i), chain_ingress(i + 1)); !s)
      throw std::runtime_error(s.error_message());
  }
  if (auto s = topo.add_link(close_egress, close_ingress); !s)
    throw std::runtime_error(s.error_message());

  Scenario out;
  out.queue = std::make_unique<EventQueue>();
  out.network = std::make_unique<SimulatedNetwork>(*out.queue, std::move(topo),
                                                   seed);
  LinkConfig cfg;
  cfg.propagation_ms = hop_ms;
  cfg.routes = {{0.0, 0.05, 0.0}};
  for (std::size_t i = 0; i + 1 < as_count; ++i) {
    auto s = out.network->configure_link_symmetric(chain_egress(i),
                                                   chain_ingress(i + 1), cfg);
    if (!s) throw std::runtime_error(s.error_message());
  }
  if (auto s = out.network->configure_link_symmetric(close_egress,
                                                     close_ingress, cfg);
      !s)
    throw std::runtime_error(s.error_message());
  for (std::size_t i = 0; i < as_count; ++i) {
    out.network->configure_transit(static_cast<topology::AsNumber>(i + 1),
                                   {0.1, 0.01, 0.0});
    out.ases.push_back(static_cast<topology::AsNumber>(i + 1));
  }
  return out;
}

}  // namespace debuglet::simnet
