// Adversarial middleboxes (the DPI chaos layer).
//
// LinkFaultPlan damages the WIRE at random; a MiddleboxPlan models an AS
// that damages traffic ON PURPOSE. The paper's premise (§II) is that
// networks treat traffic differentially, and §VI-E assumes operators may
// actively hide faults from measurement infrastructure. Following the
// DPI-fingerprinting literature (PAPERS.md), the middlebox first
// CLASSIFIES each packet by port/protocol/payload heuristics, then applies
// a per-class policy:
//
//   * drop         — discard a fraction of the class;
//   * deprioritize — park the class in a slow queue (extra residence);
//   * throttle     — deterministic per-second packet budget, excess drops;
//   * mangle       — flip bits in the application payload (ambiguity
//                    resolution gone wrong, per the DPI paper).
//
// On top of the per-class policies sits FAULT HIDING: the plan can
// recognize known executor addresses and classic probe signatures and give
// that traffic CLEAN treatment while everything else suffers — the §VI-E
// attack. The counter-measurement lives in core/discrimination.hpp: twin
// probes that differ only in what the classifier thinks they are.
//
// The ADAPTIVE mode turns the static classifier into a learner (the arms
// race): the middlebox keeps an online frequency table over the signature
// features of traffic it classified as measurement — (src-port bucket,
// payload-prefix hash, size bucket), with pacing tracked per entry — and
// once a signature recurs past the learning horizon it is PROMOTED into
// the DPI verdict: any packet matching a promoted signature is treated as
// measurement traffic, whatever its ports say. Against a fault-hiding
// plan this means the adversary learns a repeated twin campaign and gives
// BOTH twins the clean ride, erasing the differential the detector keys
// on. Stateful flow tracking (per-5-tuple table with idle eviction and
// TCP stream byte counting) pins a flow's class at its first packet so
// verdicts are per-flow rather than per-packet.
//
// Determinism contract: classification is a pure function of the packet;
// every stochastic policy choice draws from the owning domain's middlebox
// RNG stream (forked from the scenario seed), in that lane's event order —
// equal-seed runs discriminate identically at any shard count, and an AS
// without a middlebox draws nothing. Learning and flow tracking are pure
// counting (zero RNG draws) over lane-owned state, so the adaptive mode is
// shard-invariant too and inert plans stay bit-identical to before.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <vector>

#include "net/packet.hpp"
#include "simnet/link_faults.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace debuglet::simnet {

/// What the DPI engine thinks a packet is. Coarse on purpose: real
/// classifiers bucket, they do not understand.
enum class TrafficClass : std::uint8_t {
  kMeasurement = 0,  // ICMP/raw-IP probes, measurement ports, padded probes
  kInteractive = 1,  // TCP on well-known service ports
  kBulk = 2,         // large payloads
  kOther = 3,        // everything the heuristics cannot place
};
inline constexpr std::size_t kTrafficClassCount = 4;

/// Stable label text ("measurement", "interactive", "bulk", "other").
const char* traffic_class_name(TrafficClass c);

/// The port/protocol/payload heuristics. ICMP and the paper's raw-IP
/// protocol, traceroute/Debuglet port ranges, and low-entropy padded
/// payloads read as measurement; well-known TCP services as interactive;
/// big payloads as bulk. A leading INT block (network metadata, not
/// application bytes) is skipped before payload inspection.
TrafficClass classify_packet(const net::Packet& packet);

/// What one middlebox does to one traffic class. All rates per mille;
/// a default-constructed policy is a no-op.
struct ClassPolicy {
  double drop_pm = 0.0;            // random discard chance
  double extra_delay_ms = 0.0;     // deprioritization: slow-queue residence
  double delay_jitter_ms = 0.0;    // jitter on the slow queue (|normal|)
  double mangle_pm = 0.0;          // payload bit-flip chance
  std::uint32_t mangle_max_bit_flips = 4;
  std::uint32_t throttle_pps = 0;  // 0 = unthrottled; else packets/second

  bool empty() const {
    return drop_pm <= 0.0 && extra_delay_ms <= 0.0 && mangle_pm <= 0.0 &&
           throttle_pps == 0;
  }
};

/// Ground-truth action tally of one middlebox — what the adversary
/// actually did, for tests and chaos traces to compare against what the
/// detector inferred. Mirrors LinkIntegrityStats for the wire layer.
struct MiddleboxStats {
  std::array<std::uint64_t, kTrafficClassCount> classified{};
  std::uint64_t dropped = 0;        // policy drops (not throttle)
  std::uint64_t deprioritized = 0;  // copies given extra residence
  std::uint64_t mangled = 0;        // copies with payload damage recorded
  std::uint64_t throttled = 0;      // drops from the per-second budget
  std::uint64_t exempted = 0;       // fault hiding: recognized, passed clean
  // Adaptive-mode ground truth (all zero when the mode is off).
  std::uint64_t signatures_learned = 0;   // sightings recorded by the learner
  std::uint64_t signatures_promoted = 0;  // promotions into the DPI verdict
  std::uint64_t adaptive_matched = 0;     // packets reclassified by a match
  std::uint64_t flows_tracked = 0;        // flow-table insertions
  std::uint64_t flows_evicted = 0;        // idle/capacity flow evictions

  std::uint64_t inspected() const {
    std::uint64_t n = 0;
    for (std::uint64_t c : classified) n += c;
    return n;
  }
  std::uint64_t actions() const {
    return dropped + deprioritized + mangled + throttled;
  }
};

/// Knobs of the learning (adaptive) DPI mode. Disabled by default: a plan
/// without `enabled` behaves exactly as the static model, draws nothing
/// extra, and keeps no state.
struct AdaptiveConfig {
  bool enabled = false;
  /// The learning horizon: sightings of one signature before it is
  /// promoted into the DPI verdict.
  std::uint32_t promote_after = 8;
  /// Signatures idle longer than this are forgotten (promoted or not).
  SimDuration signature_ttl = duration::seconds(30);
  /// Capacity bound of the signature table; the stalest entry is evicted
  /// deterministically when full.
  std::size_t max_signatures = 256;
  /// Flows idle longer than this are evicted from the flow table.
  SimDuration flow_idle_timeout = duration::seconds(10);
  /// Capacity bound of the flow table (stalest-first eviction).
  std::size_t max_flows = 1024;
};

/// The DPI schedule of one AS. Composable with HostFaultPlan and
/// LinkFaultPlan chaos; an empty plan costs one branch on the forwarding
/// path. Builder shorthands chain, mirroring LinkFaultPlan.
class MiddleboxPlan {
 public:
  /// Sets the policy of one class, of every class, or of every class
  /// except measurement (the classic discriminator: probes ride clean).
  MiddleboxPlan& policy(TrafficClass c, const ClassPolicy& p);
  MiddleboxPlan& policy_all(const ClassPolicy& p);
  MiddleboxPlan& policy_except_measurement(const ClassPolicy& p);

  /// Fault hiding (§VI-E): packets to/from a recognized address pass
  /// clean, whatever their class.
  MiddleboxPlan& recognize(net::Ipv4Address address);
  /// Fault hiding: anything classified as measurement passes clean.
  MiddleboxPlan& recognize_probe_signatures(bool on = true);

  /// Scopes the whole plan to a [start, end) window (default: always).
  MiddleboxPlan& window(FaultWindow w);

  /// Turns on the learning mode (signature promotion + stateful flows).
  MiddleboxPlan& adaptive(const AdaptiveConfig& cfg);

  bool empty() const;
  const AdaptiveConfig& adaptive_config() const { return adaptive_; }
  bool adaptive_enabled() const { return adaptive_.enabled; }
  /// True when the plan treats recognized traffic differently — i.e. it
  /// is hiding something.
  bool hiding() const {
    return !recognized_.empty() || recognize_signatures_;
  }
  const ClassPolicy& policy_for(TrafficClass c) const {
    return policies_[static_cast<std::size_t>(c)];
  }
  bool recognizes(const net::Packet& packet, TrafficClass cls) const;
  const FaultWindow& active_window() const { return window_; }

 private:
  std::array<ClassPolicy, kTrafficClassCount> policies_{};
  std::vector<net::Ipv4Address> recognized_;
  bool recognize_signatures_ = false;
  FaultWindow window_ = kAlways;
  AdaptiveConfig adaptive_;
};

/// One learned signature: how often it was sighted as measurement traffic
/// and when, plus the pacing buckets observed (telemetry, not part of the
/// matching key — twins of one pair inherently pace differently).
struct SignatureState {
  std::uint32_t sightings = 0;
  bool promoted = false;
  SimTime last_seen = 0;
  std::uint8_t pacing_min = 0xFF;  // log2-ms buckets observed
  std::uint8_t pacing_max = 0;
};

/// One tracked flow (stateful DPI): class pinned at the first packet,
/// per-direction-agnostic byte tally, TCP stream bytes counted separately.
struct FlowState {
  TrafficClass cls = TrafficClass::kOther;
  SimTime first_seen = 0;
  SimTime last_seen = 0;
  std::uint64_t packets = 0;
  std::uint64_t payload_bytes = 0;
  std::uint64_t tcp_stream_bytes = 0;  // TCP payload bytes only
};

/// Per-domain middlebox bookkeeping: throttle windows, and — in adaptive
/// mode — the signature frequency table, the flow table, and per-source
/// pacing anchors. Owned by the domain's DomainState, touched only by its
/// lane; ordered maps keep every sweep and eviction deterministic.
struct MiddleboxRuntime {
  std::int64_t window_second = -1;
  std::array<std::uint32_t, kTrafficClassCount> sent_in_window{};
  /// Signature key -> learning state (adaptive mode only).
  std::map<std::uint64_t, SignatureState> signatures;
  /// 5-tuple hash -> flow state (adaptive mode only).
  std::map<std::uint64_t, FlowState> flows;
  /// Source address -> last time a measurement-class packet from it was
  /// seen (the pacing-gap anchor).
  std::map<std::uint32_t, SimTime> last_measurement_at;
};

/// The signature key of one packet under the adaptive feature model:
/// (src-port bucket, payload-prefix FNV hash after the INT skip, size
/// bucket) packed into one word. Pure function of the packet.
std::uint64_t adaptive_signature_of(const net::Packet& packet);

/// The 5-tuple flow key used by the stateful flow table (FNV-1a over
/// protocol, addresses and ports; direction-sensitive).
std::uint64_t middlebox_flow_key(const net::Packet& packet);

/// The decision the middlebox took for one packet copy.
struct MiddleboxVerdict {
  TrafficClass cls = TrafficClass::kOther;
  bool inspected = false;  // false outside the plan's window
  bool exempted = false;   // recognized (fault hiding), passed clean
  bool dropped = false;    // policy or throttle discard
  bool throttled = false;  // the drop came from the per-second budget
  double extra_delay_ms = 0.0;
  bool mangled = false;
  WireDamage damage;  // recorded payload damage when mangled
  // Adaptive mode: the class came from a promoted signature or a pinned
  // flow rather than the static heuristics.
  bool adaptive_matched = false;
  bool promoted_signature = false;  // this packet crossed the horizon
  std::uint32_t flows_evicted = 0;  // evictions performed on this call
};

/// Runs one packet copy through the plan. Draws (in fixed order) from
/// `rng` only for the policies actually configured; updates `runtime` and
/// `stats` in place. `now` gates the plan's window and the throttle
/// second.
MiddleboxVerdict apply_middlebox(const MiddleboxPlan& plan,
                                 const net::Packet& packet, SimTime now,
                                 Rng& rng, MiddleboxRuntime& runtime,
                                 MiddleboxStats& stats);

}  // namespace debuglet::simnet
