#include "simnet/link_model.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace debuglet::simnet {

LinkModel::LinkModel(LinkConfig config, Rng rng)
    : config_(std::move(config)), rng_(rng) {
  if (config_.routes.empty())
    throw std::invalid_argument("LinkModel: at least one route required");
  for (const auto& [proto, policy] : config_.policies) {
    if (policy.routes.empty())
      throw std::invalid_argument("LinkModel: policy with no routes for " +
                                  net::protocol_name(proto));
    for (std::size_t r : policy.routes)
      if (r >= config_.routes.size())
        throw std::invalid_argument("LinkModel: route index out of range");
  }
  episode_states_.resize(config_.episodes.size());
  for (std::size_t i = 0; i < config_.episodes.size(); ++i) {
    const EpisodeSpec& ep = config_.episodes[i];
    if (ep.on_mean_s <= 0.0) {
      episode_states_[i].next_toggle =
          std::numeric_limits<SimTime>::max();  // disabled
      continue;
    }
    // Start OFF; first onset after an exponential gap.
    episode_states_[i].on = false;
    episode_states_[i].next_toggle = static_cast<SimTime>(
        rng_.exponential(ep.off_mean_s) * 1e9);
  }
  route_shift_ms_.assign(config_.routes.size(), 0.0);
  next_route_shift_.assign(config_.routes.size(),
                           std::numeric_limits<SimTime>::max());
  if (config_.shift.period_mean_s > 0.0) {
    for (auto& next : next_route_shift_)
      next = static_cast<SimTime>(
          rng_.exponential(config_.shift.period_mean_s) * 1e9);
  }
}

void LinkModel::install_fault_plan(LinkFaultPlan plan, Rng rng) {
  fault_plan_ = std::move(plan);
  fault_rng_ = rng;
  // Cache the counters on install, not construction: links without a plan
  // never touch the registry, and installs happen inside whatever scoped
  // registry the scenario runs under.
  obs::MetricsRegistry& reg = obs::registry();
  fault_obs_.corrupted =
      &reg.counter("simnet.wire_faults", {{"kind", "corrupt"}});
  fault_obs_.truncated =
      &reg.counter("simnet.wire_faults", {{"kind", "truncate"}});
  fault_obs_.duplicated =
      &reg.counter("simnet.wire_faults", {{"kind", "duplicate"}});
  fault_obs_.reordered =
      &reg.counter("simnet.wire_faults", {{"kind", "reorder"}});
  fault_obs_.flap_dropped =
      &reg.counter("simnet.wire_faults", {{"kind", "flap_drop"}});
}

void LinkModel::clear_fault_plan() { fault_plan_ = LinkFaultPlan{}; }

const ProtocolPolicy& LinkModel::policy_for(net::Protocol p) const {
  auto it = config_.policies.find(p);
  return it != config_.policies.end() ? it->second : default_policy_;
}

void LinkModel::advance_episodes(SimTime now) {
  for (std::size_t i = 0; i < episode_states_.size(); ++i) {
    EpisodeState& st = episode_states_[i];
    const EpisodeSpec& ep = config_.episodes[i];
    while (st.next_toggle <= now) {
      st.on = !st.on;
      const double mean = st.on ? ep.on_mean_s : ep.off_mean_s;
      st.next_toggle += static_cast<SimTime>(
          std::max(1e-3, rng_.exponential(std::max(mean, 1e-6))) * 1e9);
    }
  }
}

std::uint32_t LinkModel::active_episodes(SimTime now) {
  advance_episodes(now);
  std::uint32_t on = 0;
  for (const EpisodeState& st : episode_states_)
    if (st.on) ++on;
  return on;
}

void LinkModel::advance_shift(SimTime now) {
  for (std::size_t r = 0; r < next_route_shift_.size(); ++r) {
    while (next_route_shift_[r] <= now) {
      route_shift_ms_[r] = rng_.uniform(-config_.shift.amplitude_ms,
                                        config_.shift.amplitude_ms);
      next_route_shift_[r] += static_cast<SimTime>(
          std::max(1e-3, rng_.exponential(config_.shift.period_mean_s)) * 1e9);
      // Route change: pinned flows re-hash onto possibly different members.
      ++pin_epoch_;
      flow_pins_.clear();
    }
  }
}

std::size_t LinkModel::select_route(const ProtocolPolicy& policy,
                                    std::uint64_t flow_hash) {
  switch (policy.selection) {
    case SelectionPolicy::kFixed:
      return policy.routes.front();
    case SelectionPolicy::kPerPacket:
      return policy.routes[rng_.index(policy.routes.size())];
    case SelectionPolicy::kPerFlow: {
      auto [it, inserted] = flow_pins_.try_emplace(flow_hash, 0);
      if (inserted) {
        // Deterministic pin: hash the flow with the current epoch.
        const std::uint64_t mix =
            (flow_hash ^ (pin_epoch_ * 0x9E3779B97F4A7C15ULL)) *
            0xBF58476D1CE4E5B9ULL;
        it->second = policy.routes[(mix >> 33) % policy.routes.size()];
      }
      return it->second;
    }
  }
  return policy.routes.front();
}

TraverseOutcome LinkModel::traverse(net::Protocol protocol,
                                    std::uint64_t flow_hash, SimTime now,
                                    net::Ipv4Address source,
                                    net::Ipv4Address destination,
                                    std::uint32_t size_bytes) {
  advance_episodes(now);
  advance_shift(now);
  const ProtocolPolicy& policy = policy_for(protocol);
  const std::size_t route_idx = select_route(policy, flow_hash);
  const RouteSpec& route = config_.routes[route_idx];

  // §VI-E fault hiding: the operator treats traffic involving listed
  // addresses as if it rode the priority queue.
  const bool covertly_prioritized =
      !config_.prioritized_addresses.empty() &&
      (config_.prioritized_addresses.contains(source) ||
       config_.prioritized_addresses.contains(destination));
  const bool priority = policy.priority || covertly_prioritized;

  double loss_pm = route.loss_pm;
  double delay_ms = config_.propagation_ms + route.offset_ms;
  if (config_.bandwidth_bps > 0.0 && size_bytes > 0)
    delay_ms += 1000.0 * 8.0 * size_bytes / config_.bandwidth_bps;
  if (!priority) delay_ms += route_shift_ms_[route_idx];

  for (std::size_t i = 0; i < episode_states_.size(); ++i) {
    if (!episode_states_[i].on) continue;
    const EpisodeSpec& ep = config_.episodes[i];
    const bool affected = ep.affects.empty() || ep.affects.contains(protocol);
    if (!affected) continue;
    if (!priority) {
      delay_ms += ep.extra_delay_ms;
      loss_pm += ep.extra_loss_pm * policy.drop_multiplier;
    }
  }

  if (fault_.active_at(now)) {
    delay_ms += fault_.extra_delay_ms;
    loss_pm += fault_.extra_loss_pm;
  }

  TraverseOutcome out;
  out.route = route_idx;
  if (rng_.chance(loss_pm / 1000.0)) {
    out.dropped = true;
    return out;
  }
  if (route.jitter_ms > 0.0) delay_ms += rng_.normal(0.0, route.jitter_ms);
  // Fault-plan copies only ever add delay on top of the primary, so
  // clamping here bounds every copy from below by the floor.
  out.delay = duration::from_ms(std::max(delay_ms, floor_ms()));
  out.copies.push_back(DeliveryCopy{out.delay, route_idx, false, false, {}});
  if (!fault_plan_.empty()) apply_fault_plan(out, now, size_bytes);
  return out;
}

void LinkModel::apply_fault_plan(TraverseOutcome& out, SimTime now,
                                 std::uint32_t size_bytes) {
  // A flap outranks everything: the direction is dead, nothing crosses.
  if (fault_plan_.flapped_at(now)) {
    ++integrity_.flap_dropped;
    fault_obs_.flap_dropped->add();
    out.copies.clear();
    out.dropped = true;
    out.delay = 0;
    return;
  }

  // Duplication first (per packet): extra copies then share the per-copy
  // damage draws below, so a duplicated frame can arrive clean while its
  // twin arrives corrupted — exactly the case dedup must survive.
  const DuplicateSpec& dup = fault_plan_.duplication();
  if (dup.probability_pm > 0.0 && dup.window.active_at(now) &&
      fault_rng_.chance(dup.probability_pm / 1000.0)) {
    const std::uint32_t extras =
        1 + static_cast<std::uint32_t>(fault_rng_.next_below(dup.max_copies));
    const DeliveryCopy original = out.copies.front();
    for (std::uint32_t i = 0; i < extras; ++i) {
      DeliveryCopy copy = original;
      copy.duplicate = true;
      copy.delay += duration::from_ms(
          fault_rng_.uniform(dup.extra_delay_min_ms, dup.extra_delay_max_ms));
      out.copies.push_back(copy);
      ++integrity_.duplicated;
      fault_obs_.duplicated->add();
    }
  }

  const ReorderSpec& reorder = fault_plan_.reordering();
  const CorruptSpec& corrupt = fault_plan_.corruption();
  const TruncateSpec& truncate = fault_plan_.truncation();
  for (DeliveryCopy& copy : out.copies) {
    if (reorder.probability_pm > 0.0 && reorder.window.active_at(now) &&
        fault_rng_.chance(reorder.probability_pm / 1000.0)) {
      copy.delay += duration::from_ms(
          fault_rng_.uniform(0.0, reorder.max_extra_delay_ms));
      copy.reordered = true;
      ++integrity_.reordered;
      fault_obs_.reordered->add();
    }
    if (corrupt.probability_pm > 0.0 && corrupt.window.active_at(now) &&
        fault_rng_.chance(corrupt.probability_pm / 1000.0)) {
      copy.damage.kind = WireDamage::Kind::kCorrupt;
      copy.damage.bit_flips =
          1 +
          static_cast<std::uint32_t>(fault_rng_.next_below(
              corrupt.max_bit_flips));
      copy.damage.seed = fault_rng_.next_u64();
      ++integrity_.corrupted;
      fault_obs_.corrupted->add();
    }
    // One damage kind per copy: truncation only hits still-intact copies
    // (WireDamage carries a single kind; a chopped frame is damaged enough).
    if (copy.damage.kind == WireDamage::Kind::kNone &&
        truncate.probability_pm > 0.0 && truncate.window.active_at(now) &&
        size_bytes >= 2 &&
        fault_rng_.chance(truncate.probability_pm / 1000.0)) {
      copy.damage.kind = WireDamage::Kind::kTruncate;
      copy.damage.truncate_to = static_cast<std::uint32_t>(
          1 + fault_rng_.next_below(size_bytes - 1));
      ++integrity_.truncated;
      fault_obs_.truncated->add();
    }
  }

  // Keep the pre-fault-layer summary fields in sync with the primary copy.
  out.dropped = out.copies.empty();
  out.delay = out.dropped ? 0 : out.copies.front().delay;
}

double LinkModel::floor_ms() const {
  return std::max(config_.propagation_ms * 0.5, 1e-3);
}

double LinkModel::expected_delay_ms(net::Protocol protocol,
                                    SimTime now) const {
  const ProtocolPolicy& policy = policy_for(protocol);
  double mean_offset = 0.0;
  for (std::size_t r : policy.routes) {
    mean_offset += config_.routes[r].offset_ms;
    if (!policy.priority) mean_offset += route_shift_ms_[r];
  }
  mean_offset /= static_cast<double>(policy.routes.size());
  double delay_ms = config_.propagation_ms + mean_offset;
  for (std::size_t i = 0; i < episode_states_.size(); ++i) {
    if (!episode_states_[i].on) continue;
    const EpisodeSpec& ep = config_.episodes[i];
    const bool affected = ep.affects.empty() || ep.affects.contains(protocol);
    if (affected && !policy.priority) delay_ms += ep.extra_delay_ms;
  }
  if (fault_.active_at(now)) delay_ms += fault_.extra_delay_ms;
  return delay_ms;
}

}  // namespace debuglet::simnet
