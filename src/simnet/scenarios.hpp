// Ready-made simulation scenarios.
//
// build_city_scenario() reconstructs the paper's §II measurement world:
// London plus six remote sites, each pair joined by an inter-domain path
// whose forwarding mechanisms (route sets, per-protocol selection,
// congestion and elevation episodes, route-shift drift) are calibrated so
// the four probe protocols reproduce Table I's RTT/loss profile and the
// qualitative structure of Figures 1–3.
//
// build_chain_scenario() builds an N-AS linear topology with uniform mild
// links — the substrate for fault-localization experiments (§IV-B, §VI-D).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "simnet/network.hpp"

namespace debuglet::simnet {

/// A self-contained simulation world (queue + network + AS bookkeeping).
struct Scenario {
  std::unique_ptr<EventQueue> queue;
  std::unique_ptr<SimulatedNetwork> network;
  /// Scenario-defined AS ordering: cities (London first) or chain order.
  std::vector<topology::AsNumber> ases;
};

/// Remote city names, in Table I's row order.
const std::vector<std::string>& city_names();

/// AS number hosting London (the probe destination in §II).
topology::AsNumber london_as();

/// AS number hosting a remote city (Table I row).
topology::AsNumber city_as(const std::string& city);

/// Table I's published values, for paper-vs-measured reporting.
struct PaperCityRow {
  double mean_ms = 0.0;
  double std_ms = 0.0;
  double loss_pm = 0.0;
};
PaperCityRow paper_table1(const std::string& city, net::Protocol protocol);

/// Builds the calibrated 7-city world.
Scenario build_city_scenario(std::uint64_t seed);

/// Builds a linear chain AS1 - AS2 - ... - ASn with uniform links
/// (propagation `hop_ms` per inter-domain hop, light jitter, no loss).
Scenario build_chain_scenario(std::size_t as_count, std::uint64_t seed,
                              double hop_ms = 5.0);

/// The interface key of hop `i` (0-based) facing hop `i+1` in a chain
/// scenario, and the reverse-facing key of hop `i+1`.
topology::InterfaceKey chain_egress(std::size_t i);
topology::InterfaceKey chain_ingress(std::size_t i_plus_1);

/// Builds an AS1..ASn ring (the chain closed back on itself) with uniform
/// mild links — the scale substrate for the sharded event-queue bench and
/// stress tests. Every AS is its own shard domain, so traffic spread
/// around the ring exercises as many lanes as the queue is given.
Scenario build_internet_scenario(std::size_t as_count, std::uint64_t seed,
                                 double hop_ms = 5.0);

}  // namespace debuglet::simnet
