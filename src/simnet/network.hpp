// The simulated inter-domain network.
//
// Combines a Topology (AS graph), per-directed-link LinkModels, per-AS
// transit delays, and attached Hosts into a packet-level simulator driven
// by an EventQueue. Real on-wire bytes (net::build_probe output) go in;
// parsed packets come out at the destination host after the accumulated
// per-link treatment — or never, if any link dropped the packet.
#pragma once

#include <array>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "net/packet.hpp"
#include "obs/metrics.hpp"
#include "simnet/event_queue.hpp"
#include "simnet/host_faults.hpp"
#include "simnet/link_model.hpp"
#include "telemetry/hop_program.hpp"
#include "telemetry/int_header.hpp"
#include "topology/topology.hpp"

namespace debuglet::simnet {

/// Delivery receipt passed to hosts alongside the decoded packet.
struct Delivery {
  net::Packet packet;
  SimTime sent_at = 0;
  SimTime received_at = 0;
  topology::AsPath path;  // the path the packet actually took
};

/// Anything that can be attached to the network at an address.
class Host {
 public:
  virtual ~Host() = default;
  /// Called when a packet addressed to this host arrives.
  virtual void on_packet(const Delivery& delivery) = 0;
};

/// Per-AS internal forwarding characteristics (border-to-border transit).
struct TransitConfig {
  double delay_ms = 0.2;
  double jitter_ms = 0.02;
  double loss_pm = 0.0;
};

/// Intra-AS stub between a host and its border router. Executors at border
/// routers have a zero stub; hosts placed at arbitrary points inside an AS
/// (ablation A1, paper §VI-G) pay it on every send and every delivery.
struct AccessConfig {
  double delay_ms = 0.0;
  double jitter_ms = 0.0;
};

/// How an AS's border routers answer expired-TTL packets — the knobs the
/// paper's §II names as traceroute's limitations: "responding with ICMP
/// TTL exceeded message is disabled or rate-limited on many routers", and
/// replies are generated on the SLOW PATH while data rides the fast path.
struct IcmpReplyPolicy {
  bool time_exceeded_enabled = true;
  double slow_path_ms = 4.0;         // extra control-plane processing
  double slow_path_jitter_ms = 2.0;
  std::uint32_t rate_limit_per_s = 0;  // 0 = unlimited
};

/// Aggregate send/drop accounting, per protocol.
struct NetworkStats {
  std::map<net::Protocol, std::uint64_t> sent;
  std::map<net::Protocol, std::uint64_t> delivered;
  std::map<net::Protocol, std::uint64_t> dropped;
};

/// The simulator. Construction order: build the Topology, create the
/// network, configure links and transit, attach hosts, then send.
class SimulatedNetwork {
 public:
  SimulatedNetwork(EventQueue& queue, topology::Topology topology,
                   std::uint64_t seed);

  const topology::Topology& topology() const { return topology_; }
  EventQueue& queue() { return queue_; }
  SimTime now() const { return queue_.now(); }

  /// Configures one direction of an inter-domain link (from -> to). Both
  /// keys must be the two ends of an existing link.
  Status configure_link(topology::InterfaceKey from, topology::InterfaceKey to,
                        LinkConfig config);

  /// Configures both directions with the same config.
  Status configure_link_symmetric(topology::InterfaceKey a,
                                  topology::InterfaceKey b, LinkConfig config);

  /// Sets the internal transit behaviour of an AS.
  void configure_transit(topology::AsNumber asn, TransitConfig config);

  /// Sets how an AS's border routers answer TTL expiries.
  void configure_icmp_policy(topology::AsNumber asn, IcmpReplyPolicy policy);

  /// Attaches a host at an explicit address. Host addresses inside an AS
  /// use the form 10.<asn_hi>.<asn_lo>.<200+n>; executor hosts attach at
  /// their border-interface address (10.<asn_hi>.<asn_lo>.<intf>).
  Status attach_host(net::Ipv4Address address, Host* host,
                     AccessConfig access = {});
  void detach_host(net::Ipv4Address address);

  /// A fresh host address within an AS (10.x.y.200, .201, ...).
  net::Ipv4Address allocate_host_address(topology::AsNumber asn);

  /// The AS an address belongs to (addresses encode the AS number).
  topology::AsNumber as_of(net::Ipv4Address address) const;

  /// Sends raw wire bytes originating at `from_address`. The packet's IP
  /// source must equal `from_address`. Fails on malformed packets, unknown
  /// destinations, or unconfigured links; transmission itself never fails —
  /// losses happen silently in the link models.
  Status send(net::Ipv4Address from_address, Bytes wire);

  /// Pins the path used between two ASes (both directions must be pinned
  /// separately; unpinned pairs use the topology's shortest path).
  void pin_path(topology::AsNumber src, topology::AsNumber dst,
                topology::AsPath path);

  /// Injects a fault into one direction of a link. The link must have been
  /// configured first.
  Status inject_fault(topology::InterfaceKey from, topology::InterfaceKey to,
                      const FaultSpec& fault);
  Status clear_fault(topology::InterfaceKey from, topology::InterfaceKey to);

  /// Installs (replaces) a wire-fault schedule on one direction of a
  /// configured link. The plan's RNG derives from the network seed and the
  /// link identity, so equal-seed scenarios damage identically regardless
  /// of install order — `--check-determinism` holds under link chaos.
  Status install_link_faults(topology::InterfaceKey from,
                             topology::InterfaceKey to, LinkFaultPlan plan);
  Status clear_link_faults(topology::InterfaceKey from,
                           topology::InterfaceKey to);

  /// Wire-fault totals injected so far on one direction (zeroes when the
  /// link is unconfigured) — per-segment delivery-integrity evidence for
  /// the localizer.
  LinkIntegrityStats link_integrity(topology::InterfaceKey from,
                                    topology::InterfaceKey to) const;

  /// Installs a node-level fault schedule for the host at `address`
  /// (replacing any previous plan). The address's AS must exist; the host
  /// itself need not be attached yet — plans outlive attach/detach cycles.
  Status install_host_faults(net::Ipv4Address address, HostFaultPlan plan);
  /// Convenience: faults the executor host at a border interface.
  Status install_host_faults(topology::InterfaceKey key, HostFaultPlan plan);
  void clear_host_faults(net::Ipv4Address address);

  /// The resolved host-fault state of an address at time `t` (kNone when
  /// no plan is installed) — ground truth for tests and schedulers.
  HostFaultState host_fault_state(net::Ipv4Address address, SimTime t) const;

  /// In-band telemetry (INT). When enabled, UDP and raw-IP packets whose
  /// payload begins with a valid telemetry::IntHeader get one HopRecord
  /// appended per inter-domain link crossed (at the terminating AS's
  /// ingress border router). Off by default; when off the forwarding path
  /// pays exactly one branch and the RNG draw order is unchanged either
  /// way. ICMP/TCP packets never carry INT: their transport checksums
  /// cover the payload, and a forwarding device must not rewrite them.
  void set_int_enabled(bool on) { int_enabled_ = on; }
  bool int_enabled() const { return int_enabled_; }

  /// Installs (replaces) the every-router hop program: a validated DVM
  /// mini-module run once per traversed device for INT packets that set
  /// the hop-program flag (paper §VI-G's every-router placement,
  /// TPP-style). Validation and translation happen here, once; each hop
  /// pays only a fresh fuel-capped execution.
  Status install_hop_program(vm::Module module,
                             telemetry::HopProgramLimits limits = {});
  void clear_hop_program() { hop_program_.reset(); }
  bool has_hop_program() const { return hop_program_ != nullptr; }

  /// Ground-truth expected one-way delay for a protocol on a path now.
  Result<double> expected_path_delay_ms(const topology::AsPath& path,
                                        net::Protocol protocol) const;

  const NetworkStats& stats() const { return stats_; }
  void reset_stats() { stats_ = NetworkStats{}; }

  /// The link model for a direction (for tests; null if unconfigured).
  LinkModel* link_model(topology::InterfaceKey from, topology::InterfaceKey to);

 private:
  using DirectedKey = std::pair<topology::InterfaceKey, topology::InterfaceKey>;
  Result<topology::AsPath> resolve_path(topology::AsNumber src,
                                        topology::AsNumber dst) const;
  void expire_with_time_exceeded(const net::Packet& packet,
                                 const topology::PathHop& at,
                                 topology::InterfaceKey router,
                                 double forward_delay_ms);

  /// Raw per-link observations collected during the path walk while INT
  /// is active; turned into HopRecords once the copy survives to
  /// delivery (timestamps need the transit delays drawn after the link
  /// loop, so records are materialized late).
  struct IntCrossing {
    double link_delay_ms = 0.0;    // this copy's crossing delay
    std::uint32_t queue_depth = 0; // active episodes on the link
    std::uint32_t wire_faults = 0; // link integrity total so far
  };
  /// One in-flight copy of a frame during the path walk: where it is,
  /// what it has accumulated, and how it has been damaged so far.
  struct TransitCopy {
    std::size_t next_link = 0;
    double delay_ms = 0.0;
    std::uint8_t ttl = 0;
    std::vector<WireDamage> damages;
    std::vector<IntCrossing> crossings;  // populated only while INT active
  };
  void schedule_delivery(const net::Packet& packet, const Bytes& wire,
                         const std::vector<WireDamage>& damages,
                         const topology::AsPath& path, SimTime sent_at,
                         double delay_ms);
  /// Builds this copy's INT record stack (plus optional hop-program runs)
  /// and rewrites packet payload + wire bytes accordingly.
  void apply_int_records(net::Packet& packet, Bytes& wire,
                         const telemetry::IntHeader& prototype,
                         const std::vector<IntCrossing>& crossings,
                         const std::vector<double>& transit_ms,
                         const topology::AsPath& path, SimTime sent_at,
                         double pre_wire_ms);

  EventQueue& queue_;
  topology::Topology topology_;
  Rng rng_;
  const std::uint64_t seed_;  // scenario seed; link-fault RNGs derive here
  std::map<DirectedKey, std::unique_ptr<LinkModel>> links_;
  std::map<topology::AsNumber, TransitConfig> transit_;
  std::map<topology::AsNumber, IcmpReplyPolicy> icmp_policies_;
  struct RateLimiterState {
    std::int64_t window_second = -1;
    std::uint32_t sent_in_window = 0;
  };
  std::map<topology::AsNumber, RateLimiterState> icmp_rate_;
  struct AttachedHost {
    Host* host = nullptr;
    AccessConfig access;
  };
  std::map<net::Ipv4Address, AttachedHost> hosts_;
  std::map<net::Ipv4Address, HostFaultPlan> host_faults_;
  std::map<topology::AsNumber, std::uint8_t> next_host_octet_;
  std::map<std::pair<topology::AsNumber, topology::AsNumber>, topology::AsPath>
      pinned_paths_;
  mutable std::map<std::pair<topology::AsNumber, topology::AsNumber>,
                   topology::AsPath>
      path_cache_;
  NetworkStats stats_;
  // Observability handles, cached per protocol at construction (the obs
  // registry owns them; all record calls no-op while obs is disabled).
  /// Dense index for per-protocol metric arrays (Protocol values are
  /// sparse wire numbers; the hot path must not pay a map lookup).
  static constexpr std::size_t proto_index(net::Protocol p) {
    switch (p) {
      case net::Protocol::kIcmp: return 0;
      case net::Protocol::kTcp: return 1;
      case net::Protocol::kUdp: return 2;
      case net::Protocol::kRawIp: return 3;
    }
    return 0;
  }
  struct ObsHandles {
    std::array<obs::Counter*, 4> sent{};
    std::array<obs::Counter*, 4> delivered{};
    std::array<obs::Counter*, 4> dropped{};
    obs::Histogram* link_delay_ms = nullptr;
    obs::Histogram* path_links = nullptr;
    obs::Counter* host_fault_egress_drops = nullptr;
    obs::Counter* host_fault_ingress_drops = nullptr;
    obs::Counter* ttl_expired = nullptr;
    obs::Counter* int_pushes = nullptr;
    obs::Counter* int_truncations = nullptr;
    obs::Counter* hop_program_runs = nullptr;
    obs::Counter* hop_program_traps = nullptr;
  };
  ObsHandles obs_;
  bool int_enabled_ = false;
  std::unique_ptr<telemetry::HopProgramRuntime> hop_program_;
};

/// Hashes a parsed packet's flow identity (5-tuple; protocol-dependent).
std::uint64_t flow_hash_of(const net::Packet& packet);

}  // namespace debuglet::simnet
