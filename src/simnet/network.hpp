// The simulated inter-domain network.
//
// Combines a Topology (AS graph), per-directed-link LinkModels, per-AS
// transit delays, and attached Hosts into a packet-level simulator driven
// by an EventQueue. Real on-wire bytes (net::build_probe output) go in;
// parsed packets come out at the destination host after the accumulated
// per-link treatment — or never, if any link dropped the packet.
//
// Sharding model (docs/SIMNET.md): every piece of mutable simulation state
// belongs to a DOMAIN — an AS number for data-plane state (link models,
// transit RNGs, hosts living at 10.x.y.200+ addresses) or the control
// domain for everything else (executors at border-interface addresses, the
// chain, the main thread). A packet is forwarded hop by hop: each link
// crossing is its own event, homed on the ingress AS's domain, so a
// domain's links, RNG streams and counters are only ever touched by the
// one event-queue lane that owns the domain. That is what lets the event
// queue run lanes in parallel without locks on the forwarding path, and —
// because all randomness is drawn from per-domain streams in per-domain
// event order — what keeps traces bit-identical at any shard count.
#pragma once

#include <array>
#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "net/packet.hpp"
#include "obs/metrics.hpp"
#include "simnet/event_queue.hpp"
#include "simnet/host_faults.hpp"
#include "simnet/link_model.hpp"
#include "simnet/middlebox.hpp"
#include "telemetry/hop_program.hpp"
#include "telemetry/int_header.hpp"
#include "topology/topology.hpp"
#include "util/flat_hash.hpp"

namespace debuglet::simnet {

/// Delivery receipt passed to hosts alongside the decoded packet.
struct Delivery {
  net::Packet packet;
  SimTime sent_at = 0;
  SimTime received_at = 0;
  topology::AsPath path;  // the path the packet actually took
};

/// Anything that can be attached to the network at an address.
class Host {
 public:
  virtual ~Host() = default;
  /// Called when a packet addressed to this host arrives. Runs on the
  /// event-queue lane owning the host's domain; hosts that share state
  /// with events on other domains must bounce through schedule_on.
  virtual void on_packet(const Delivery& delivery) = 0;
};

/// Per-AS internal forwarding characteristics (border-to-border transit).
struct TransitConfig {
  double delay_ms = 0.2;
  double jitter_ms = 0.02;
  double loss_pm = 0.0;
};

/// Intra-AS stub between a host and its border router. Executors at border
/// routers have a zero stub; hosts placed at arbitrary points inside an AS
/// (ablation A1, paper §VI-G) pay it on every send and every delivery.
struct AccessConfig {
  double delay_ms = 0.0;
  double jitter_ms = 0.0;
};

/// How an AS's border routers answer expired-TTL packets — the knobs the
/// paper's §II names as traceroute's limitations: "responding with ICMP
/// TTL exceeded message is disabled or rate-limited on many routers", and
/// replies are generated on the SLOW PATH while data rides the fast path.
struct IcmpReplyPolicy {
  bool time_exceeded_enabled = true;
  double slow_path_ms = 4.0;         // extra control-plane processing
  double slow_path_jitter_ms = 2.0;
  std::uint32_t rate_limit_per_s = 0;  // 0 = unlimited
};

/// Aggregate send/drop accounting, per protocol. Only protocols with a
/// nonzero count appear in the maps.
struct NetworkStats {
  std::map<net::Protocol, std::uint64_t> sent;
  std::map<net::Protocol, std::uint64_t> delivered;
  std::map<net::Protocol, std::uint64_t> dropped;
};

/// The simulator. Construction order: build the Topology, create the
/// network, configure links and transit, attach hosts, then send. All
/// configuration APIs are main-thread-only (between runs); send() and the
/// forwarding pipeline are safe from any event-queue lane.
class SimulatedNetwork {
 public:
  SimulatedNetwork(EventQueue& queue, topology::Topology topology,
                   std::uint64_t seed);
  ~SimulatedNetwork();

  const topology::Topology& topology() const { return topology_; }
  EventQueue& queue() { return queue_; }
  SimTime now() const { return queue_.now(); }

  /// Configures one direction of an inter-domain link (from -> to). Both
  /// keys must be the two ends of an existing link. Registers the link's
  /// latency floor with the event queue (the cross-shard lookahead).
  Status configure_link(topology::InterfaceKey from, topology::InterfaceKey to,
                        LinkConfig config);

  /// Configures both directions with the same config.
  Status configure_link_symmetric(topology::InterfaceKey a,
                                  topology::InterfaceKey b, LinkConfig config);

  /// Sets the internal transit behaviour of an AS.
  void configure_transit(topology::AsNumber asn, TransitConfig config);

  /// Sets how an AS's border routers answer TTL expiries.
  void configure_icmp_policy(topology::AsNumber asn, IcmpReplyPolicy policy);

  /// Attaches a host at an explicit address. Host addresses inside an AS
  /// use the form 10.<asn_hi>.<asn_lo>.<200+n>; executor hosts attach at
  /// their border-interface address (10.<asn_hi>.<asn_lo>.<intf>).
  Status attach_host(net::Ipv4Address address, Host* host,
                     AccessConfig access = {});
  void detach_host(net::Ipv4Address address);

  /// A fresh host address within an AS (10.x.y.200, .201, ...).
  net::Ipv4Address allocate_host_address(topology::AsNumber asn);

  /// The AS an address belongs to (addresses encode the AS number).
  topology::AsNumber as_of(net::Ipv4Address address) const;

  /// The event-queue domain an address's host events run on: the AS
  /// number for in-AS hosts (last octet >= 200), the control domain for
  /// border-interface addresses (executors, routers). Hosts scheduling
  /// their own timers should home them here via EventQueue::schedule_on.
  std::uint32_t domain_of(net::Ipv4Address address) const;

  /// Sends raw wire bytes originating at `from_address`. The packet's IP
  /// source must equal `from_address`. Fails on malformed packets, unknown
  /// destinations, or unconfigured links; transmission itself never fails —
  /// losses happen silently in the link models.
  Status send(net::Ipv4Address from_address, Bytes wire);

  /// Pins the path used between two ASes (both directions must be pinned
  /// separately; unpinned pairs use the topology's shortest path).
  void pin_path(topology::AsNumber src, topology::AsNumber dst,
                topology::AsPath path);

  /// Injects a fault into one direction of a link. The link must have been
  /// configured first.
  Status inject_fault(topology::InterfaceKey from, topology::InterfaceKey to,
                      const FaultSpec& fault);
  Status clear_fault(topology::InterfaceKey from, topology::InterfaceKey to);

  /// Installs (replaces) a wire-fault schedule on one direction of a
  /// configured link. The plan's RNG derives from the network seed and the
  /// link identity, so equal-seed scenarios damage identically regardless
  /// of install order — `--check-determinism` holds under link chaos.
  Status install_link_faults(topology::InterfaceKey from,
                             topology::InterfaceKey to, LinkFaultPlan plan);
  Status clear_link_faults(topology::InterfaceKey from,
                           topology::InterfaceKey to);

  /// Wire-fault totals injected so far on one direction (zeroes when the
  /// link is unconfigured) — per-segment delivery-integrity evidence for
  /// the localizer.
  LinkIntegrityStats link_integrity(topology::InterfaceKey from,
                                    topology::InterfaceKey to) const;

  /// Installs a node-level fault schedule for the host at `address`
  /// (replacing any previous plan). The address's AS must exist; the host
  /// itself need not be attached yet — plans outlive attach/detach cycles.
  Status install_host_faults(net::Ipv4Address address, HostFaultPlan plan);
  /// Convenience: faults the executor host at a border interface.
  Status install_host_faults(topology::InterfaceKey key, HostFaultPlan plan);
  void clear_host_faults(net::Ipv4Address address);

  /// The resolved host-fault state of an address at time `t` (kNone when
  /// no plan is installed) — ground truth for tests and schedulers.
  HostFaultState host_fault_state(net::Ipv4Address address, SimTime t) const;

  /// Installs (replaces) an adversarial middlebox at an AS's borders: every
  /// copy entering the AS is DPI-classified and run through the plan's
  /// per-class policy (drop / deprioritize / throttle / mangle), with
  /// fault-hiding exemptions for recognized traffic. Composable with host
  /// and link fault plans; deterministic under the scenario seed (the
  /// plan's draws come from the owning domain's middlebox RNG stream) and
  /// shard-invariant. Main-thread-only, between runs.
  Status install_middlebox(topology::AsNumber asn, MiddleboxPlan plan);
  void clear_middlebox(topology::AsNumber asn);

  /// Ground-truth action tally of the middlebox at `asn` (zeroes when none
  /// was ever installed) — what the adversary really did, for tests and
  /// chaos traces to hold against the detector's inference.
  MiddleboxStats middlebox_stats(topology::AsNumber asn) const;

  /// In-band telemetry (INT). When enabled, UDP and raw-IP packets whose
  /// payload begins with a valid telemetry::IntHeader get one HopRecord
  /// appended per inter-domain link crossed (at the terminating AS's
  /// ingress border router). Off by default; when off the forwarding path
  /// pays exactly one branch and the RNG draw order is unchanged either
  /// way. ICMP/TCP packets never carry INT: their transport checksums
  /// cover the payload, and a forwarding device must not rewrite them.
  void set_int_enabled(bool on) { int_enabled_ = on; }
  bool int_enabled() const { return int_enabled_; }

  /// Installs (replaces) the every-router hop program: a validated DVM
  /// mini-module run once per traversed device for INT packets that set
  /// the hop-program flag (paper §VI-G's every-router placement,
  /// TPP-style). Validation and translation happen here, once; each
  /// domain lazily clones its own runtime (the DVM instance is stateful
  /// during a run), so hop executions stay lock-free under sharding.
  Status install_hop_program(vm::Module module,
                             telemetry::HopProgramLimits limits = {});
  void clear_hop_program();
  bool has_hop_program() const { return hop_module_.has_value(); }

  /// Ground-truth expected one-way delay for a protocol on a path now.
  Result<double> expected_path_delay_ms(const topology::AsPath& path,
                                        net::Protocol protocol) const;

  /// Snapshot of the per-protocol counters (atomics; safe any time).
  NetworkStats stats() const;
  void reset_stats();

  /// The link model for a direction (for tests; null if unconfigured).
  LinkModel* link_model(topology::InterfaceKey from, topology::InterfaceKey to);

 private:
  /// Mutable state owned by one domain (one AS, or the control plane) and
  /// therefore by exactly one event-queue lane. All forwarding-path
  /// randomness that is not a link's own stream draws from here, in the
  /// owning lane's event order — the shard-count-invariance anchor.
  struct DomainState;
  /// One in-flight copy of a frame, moved hop by hop through raw events.
  struct FlightCopy;
  /// Pool of FlightCopy nodes: reuses allocations (and their vector
  /// capacity) across packets and reclaims in-flight copies on teardown.
  struct FlightPool;

  /// A configured directed link, keyed by its egress interface (an
  /// interface carries exactly one cable, so the egress key alone
  /// identifies the direction; `to` is kept to validate lookups).
  struct LinkEntry {
    topology::InterfaceKey to;
    std::unique_ptr<LinkModel> model;
  };
  struct AttachedHost {
    Host* host = nullptr;
    AccessConfig access;
  };

  static std::uint64_t link_key(topology::InterfaceKey from) {
    return (static_cast<std::uint64_t>(from.asn) << 16) | from.interface;
  }

  LinkEntry* find_link(topology::InterfaceKey from, topology::InterfaceKey to);
  const LinkEntry* find_link(topology::InterfaceKey from,
                             topology::InterfaceKey to) const;
  DomainState& domain_state(std::uint32_t domain);
  DomainState& current_domain_state();

  Result<std::shared_ptr<const topology::AsPath>> resolve_path(
      topology::AsNumber src, topology::AsNumber dst) const;
  void expire_with_time_exceeded(const net::Packet& packet,
                                 const topology::PathHop& at,
                                 topology::InterfaceKey router, SimTime sent_at,
                                 double forward_delay_ms);

  // The forwarding pipeline. Each stage is a raw event homed on the
  // domain that owns the state it touches: process_hop on the crossed
  // link's ingress AS, process_arrival on the destination's domain (access
  // stub + fault window draws), process_delivery likewise (parse + host
  // callback). Trampolines adapt to EventQueue::RawFn.
  static void hop_event(void* arg);
  static void arrival_event(void* arg);
  static void delivery_event(void* arg);
  void process_hop(FlightCopy* fc);
  void process_arrival(FlightCopy* fc);
  void process_delivery(FlightCopy* fc);
  void schedule_arrival(FlightCopy* fc);
  void push_int_record(FlightCopy* fc, const topology::PathHop& hop,
                       bool interior, double link_delay_ms,
                       double residence_ms, double delay_at_entry_ms,
                       std::uint32_t queue_depth, std::uint32_t wire_faults,
                       DomainState& ds);

  /// Counts a drop in the global per-protocol tally and in the executing
  /// domain's local drop counter (the value INT hop records snapshot).
  void count_drop(net::Protocol protocol);

  /// Dense index for per-protocol metric arrays (Protocol values are
  /// sparse wire numbers; the hot path must not pay a map lookup).
  static constexpr std::size_t proto_index(net::Protocol p) {
    switch (p) {
      case net::Protocol::kIcmp: return 0;
      case net::Protocol::kTcp: return 1;
      case net::Protocol::kUdp: return 2;
      case net::Protocol::kRawIp: return 3;
    }
    return 0;
  }

  EventQueue& queue_;
  topology::Topology topology_;
  Rng rng_;
  const std::uint64_t seed_;  // scenario seed; per-domain RNGs derive here

  util::FlatHash<std::uint64_t, LinkEntry, util::U64Hash, ~0ULL> links_;
  util::FlatHash<std::uint64_t, TransitConfig, util::U64Hash, ~0ULL> transit_;
  util::FlatHash<std::uint64_t, IcmpReplyPolicy, util::U64Hash, ~0ULL>
      icmp_policies_;
  util::FlatHash<std::uint64_t, HostFaultPlan, util::U64Hash, ~0ULL>
      host_faults_;

  /// One installed middlebox, with its obs handles pre-resolved at install
  /// time (the forwarding path must not pay registry lookups).
  struct MiddleboxEntry {
    MiddleboxPlan plan;
    std::array<obs::Counter*, kTrafficClassCount> classified{};
    obs::Counter* dropped = nullptr;
    obs::Counter* deprioritized = nullptr;
    obs::Counter* mangled = nullptr;
    obs::Counter* throttled = nullptr;
    obs::Counter* exempted = nullptr;
    // Adaptive (learning) mode only.
    obs::Counter* adaptive_matched = nullptr;
    obs::Counter* adaptive_promoted = nullptr;
    obs::Counter* flows_evicted = nullptr;
  };
  util::FlatHash<std::uint64_t, MiddleboxEntry, util::U64Hash, ~0ULL>
      middleboxes_;
  /// One-branch-when-off guard: the per-copy middlebox lookup only runs
  /// once any middlebox was ever installed.
  bool any_middlebox_ = false;

  // Hosts: the ordered map owns attachment records (node-stable), the flat
  // index serves the per-packet lookups and is rebuilt on detach.
  std::map<net::Ipv4Address, AttachedHost> hosts_;
  util::FlatHash<std::uint64_t, AttachedHost*, util::U64Hash, ~0ULL>
      host_index_;

  // Domain states, one per AS plus the control domain, created eagerly at
  // construction so the index is immutable while events run.
  std::vector<std::unique_ptr<DomainState>> domains_;
  util::FlatHash<std::uint64_t, DomainState*, util::U64Hash, ~0ULL>
      domain_index_;

  std::map<topology::AsNumber, std::uint8_t> next_host_octet_;
  std::map<std::pair<topology::AsNumber, topology::AsNumber>,
           std::shared_ptr<const topology::AsPath>>
      pinned_paths_;
  // Resolved-path cache: filled from any lane mid-run (send() resolves on
  // the sender's domain), hence the mutex. Contents are a pure function of
  // the topology, so cache state never affects simulation results.
  mutable std::mutex path_mu_;
  mutable std::map<std::pair<topology::AsNumber, topology::AsNumber>,
                   std::shared_ptr<const topology::AsPath>>
      path_cache_;

  std::array<std::atomic<std::uint64_t>, 4> sent_{};
  std::array<std::atomic<std::uint64_t>, 4> delivered_{};
  std::array<std::atomic<std::uint64_t>, 4> dropped_{};

  std::unique_ptr<FlightPool> flights_;

  // Observability handles, cached per protocol at construction (the obs
  // registry owns them; all record calls no-op while obs is disabled).
  struct ObsHandles {
    std::array<obs::Counter*, 4> sent{};
    std::array<obs::Counter*, 4> delivered{};
    std::array<obs::Counter*, 4> dropped{};
    obs::Histogram* link_delay_ms = nullptr;
    obs::Histogram* path_links = nullptr;
    obs::Counter* host_fault_egress_drops = nullptr;
    obs::Counter* host_fault_ingress_drops = nullptr;
    obs::Counter* ttl_expired = nullptr;
    obs::Counter* int_pushes = nullptr;
    obs::Counter* int_truncations = nullptr;
    obs::Counter* hop_program_runs = nullptr;
    obs::Counter* hop_program_traps = nullptr;
  };
  ObsHandles obs_;
  bool int_enabled_ = false;
  // The validated hop program, kept as a module so each domain can clone
  // its own runtime on first use (HopProgramRuntime mutates its DVM
  // instance per run and must not be shared across lanes).
  std::optional<vm::Module> hop_module_;
  telemetry::HopProgramLimits hop_limits_;
};

/// Hashes a parsed packet's flow identity (5-tuple; protocol-dependent).
std::uint64_t flow_hash_of(const net::Packet& packet);

}  // namespace debuglet::simnet
