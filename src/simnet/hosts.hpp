// Native measurement endpoints.
//
// These model the paper's Go applications (§II "Experiment Setup" and
// §V-B's A2A baseline): a probe client that sends equal-length probes of
// all four protocols once per second, and an echo server that reflects
// them. A configurable per-packet processing overhead models the cost of a
// sandboxed endpoint (Fig. 8's D2D/A2D/D2A combinations reuse these hosts
// with nonzero overhead).
#pragma once

#include <map>

#include "simnet/network.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace debuglet::simnet {

/// Reflects every probe back to its sender (UDP/TCP/ICMP/raw-IP echo).
class EchoServerHost : public Host {
 public:
  /// `processing_overhead` is added before each reply is sent (0 for a
  /// native server; ~100 µs for a sandboxed Debuglet server).
  EchoServerHost(SimulatedNetwork& network, net::Ipv4Address address,
                 SimDuration processing_overhead = 0,
                 double overhead_jitter_ns = 0.0, std::uint64_t seed = 1);

  void on_packet(const Delivery& delivery) override;

  net::Ipv4Address address() const { return address_; }
  std::uint64_t packets_echoed() const { return echoed_; }

 private:
  SimulatedNetwork& network_;
  net::Ipv4Address address_;
  SimDuration overhead_;
  double overhead_jitter_ns_;
  Rng rng_;
  std::uint64_t echoed_ = 0;
};

/// Per-protocol round-trip measurement results.
struct ProbeReport {
  std::map<net::Protocol, SampleSet> rtt_ms;
  std::map<net::Protocol, std::uint64_t> sent;
  std::map<net::Protocol, std::uint64_t> received;
  /// Time series of (send time s, RTT ms) per protocol, for figure benches.
  std::map<net::Protocol, Series> series;

  /// Loss rate in per mille for a protocol (paper Table I's ‰ column).
  double loss_per_mille(net::Protocol p) const;
};

/// Configuration of a probe run.
struct ProbeClientConfig {
  net::Ipv4Address server;
  std::uint16_t server_port = 40000;
  SimDuration interval = duration::seconds(1);
  std::uint64_t probe_count = 60;  // probes per protocol
  std::vector<net::Protocol> protocols{net::kAllProtocols,
                                       net::kAllProtocols + 4};
  std::uint16_t equalized_length = 64;  // total L3 bytes, all protocols
  SimDuration rtt_timeout = duration::seconds(2);
  SimDuration processing_overhead = 0;   // sandbox cost at the client
  double overhead_jitter_ns = 0.0;
  bool record_series = false;
};

/// Sends probes on a schedule and collects RTT/loss per protocol.
class ProbeClientHost : public Host {
 public:
  ProbeClientHost(SimulatedNetwork& network, net::Ipv4Address address,
                  ProbeClientConfig config, std::uint64_t seed);

  /// Schedules the full probe run starting at the queue's current time.
  void start();

  void on_packet(const Delivery& delivery) override;

  /// Final report; call after the event queue has drained (outstanding
  /// probes are counted as lost).
  const ProbeReport& report();

  net::Ipv4Address address() const { return address_; }

 private:
  void send_round(std::uint64_t round);
  void send_probe(net::Protocol protocol, std::uint64_t round);

  SimulatedNetwork& network_;
  net::Ipv4Address address_;
  ProbeClientConfig config_;
  Rng rng_;
  ProbeReport report_;
  struct Outstanding {
    SimTime sent_at;
    std::uint64_t round;
  };
  std::map<std::pair<net::Protocol, std::uint16_t>, Outstanding> outstanding_;
  std::uint16_t next_client_port_ = 41000;
  bool finalized_ = false;
};

/// Per-hop findings of a traceroute run.
struct TracerouteHop {
  std::uint8_t ttl = 0;
  bool responded = false;
  net::Ipv4Address responder;   // border-router address when responded
  SampleSet rtt_ms;             // over the probes that were answered
  std::uint32_t probes_sent = 0;
};

struct TracerouteReport {
  std::vector<TracerouteHop> hops;
  bool reached_destination = false;

  /// Fraction of hops that never responded (disabled / rate-limited).
  double silent_hop_fraction() const;
};

/// Configuration of a traceroute run (UDP probes with increasing TTL, the
/// classic tool the paper's §II critiques).
struct TracerouteConfig {
  net::Ipv4Address destination;
  std::uint16_t destination_port = 33434;
  std::uint8_t max_ttl = 16;
  std::uint32_t probes_per_ttl = 3;
  SimDuration probe_interval = duration::milliseconds(50);
  SimDuration reply_timeout = duration::milliseconds(1500);
  net::Protocol protocol = net::Protocol::kUdp;
};

/// The baseline: a traceroute prober. Sends probes_per_ttl probes at each
/// TTL, matches ICMP time-exceeded replies by the echoed identification,
/// and records per-hop responder addresses and RTTs. Stops early once the
/// destination echoes back.
class TracerouteProber : public Host {
 public:
  TracerouteProber(SimulatedNetwork& network, net::Ipv4Address address,
                   TracerouteConfig config, std::uint64_t seed);

  void start();
  void on_packet(const Delivery& delivery) override;

  /// Final report; call after the event queue has drained.
  const TracerouteReport& report() const { return report_; }

  net::Ipv4Address address() const { return address_; }

 private:
  void send_probe(std::uint8_t ttl, std::uint32_t attempt);

  SimulatedNetwork& network_;
  net::Ipv4Address address_;
  TracerouteConfig config_;
  Rng rng_;
  TracerouteReport report_;
  std::map<std::uint16_t, std::pair<std::uint8_t, SimTime>> outstanding_;
  std::uint16_t next_ident_ = 1;
  bool destination_seen_ = false;
};

}  // namespace debuglet::simnet
