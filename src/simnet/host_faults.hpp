// Host-level fault injection (the chaos layer).
//
// Links can already fail (LinkModel's FaultSpec); this module faults the
// NODES: a HostFaultPlan schedules fault windows over simulated time for
// one attached host —
//
//   * crash       — the host is off: everything it sends and everything
//                   addressed to it is dropped;
//   * silent-drop — the host still receives but never gets a packet onto
//                   the wire (it "hears" but never answers);
//   * slow-host   — deliveries to and sends from the host pay an extra
//                   service delay (an overloaded or throttled box).
//
// Windows may overlap and may be zero-length (end <= start is inert). The
// effective state at any instant resolves by severity — crash beats
// silent-drop beats slow-host, and concurrent slow windows add their
// delays — so a host is never simultaneously crashed and serving (the
// host_faults_test property). Plans are pure functions of simulated time:
// chaos runs stay bit-identical under the scenario seed.
#pragma once

#include <vector>

#include "util/time.hpp"

namespace debuglet::simnet {

/// What a host fault does, ordered by severity (higher wins on overlap).
enum class HostFaultKind : std::uint8_t {
  kNone = 0,
  kSlowHost = 1,
  kSilentDrop = 2,
  kCrash = 3,
};

const char* host_fault_kind_name(HostFaultKind kind);

/// One scheduled fault window. Mirrors link FaultSpec conventions:
/// `end` is exclusive and end <= start means "never active".
struct HostFaultWindow {
  HostFaultKind kind = HostFaultKind::kNone;
  SimTime start = 0;
  SimTime end = 0;
  double extra_delay_ms = 0.0;  // kSlowHost service delay

  bool active_at(SimTime t) const {
    return kind != HostFaultKind::kNone && t >= start && t < end;
  }
};

/// The resolved fault state of a host at one instant.
struct HostFaultState {
  HostFaultKind kind = HostFaultKind::kNone;
  double extra_delay_ms = 0.0;  // only meaningful for kSlowHost

  bool crashed() const { return kind == HostFaultKind::kCrash; }
  bool silent() const { return kind == HostFaultKind::kSilentDrop; }
};

/// A schedule of fault windows for one host.
class HostFaultPlan {
 public:
  HostFaultPlan& add(HostFaultWindow window);
  /// Builder shorthands; all return *this for chaining.
  HostFaultPlan& crash(SimTime start, SimTime end);
  HostFaultPlan& silent(SimTime start, SimTime end);
  HostFaultPlan& slow(SimTime start, SimTime end, double extra_delay_ms);

  /// The severity-resolved state at time `t`: the most severe active
  /// window wins; concurrent slow windows add their delays.
  HostFaultState state_at(SimTime t) const;

  /// True when the host can serve traffic at `t` (not crashed, not
  /// silenced). Slow hosts still serve, just late.
  bool serving_at(SimTime t) const;

  /// The earliest instant >= `t` at which no crash or silent-drop window
  /// is active — when chained/overlapping outages end, this is the
  /// recovery time the scheduler can rely on.
  SimTime recovered_after(SimTime t) const;

  bool empty() const { return windows_.empty(); }
  const std::vector<HostFaultWindow>& windows() const { return windows_; }

 private:
  std::vector<HostFaultWindow> windows_;
};

}  // namespace debuglet::simnet
