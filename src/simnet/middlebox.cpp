#include "simnet/middlebox.hpp"

#include <algorithm>
#include <cmath>

#include "telemetry/int_header.hpp"

namespace debuglet::simnet {

namespace {

// Port fingerprints the DPI model keys on. Traceroute probes walk the
// classic 33434+ range; Debuglet rendezvous ports (initiator-assigned echo
// endpoints) and simnet probe clients live in [40000, 49000).
bool is_measurement_port(std::uint16_t port) {
  return (port >= 33434 && port < 33534) || (port >= 40000 && port < 49000);
}

// Well-known interactive/service ports (the DPI paper's protocol
// fingerprints are far richer; ports are the coarse stand-in).
bool is_interactive_port(std::uint16_t port) {
  switch (port) {
    case 22:
    case 25:
    case 53:
    case 80:
    case 443:
    case 8080:
      return true;
    default:
      return false;
  }
}

constexpr std::uint64_t kFnvOffset = 0xCBF29CE484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001B3ULL;

std::uint64_t fnv1a(std::uint64_t h, const std::uint8_t* data,
                    std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    h ^= data[i];
    h *= kFnvPrime;
  }
  return h;
}

std::uint64_t fnv1a_u32(std::uint64_t h, std::uint32_t v) {
  const std::uint8_t bytes[4] = {
      static_cast<std::uint8_t>(v), static_cast<std::uint8_t>(v >> 8),
      static_cast<std::uint8_t>(v >> 16), static_cast<std::uint8_t>(v >> 24)};
  return fnv1a(h, bytes, sizeof bytes);
}

void packet_ports(const net::Packet& packet, std::uint16_t& sport,
                  std::uint16_t& dport) {
  sport = dport = 0;
  if (packet.udp) {
    sport = packet.udp->source_port;
    dport = packet.udp->destination_port;
  } else if (packet.tcp) {
    sport = packet.tcp->source_port;
    dport = packet.tcp->destination_port;
  }
}

// The application bytes the heuristics and the learner inspect: the
// payload after any leading INT block.
BytesView app_bytes(const net::Packet& packet) {
  const BytesView payload(packet.payload.data(), packet.payload.size());
  const std::size_t skip = telemetry::IntHeader::prefix_size(payload);
  return BytesView(payload.data() + skip, payload.size() - skip);
}

// log2-of-milliseconds pacing bucket (0 = sub-millisecond burst).
std::uint8_t pacing_bucket(SimDuration gap) {
  std::int64_t ms = gap / 1'000'000;
  std::uint8_t bucket = 0;
  while (ms > 1 && bucket < 63) {
    ms >>= 1;
    ++bucket;
  }
  return bucket;
}

// Idle sweep + stalest-first capacity eviction of the flow table. Runs on
// insertions only, so the amortized cost stays proportional to new-flow
// arrival, not per-packet.
std::uint32_t evict_flows(MiddleboxRuntime& runtime, const AdaptiveConfig& ad,
                          SimTime now) {
  std::uint32_t evicted = 0;
  for (auto it = runtime.flows.begin(); it != runtime.flows.end();) {
    if (now - it->second.last_seen > ad.flow_idle_timeout) {
      it = runtime.flows.erase(it);
      ++evicted;
    } else {
      ++it;
    }
  }
  while (runtime.flows.size() >= std::max<std::size_t>(ad.max_flows, 1)) {
    auto stalest = runtime.flows.begin();
    for (auto it = runtime.flows.begin(); it != runtime.flows.end(); ++it)
      if (it->second.last_seen < stalest->second.last_seen) stalest = it;
    runtime.flows.erase(stalest);
    ++evicted;
  }
  return evicted;
}

void evict_signatures(MiddleboxRuntime& runtime, const AdaptiveConfig& ad,
                      SimTime now) {
  // Pacing anchors age out with the signatures they anchor.
  for (auto it = runtime.last_measurement_at.begin();
       it != runtime.last_measurement_at.end();) {
    if (now - it->second > ad.signature_ttl)
      it = runtime.last_measurement_at.erase(it);
    else
      ++it;
  }
  for (auto it = runtime.signatures.begin();
       it != runtime.signatures.end();) {
    if (now - it->second.last_seen > ad.signature_ttl)
      it = runtime.signatures.erase(it);
    else
      ++it;
  }
  while (runtime.signatures.size() >=
         std::max<std::size_t>(ad.max_signatures, 1)) {
    auto stalest = runtime.signatures.begin();
    for (auto it = runtime.signatures.begin(); it != runtime.signatures.end();
         ++it)
      if (it->second.last_seen < stalest->second.last_seen) stalest = it;
    runtime.signatures.erase(stalest);
  }
}

}  // namespace

std::uint64_t adaptive_signature_of(const net::Packet& packet) {
  std::uint16_t sport = 0, dport = 0;
  packet_ports(packet, sport, dport);
  const BytesView app = app_bytes(packet);
  // Prefix hash over the first 16 application bytes: enough to pin a
  // static payload, cheap enough for the hop path.
  const std::size_t prefix = std::min<std::size_t>(app.size(), 16);
  std::uint64_t h = fnv1a(kFnvOffset, app.data(), prefix);
  const std::uint32_t prefix_hash = static_cast<std::uint32_t>(h ^ (h >> 32));
  const std::uint64_t src_bucket = sport >> 4;       // 16-port buckets
  const std::uint64_t size_bucket = app.size() >> 4;  // 16-byte buckets
  return (src_bucket << 48) ^ (static_cast<std::uint64_t>(prefix_hash) << 8) ^
         (size_bucket & 0xFF) ^
         (static_cast<std::uint64_t>(packet.protocol) << 40);
}

std::uint64_t middlebox_flow_key(const net::Packet& packet) {
  std::uint16_t sport = 0, dport = 0;
  packet_ports(packet, sport, dport);
  std::uint64_t h = kFnvOffset;
  h = fnv1a_u32(h, packet.ip.source.value);
  h = fnv1a_u32(h, packet.ip.destination.value);
  h = fnv1a_u32(h, (static_cast<std::uint32_t>(sport) << 16) | dport);
  h = fnv1a_u32(h, static_cast<std::uint32_t>(packet.protocol));
  return h;
}

const char* traffic_class_name(TrafficClass c) {
  switch (c) {
    case TrafficClass::kMeasurement: return "measurement";
    case TrafficClass::kInteractive: return "interactive";
    case TrafficClass::kBulk: return "bulk";
    case TrafficClass::kOther: return "other";
  }
  return "other";
}

TrafficClass classify_packet(const net::Packet& packet) {
  // ICMP and the paper's raw-IP probe protocol ARE measurement traffic —
  // no ambiguity for the classifier to resolve.
  if (packet.protocol == net::Protocol::kIcmp ||
      packet.protocol == net::Protocol::kRawIp)
    return TrafficClass::kMeasurement;

  std::uint16_t sport = 0, dport = 0;
  if (packet.udp) {
    sport = packet.udp->source_port;
    dport = packet.udp->destination_port;
  } else if (packet.tcp) {
    sport = packet.tcp->source_port;
    dport = packet.tcp->destination_port;
  }
  if (is_measurement_port(sport) || is_measurement_port(dport))
    return TrafficClass::kMeasurement;
  if (packet.tcp && (is_interactive_port(sport) || is_interactive_port(dport)))
    return TrafficClass::kInteractive;

  // Payload heuristics run on the APPLICATION bytes: a leading INT block
  // is forwarding-plane metadata, not something the application chose.
  const BytesView payload(packet.payload.data(), packet.payload.size());
  const std::size_t skip = telemetry::IntHeader::prefix_size(payload);
  const BytesView app(payload.data() + skip, payload.size() - skip);
  if (app.size() >= 512) return TrafficClass::kBulk;
  // Zero-padded equalized probes have near-zero byte entropy; real data
  // (compressed, encrypted) sits near 8 bits/byte.
  if (app.size() >= 16 && net::payload_entropy_bits(app) < 2.0)
    return TrafficClass::kMeasurement;
  return TrafficClass::kOther;
}

MiddleboxPlan& MiddleboxPlan::policy(TrafficClass c, const ClassPolicy& p) {
  policies_[static_cast<std::size_t>(c)] = p;
  return *this;
}

MiddleboxPlan& MiddleboxPlan::policy_all(const ClassPolicy& p) {
  for (ClassPolicy& slot : policies_) slot = p;
  return *this;
}

MiddleboxPlan& MiddleboxPlan::policy_except_measurement(const ClassPolicy& p) {
  policy_all(p);
  policies_[static_cast<std::size_t>(TrafficClass::kMeasurement)] =
      ClassPolicy{};
  return *this;
}

MiddleboxPlan& MiddleboxPlan::recognize(net::Ipv4Address address) {
  if (std::find(recognized_.begin(), recognized_.end(), address) ==
      recognized_.end())
    recognized_.push_back(address);
  return *this;
}

MiddleboxPlan& MiddleboxPlan::recognize_probe_signatures(bool on) {
  recognize_signatures_ = on;
  return *this;
}

MiddleboxPlan& MiddleboxPlan::window(FaultWindow w) {
  window_ = w;
  return *this;
}

MiddleboxPlan& MiddleboxPlan::adaptive(const AdaptiveConfig& cfg) {
  adaptive_ = cfg;
  return *this;
}

bool MiddleboxPlan::empty() const {
  if (adaptive_.enabled) return false;  // the learner observes even when
                                        // no policy punishes
  for (const ClassPolicy& p : policies_)
    if (!p.empty()) return false;
  return true;
}

bool MiddleboxPlan::recognizes(const net::Packet& packet,
                               TrafficClass cls) const {
  if (recognize_signatures_ && cls == TrafficClass::kMeasurement) return true;
  for (net::Ipv4Address address : recognized_)
    if (packet.ip.source == address || packet.ip.destination == address)
      return true;
  return false;
}

MiddleboxVerdict apply_middlebox(const MiddleboxPlan& plan,
                                 const net::Packet& packet, SimTime now,
                                 Rng& rng, MiddleboxRuntime& runtime,
                                 MiddleboxStats& stats) {
  MiddleboxVerdict v;
  if (!plan.active_window().active_at(now)) return v;
  v.inspected = true;
  v.cls = classify_packet(packet);

  // Adaptive mode: stateful flows + the signature learner may override
  // the static class. Pure counting over lane-owned state — no RNG draws.
  const AdaptiveConfig& ad = plan.adaptive_config();
  if (ad.enabled) {
    const std::uint64_t fkey = middlebox_flow_key(packet);
    auto flow_it = runtime.flows.find(fkey);
    if (flow_it != runtime.flows.end() &&
        now - flow_it->second.last_seen > ad.flow_idle_timeout) {
      // Stale hit: the old flow ended; this packet starts a new one.
      runtime.flows.erase(flow_it);
      flow_it = runtime.flows.end();
      v.flows_evicted += 1;
      stats.flows_evicted += 1;
    }
    if (flow_it == runtime.flows.end()) {
      const std::uint32_t swept = evict_flows(runtime, ad, now);
      v.flows_evicted += swept;
      stats.flows_evicted += swept;
      FlowState fresh;
      fresh.cls = v.cls;
      fresh.first_seen = now;
      flow_it = runtime.flows.emplace(fkey, fresh).first;
      stats.flows_tracked += 1;
    } else {
      // Per-flow verdict: the class pinned at the first packet wins.
      v.cls = flow_it->second.cls;
    }
    FlowState& flow = flow_it->second;

    // A promoted signature reclassifies the packet — and re-pins its
    // flow — as measurement, whatever its ports say.
    const std::uint64_t sig = adaptive_signature_of(packet);
    auto sig_it = runtime.signatures.find(sig);
    if (sig_it != runtime.signatures.end() &&
        now - sig_it->second.last_seen > ad.signature_ttl) {
      runtime.signatures.erase(sig_it);
      sig_it = runtime.signatures.end();
    }
    if (sig_it != runtime.signatures.end() && sig_it->second.promoted &&
        v.cls != TrafficClass::kMeasurement) {
      v.cls = TrafficClass::kMeasurement;
      v.adaptive_matched = true;
      flow.cls = TrafficClass::kMeasurement;
      stats.adaptive_matched += 1;
    }

    // Learn from everything that ended up classified as measurement.
    if (v.cls == TrafficClass::kMeasurement) {
      if (sig_it == runtime.signatures.end()) {
        evict_signatures(runtime, ad, now);
        sig_it = runtime.signatures.emplace(sig, SignatureState{}).first;
      }
      SignatureState& st = sig_it->second;
      st.sightings += 1;
      st.last_seen = now;
      const auto anchor = runtime.last_measurement_at.find(
          packet.ip.source.value);
      const std::uint8_t bucket =
          anchor == runtime.last_measurement_at.end()
              ? std::uint8_t{0}
              : pacing_bucket(now - anchor->second);
      st.pacing_min = std::min(st.pacing_min, bucket);
      st.pacing_max = std::max(st.pacing_max, bucket);
      stats.signatures_learned += 1;
      if (!st.promoted && st.sightings >= ad.promote_after) {
        st.promoted = true;
        v.promoted_signature = true;
        stats.signatures_promoted += 1;
      }
      runtime.last_measurement_at[packet.ip.source.value] = now;
    }

    flow.last_seen = now;
    flow.packets += 1;
    flow.payload_bytes += packet.payload.size();
    if (packet.tcp) flow.tcp_stream_bytes += packet.payload.size();
  }

  const std::size_t ci = static_cast<std::size_t>(v.cls);
  stats.classified[ci] += 1;

  // Fault hiding: recognized traffic rides the fast path untouched. No
  // RNG draw happens for it, so a hidden flow cannot even perturb the
  // treatment of its twins.
  if (plan.recognizes(packet, v.cls)) {
    v.exempted = true;
    stats.exempted += 1;
    return v;
  }

  const ClassPolicy& policy = plan.policy_for(v.cls);
  if (policy.empty()) return v;

  // Throttle first (deterministic, no draw): a fixed per-second budget
  // per class, excess dropped.
  if (policy.throttle_pps > 0) {
    const std::int64_t second = now / 1'000'000'000;
    if (runtime.window_second != second) {
      runtime.window_second = second;
      runtime.sent_in_window.fill(0);
    }
    if (runtime.sent_in_window[ci] >= policy.throttle_pps) {
      v.dropped = true;
      v.throttled = true;
      stats.throttled += 1;
      return v;
    }
    runtime.sent_in_window[ci] += 1;
  }

  if (policy.drop_pm > 0.0 && rng.chance(policy.drop_pm / 1000.0)) {
    v.dropped = true;
    stats.dropped += 1;
    return v;
  }

  if (policy.extra_delay_ms > 0.0) {
    double extra = policy.extra_delay_ms;
    if (policy.delay_jitter_ms > 0.0)
      extra += std::abs(rng.normal(0.0, policy.delay_jitter_ms));
    v.extra_delay_ms = extra;
    stats.deprioritized += 1;
  }

  if (policy.mangle_pm > 0.0 && rng.chance(policy.mangle_pm / 1000.0)) {
    // Mangle the application payload only: headers and their checksums
    // stay valid (a middlebox wants the packet delivered, just wrong),
    // and a leading INT block is left alone — its digest would expose
    // tampering immediately, so a stealthy box rewrites what follows.
    const BytesView payload(packet.payload.data(), packet.payload.size());
    const std::size_t app_offset =
        net::header_overhead(packet.protocol) +
        telemetry::IntHeader::prefix_size(payload);
    if (app_offset < packet.wire_size()) {
      v.mangled = true;
      v.damage.kind = WireDamage::Kind::kMangle;
      v.damage.seed = rng.next_u64();
      v.damage.bit_flips =
          1 + static_cast<std::uint32_t>(
                  rng.next_below(std::max(policy.mangle_max_bit_flips, 1u)));
      v.damage.offset = static_cast<std::uint32_t>(app_offset);
      stats.mangled += 1;
    }
  }
  return v;
}

}  // namespace debuglet::simnet
