#include "simnet/middlebox.hpp"

#include <algorithm>
#include <cmath>

#include "telemetry/int_header.hpp"

namespace debuglet::simnet {

namespace {

// Port fingerprints the DPI model keys on. Traceroute probes walk the
// classic 33434+ range; Debuglet rendezvous ports (initiator-assigned echo
// endpoints) and simnet probe clients live in [40000, 49000).
bool is_measurement_port(std::uint16_t port) {
  return (port >= 33434 && port < 33534) || (port >= 40000 && port < 49000);
}

// Well-known interactive/service ports (the DPI paper's protocol
// fingerprints are far richer; ports are the coarse stand-in).
bool is_interactive_port(std::uint16_t port) {
  switch (port) {
    case 22:
    case 25:
    case 53:
    case 80:
    case 443:
    case 8080:
      return true;
    default:
      return false;
  }
}

}  // namespace

const char* traffic_class_name(TrafficClass c) {
  switch (c) {
    case TrafficClass::kMeasurement: return "measurement";
    case TrafficClass::kInteractive: return "interactive";
    case TrafficClass::kBulk: return "bulk";
    case TrafficClass::kOther: return "other";
  }
  return "other";
}

TrafficClass classify_packet(const net::Packet& packet) {
  // ICMP and the paper's raw-IP probe protocol ARE measurement traffic —
  // no ambiguity for the classifier to resolve.
  if (packet.protocol == net::Protocol::kIcmp ||
      packet.protocol == net::Protocol::kRawIp)
    return TrafficClass::kMeasurement;

  std::uint16_t sport = 0, dport = 0;
  if (packet.udp) {
    sport = packet.udp->source_port;
    dport = packet.udp->destination_port;
  } else if (packet.tcp) {
    sport = packet.tcp->source_port;
    dport = packet.tcp->destination_port;
  }
  if (is_measurement_port(sport) || is_measurement_port(dport))
    return TrafficClass::kMeasurement;
  if (packet.tcp && (is_interactive_port(sport) || is_interactive_port(dport)))
    return TrafficClass::kInteractive;

  // Payload heuristics run on the APPLICATION bytes: a leading INT block
  // is forwarding-plane metadata, not something the application chose.
  const BytesView payload(packet.payload.data(), packet.payload.size());
  const std::size_t skip = telemetry::IntHeader::prefix_size(payload);
  const BytesView app(payload.data() + skip, payload.size() - skip);
  if (app.size() >= 512) return TrafficClass::kBulk;
  // Zero-padded equalized probes have near-zero byte entropy; real data
  // (compressed, encrypted) sits near 8 bits/byte.
  if (app.size() >= 16 && net::payload_entropy_bits(app) < 2.0)
    return TrafficClass::kMeasurement;
  return TrafficClass::kOther;
}

MiddleboxPlan& MiddleboxPlan::policy(TrafficClass c, const ClassPolicy& p) {
  policies_[static_cast<std::size_t>(c)] = p;
  return *this;
}

MiddleboxPlan& MiddleboxPlan::policy_all(const ClassPolicy& p) {
  for (ClassPolicy& slot : policies_) slot = p;
  return *this;
}

MiddleboxPlan& MiddleboxPlan::policy_except_measurement(const ClassPolicy& p) {
  policy_all(p);
  policies_[static_cast<std::size_t>(TrafficClass::kMeasurement)] =
      ClassPolicy{};
  return *this;
}

MiddleboxPlan& MiddleboxPlan::recognize(net::Ipv4Address address) {
  if (std::find(recognized_.begin(), recognized_.end(), address) ==
      recognized_.end())
    recognized_.push_back(address);
  return *this;
}

MiddleboxPlan& MiddleboxPlan::recognize_probe_signatures(bool on) {
  recognize_signatures_ = on;
  return *this;
}

MiddleboxPlan& MiddleboxPlan::window(FaultWindow w) {
  window_ = w;
  return *this;
}

bool MiddleboxPlan::empty() const {
  for (const ClassPolicy& p : policies_)
    if (!p.empty()) return false;
  return true;
}

bool MiddleboxPlan::recognizes(const net::Packet& packet,
                               TrafficClass cls) const {
  if (recognize_signatures_ && cls == TrafficClass::kMeasurement) return true;
  for (net::Ipv4Address address : recognized_)
    if (packet.ip.source == address || packet.ip.destination == address)
      return true;
  return false;
}

MiddleboxVerdict apply_middlebox(const MiddleboxPlan& plan,
                                 const net::Packet& packet, SimTime now,
                                 Rng& rng, MiddleboxRuntime& runtime,
                                 MiddleboxStats& stats) {
  MiddleboxVerdict v;
  if (!plan.active_window().active_at(now)) return v;
  v.inspected = true;
  v.cls = classify_packet(packet);
  const std::size_t ci = static_cast<std::size_t>(v.cls);
  stats.classified[ci] += 1;

  // Fault hiding: recognized traffic rides the fast path untouched. No
  // RNG draw happens for it, so a hidden flow cannot even perturb the
  // treatment of its twins.
  if (plan.recognizes(packet, v.cls)) {
    v.exempted = true;
    stats.exempted += 1;
    return v;
  }

  const ClassPolicy& policy = plan.policy_for(v.cls);
  if (policy.empty()) return v;

  // Throttle first (deterministic, no draw): a fixed per-second budget
  // per class, excess dropped.
  if (policy.throttle_pps > 0) {
    const std::int64_t second = now / 1'000'000'000;
    if (runtime.window_second != second) {
      runtime.window_second = second;
      runtime.sent_in_window.fill(0);
    }
    if (runtime.sent_in_window[ci] >= policy.throttle_pps) {
      v.dropped = true;
      v.throttled = true;
      stats.throttled += 1;
      return v;
    }
    runtime.sent_in_window[ci] += 1;
  }

  if (policy.drop_pm > 0.0 && rng.chance(policy.drop_pm / 1000.0)) {
    v.dropped = true;
    stats.dropped += 1;
    return v;
  }

  if (policy.extra_delay_ms > 0.0) {
    double extra = policy.extra_delay_ms;
    if (policy.delay_jitter_ms > 0.0)
      extra += std::abs(rng.normal(0.0, policy.delay_jitter_ms));
    v.extra_delay_ms = extra;
    stats.deprioritized += 1;
  }

  if (policy.mangle_pm > 0.0 && rng.chance(policy.mangle_pm / 1000.0)) {
    // Mangle the application payload only: headers and their checksums
    // stay valid (a middlebox wants the packet delivered, just wrong),
    // and a leading INT block is left alone — its digest would expose
    // tampering immediately, so a stealthy box rewrites what follows.
    const BytesView payload(packet.payload.data(), packet.payload.size());
    const std::size_t app_offset =
        net::header_overhead(packet.protocol) +
        telemetry::IntHeader::prefix_size(payload);
    if (app_offset < packet.wire_size()) {
      v.mangled = true;
      v.damage.kind = WireDamage::Kind::kMangle;
      v.damage.seed = rng.next_u64();
      v.damage.bit_flips =
          1 + static_cast<std::uint32_t>(
                  rng.next_below(std::max(policy.mangle_max_bit_flips, 1u)));
      v.damage.offset = static_cast<std::uint32_t>(app_offset);
      stats.mangled += 1;
    }
  }
  return v;
}

}  // namespace debuglet::simnet
