#include "simnet/host_faults.hpp"

namespace debuglet::simnet {

const char* host_fault_kind_name(HostFaultKind kind) {
  switch (kind) {
    case HostFaultKind::kNone: return "none";
    case HostFaultKind::kSlowHost: return "slow-host";
    case HostFaultKind::kSilentDrop: return "silent-drop";
    case HostFaultKind::kCrash: return "crash";
  }
  return "unknown";
}

HostFaultPlan& HostFaultPlan::add(HostFaultWindow window) {
  windows_.push_back(window);
  return *this;
}

HostFaultPlan& HostFaultPlan::crash(SimTime start, SimTime end) {
  return add({HostFaultKind::kCrash, start, end, 0.0});
}

HostFaultPlan& HostFaultPlan::silent(SimTime start, SimTime end) {
  return add({HostFaultKind::kSilentDrop, start, end, 0.0});
}

HostFaultPlan& HostFaultPlan::slow(SimTime start, SimTime end,
                                   double extra_delay_ms) {
  return add({HostFaultKind::kSlowHost, start, end, extra_delay_ms});
}

HostFaultState HostFaultPlan::state_at(SimTime t) const {
  HostFaultState state;
  for (const HostFaultWindow& w : windows_) {
    if (!w.active_at(t)) continue;
    if (w.kind > state.kind) state.kind = w.kind;
    if (w.kind == HostFaultKind::kSlowHost)
      state.extra_delay_ms += w.extra_delay_ms;
  }
  // Crash and silent-drop subsume slowness: a host that is off (or mute)
  // has no service time. Keeping the delay zeroed is what guarantees the
  // "never simultaneously crashed and serving" property.
  if (state.kind != HostFaultKind::kSlowHost) state.extra_delay_ms = 0.0;
  return state;
}

bool HostFaultPlan::serving_at(SimTime t) const {
  const HostFaultKind kind = state_at(t).kind;
  return kind != HostFaultKind::kCrash && kind != HostFaultKind::kSilentDrop;
}

SimTime HostFaultPlan::recovered_after(SimTime t) const {
  // Walk forward past every active outage window's end. Each pass moves
  // strictly forward to some window's end, so at most |windows| passes
  // are needed even for arbitrarily overlapped/chained schedules.
  SimTime candidate = t;
  for (std::size_t pass = 0; pass <= windows_.size(); ++pass) {
    SimTime latest_end = candidate;
    for (const HostFaultWindow& w : windows_) {
      if (w.kind != HostFaultKind::kCrash &&
          w.kind != HostFaultKind::kSilentDrop)
        continue;
      if (w.active_at(candidate) && w.end > latest_end) latest_end = w.end;
    }
    if (latest_end == candidate) return candidate;
    candidate = latest_end;
  }
  return candidate;
}

}  // namespace debuglet::simnet
