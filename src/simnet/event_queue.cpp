#include "simnet/event_queue.hpp"

#include <utility>

namespace debuglet::simnet {

void EventQueue::schedule_at(SimTime at, Callback fn) {
  if (at < now_) at = now_;
  events_.push(Event{at, next_seq_++, std::move(fn)});
}

void EventQueue::schedule_after(SimDuration delay, Callback fn) {
  schedule_at(now_ + (delay < 0 ? 0 : delay), std::move(fn));
}

std::size_t EventQueue::run() {
  std::size_t processed = 0;
  while (!events_.empty()) {
    // Copy out before pop so the callback may schedule new events.
    Event ev = std::move(const_cast<Event&>(events_.top()));
    events_.pop();
    now_ = ev.at;
    ev.fn();
    ++processed;
  }
  return processed;
}

std::size_t EventQueue::run_until(SimTime deadline) {
  std::size_t processed = 0;
  while (!events_.empty() && events_.top().at <= deadline) {
    Event ev = std::move(const_cast<Event&>(events_.top()));
    events_.pop();
    now_ = ev.at;
    ev.fn();
    ++processed;
  }
  if (now_ < deadline) now_ = deadline;
  return processed;
}

}  // namespace debuglet::simnet
