#include "simnet/event_queue.hpp"

#include <chrono>
#include <utility>

namespace debuglet::simnet {

EventQueue::EventQueue()
    : depth_gauge_(&obs::registry().gauge("simnet.event_queue.depth")),
      pop_latency_ns_(
          &obs::registry().histogram("simnet.event_queue.pop_ns")),
      events_processed_(
          &obs::registry().counter("simnet.event_queue.events")) {}

void EventQueue::schedule_at(SimTime at, Callback fn) {
  if (at < now_) at = now_;
  events_.push(Event{at, next_seq_++, std::move(fn)});
  depth_gauge_->set(static_cast<double>(events_.size()));
}

void EventQueue::schedule_after(SimDuration delay, Callback fn) {
  schedule_at(now_ + (delay < 0 ? 0 : delay), std::move(fn));
}

void EventQueue::dispatch_next() {
  // Copy out before pop so the callback may schedule new events.
  Event ev = std::move(const_cast<Event&>(events_.top()));
  events_.pop();
  now_ = ev.at;
  if (pop_latency_ns_->enabled()) {
    const auto begin = std::chrono::steady_clock::now();
    ev.fn();
    const auto end = std::chrono::steady_clock::now();
    pop_latency_ns_->record(static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(end - begin)
            .count()));
    depth_gauge_->set(static_cast<double>(events_.size()));
  } else {
    ev.fn();
  }
  events_processed_->add();
}

std::size_t EventQueue::run() {
  std::size_t processed = 0;
  while (!events_.empty()) {
    dispatch_next();
    ++processed;
  }
  return processed;
}

std::size_t EventQueue::run_until(SimTime deadline) {
  std::size_t processed = 0;
  while (!events_.empty() && events_.top().at <= deadline) {
    dispatch_next();
    ++processed;
  }
  if (now_ < deadline) now_ = deadline;
  return processed;
}

}  // namespace debuglet::simnet
