#include "simnet/event_queue.hpp"

#include <algorithm>
#include <chrono>
#include <limits>
#include <utility>

#include "util/flat_hash.hpp"

namespace debuglet::simnet {

namespace {

/// The dispatch context of the thread's currently executing event. A
/// plain pointer to a stack frame inside the run loop; null outside
/// dispatch (the main thread between runs, or foreign threads).
struct DispatchContext {
  EventQueue* queue = nullptr;
  std::size_t lane = 0;
  SimTime now = 0;
  std::uint32_t domain = EventQueue::kControlDomain;
  std::uint64_t event_id = 0;
  std::uint64_t children = 0;
};

thread_local DispatchContext* tl_ctx = nullptr;

// Event-id layout: the high bits identify the scheduling context (the
// hash of the parent event's id, or a root sequence number for events
// scheduled outside dispatch), the low bits count children within that
// context. Equal-time events from the SAME context therefore fire in
// scheduling order — the legacy single-queue contract — while ids stay
// invariant under the shard count (they never depend on which thread
// pushed first).
constexpr unsigned kChildIndexBits = 20;
constexpr std::uint64_t kChildIndexMask = (1ULL << kChildIndexBits) - 1;

constexpr std::size_t kHeapArity = 4;

}  // namespace

// --- 4-ary min-heap over (at, id) ------------------------------------------
//
// Flatter than a binary heap (half the levels), so pops touch fewer cache
// lines; the event vector doubles as the arena — pushing an event never
// allocates beyond the vector's growth.

namespace heap {

template <typename Event>
bool before(const Event& a, const Event& b) {
  if (a.at != b.at) return a.at < b.at;
  return a.id < b.id;
}

template <typename Event>
void push(std::vector<Event>& h, Event ev) {
  h.push_back(std::move(ev));
  std::size_t i = h.size() - 1;
  while (i > 0) {
    const std::size_t parent = (i - 1) / kHeapArity;
    if (!before(h[i], h[parent])) break;
    std::swap(h[i], h[parent]);
    i = parent;
  }
}

template <typename Event>
Event pop(std::vector<Event>& h) {
  Event top = std::move(h.front());
  Event last = std::move(h.back());
  h.pop_back();
  if (!h.empty()) {
    std::size_t i = 0;
    const std::size_t n = h.size();
    while (true) {
      const std::size_t first = i * kHeapArity + 1;
      if (first >= n) break;
      std::size_t best = first;
      const std::size_t limit = std::min(first + kHeapArity, n);
      for (std::size_t c = first + 1; c < limit; ++c) {
        if (before(h[c], h[best])) best = c;
      }
      if (!before(h[best], last)) break;
      h[i] = std::move(h[best]);
      i = best;
    }
    h[i] = std::move(last);
  }
  return top;
}

}  // namespace heap

EventQueue::EventQueue()
    : depth_gauge_(&obs::registry().gauge("simnet.event_queue.depth")),
      pop_latency_ns_(
          &obs::registry().histogram("simnet.event_queue.pop_ns")),
      events_processed_(
          &obs::registry().counter("simnet.event_queue.events")) {
  lanes_.push_back(std::make_unique<Lane>());
}

EventQueue::~EventQueue() { stop_workers(); }

SimTime EventQueue::now() const {
  const DispatchContext* ctx = tl_ctx;
  if (ctx != nullptr && ctx->queue == this) return ctx->now;
  return global_now_;
}

std::uint32_t EventQueue::current_domain() const {
  const DispatchContext* ctx = tl_ctx;
  if (ctx != nullptr && ctx->queue == this) return ctx->domain;
  return kControlDomain;
}

SimDuration EventQueue::lookahead() const {
  return min_link_floor_ > 2 ? min_link_floor_ / 2 : SimDuration{1};
}

void EventQueue::note_link_floor(SimDuration floor) {
  if (floor <= 0) return;
  if (min_link_floor_ == 0 || floor < min_link_floor_)
    min_link_floor_ = floor;
}

std::size_t EventQueue::lane_of(std::uint32_t domain) const {
  const std::size_t shard_count = lanes_.size();
  if (shard_count == 1 || domain == kControlDomain) return 0;
  return 1 + domain % (shard_count - 1);
}

void EventQueue::enqueue(std::uint32_t domain, SimTime at, Event ev) {
  DispatchContext* ctx = tl_ctx;
  if (ctx != nullptr && ctx->queue != this) ctx = nullptr;
  const SimTime current = ctx != nullptr ? ctx->now : global_now_;
  const std::uint32_t from_domain =
      ctx != nullptr ? ctx->domain : kControlDomain;
  if (at < current) at = current;
  if (domain != from_domain) {
    // The conservative-synchronization contract: crossing a domain costs
    // at least the lookahead. Applied at every shard count so the event
    // schedule is shard-count-invariant (docs/SIMNET.md).
    const SimTime earliest = current + lookahead();
    if (at < earliest) at = earliest;
  }
  ev.at = at;
  ev.domain = domain;
  ev.id = ctx != nullptr
              ? (util::mix64(ctx->event_id) << kChildIndexBits) |
                    (ctx->children++ & kChildIndexMask)
              : (root_seq_++ << kChildIndexBits);
  const std::size_t target = lane_of(domain);
  if (ctx != nullptr && target != ctx->lane) {
    Lane& lane = *lanes_[target];
    std::lock_guard<std::mutex> lock(lane.inbox_mu);
    lane.inbox.push_back(std::move(ev));
    return;
  }
  heap::push(lanes_[target]->heap, std::move(ev));
  if (lanes_.size() == 1)
    depth_gauge_->set(static_cast<double>(lanes_[0]->heap.size()));
}

void EventQueue::schedule_at(SimTime at, Callback fn) {
  Event ev;
  ev.fn = std::move(fn);
  enqueue(current_domain(), at, std::move(ev));
}

void EventQueue::schedule_after(SimDuration delay, Callback fn) {
  schedule_at(now() + (delay < 0 ? 0 : delay), std::move(fn));
}

void EventQueue::schedule_on(std::uint32_t domain, SimTime at, Callback fn) {
  Event ev;
  ev.fn = std::move(fn);
  enqueue(domain, at, std::move(ev));
}

void EventQueue::schedule_raw_on(std::uint32_t domain, SimTime at, RawFn fn,
                                 void* arg) {
  Event ev;
  ev.raw = fn;
  ev.arg = arg;
  enqueue(domain, at, std::move(ev));
}

void EventQueue::set_shards(std::size_t count) {
  if (count < 1) count = 1;
  if (count == lanes_.size()) return;
  stop_workers();
  std::vector<Event> all;
  for (auto& lane : lanes_) {
    for (Event& ev : lane->heap) all.push_back(std::move(ev));
    std::lock_guard<std::mutex> lock(lane->inbox_mu);
    for (Event& ev : lane->inbox) all.push_back(std::move(ev));
  }
  lanes_.clear();
  for (std::size_t i = 0; i < count; ++i)
    lanes_.push_back(std::make_unique<Lane>());
  for (Event& ev : all)
    heap::push(lanes_[lane_of(ev.domain)]->heap, std::move(ev));
}

std::size_t EventQueue::pending() const {
  std::size_t total = 0;
  for (const auto& lane : lanes_) {
    total += lane->heap.size();
    std::lock_guard<std::mutex> lock(lane->inbox_mu);
    total += lane->inbox.size();
  }
  return total;
}

void EventQueue::dispatch_single_lane(Event ev) {
  Lane& lane = *lanes_[0];
  DispatchContext* ctx = tl_ctx;
  ctx->now = ev.at;
  ctx->domain = ev.domain;
  ctx->event_id = ev.id;
  ctx->children = 0;
  global_now_ = ev.at;
  lane.last_at = ev.at;
  if (pop_latency_ns_->enabled()) {
    const auto begin = std::chrono::steady_clock::now();
    if (ev.raw != nullptr)
      ev.raw(ev.arg);
    else
      ev.fn();
    const auto end = std::chrono::steady_clock::now();
    pop_latency_ns_->record(static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(end - begin)
            .count()));
    depth_gauge_->set(static_cast<double>(lane.heap.size()));
  } else {
    if (ev.raw != nullptr)
      ev.raw(ev.arg);
    else
      ev.fn();
  }
  events_processed_->add();
  ++lane.processed;
}

std::size_t EventQueue::run_single_lane(SimTime deadline, bool until_empty) {
  Lane& lane = *lanes_[0];
  DispatchContext ctx;
  ctx.queue = this;
  ctx.lane = 0;
  DispatchContext* previous = tl_ctx;
  tl_ctx = &ctx;
  std::size_t processed = 0;
  while (!lane.heap.empty() &&
         (until_empty || lane.heap.front().at <= deadline)) {
    dispatch_single_lane(heap::pop(lane.heap));
    ++processed;
  }
  tl_ctx = previous;
  return processed;
}

void EventQueue::run_lane_window(std::size_t lane_index, SimTime horizon) {
  Lane& lane = *lanes_[lane_index];
  DispatchContext ctx;
  ctx.queue = this;
  ctx.lane = lane_index;
  DispatchContext* previous = tl_ctx;
  tl_ctx = &ctx;
  std::size_t batch = 0;
  while (!lane.heap.empty() && lane.heap.front().at < horizon) {
    Event ev = heap::pop(lane.heap);
    ctx.now = ev.at;
    ctx.domain = ev.domain;
    ctx.event_id = ev.id;
    ctx.children = 0;
    lane.last_at = ev.at;
    if (ev.raw != nullptr)
      ev.raw(ev.arg);
    else
      ev.fn();
    ++batch;
  }
  tl_ctx = previous;
  if (batch != 0) {
    lane.processed += batch;
    events_processed_->add(batch);
  }
}

std::size_t EventQueue::run_sharded(SimTime deadline, bool until_empty) {
  ensure_workers();
  std::size_t processed_before = 0;
  for (const auto& lane : lanes_) processed_before += lane->processed;
  constexpr SimTime kNone = std::numeric_limits<SimTime>::max();
  while (true) {
    // Inboxes are empty here (flushed at the previous barrier), so the
    // next window start is the min over lane heap heads.
    SimTime window_start = kNone;
    for (const auto& lane : lanes_) {
      if (!lane->heap.empty() && lane->heap.front().at < window_start)
        window_start = lane->heap.front().at;
    }
    if (window_start == kNone) break;
    if (!until_empty && window_start > deadline) break;
    SimTime horizon = window_start + lookahead();
    if (horizon <= window_start)  // overflow guard: run the rest in one go
      horizon = kNone;
    if (!until_empty && deadline < kNone - 1 && horizon > deadline + 1)
      horizon = deadline + 1;  // run_until's deadline is inclusive
    {
      std::lock_guard<std::mutex> lock(barrier_mu_);
      window_horizon_ = horizon;
      workers_done_ = 0;
      ++window_gen_;
    }
    window_start_cv_.notify_all();
    run_lane_window(0, horizon);
    {
      std::unique_lock<std::mutex> lock(barrier_mu_);
      window_done_cv_.wait(
          lock, [this] { return workers_done_ == workers_.size(); });
    }
    for (auto& lane : lanes_) {
      if (lane->last_at > global_now_) global_now_ = lane->last_at;
      std::lock_guard<std::mutex> lock(lane->inbox_mu);
      for (Event& ev : lane->inbox) heap::push(lane->heap, std::move(ev));
      lane->inbox.clear();
    }
  }
  std::size_t processed_after = 0;
  for (const auto& lane : lanes_) processed_after += lane->processed;
  return processed_after - processed_before;
}

void EventQueue::ensure_workers() {
  if (workers_.size() + 1 == lanes_.size()) return;
  stop_workers();
  stopping_ = false;
  for (std::size_t i = 1; i < lanes_.size(); ++i)
    workers_.emplace_back([this, i] { worker_main(i); });
}

void EventQueue::stop_workers() {
  if (workers_.empty()) return;
  {
    std::lock_guard<std::mutex> lock(barrier_mu_);
    stopping_ = true;
  }
  window_start_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
  workers_.clear();
  stopping_ = false;
  window_gen_ = 0;
}

void EventQueue::worker_main(std::size_t lane_index) {
  std::uint64_t seen_gen = 0;
  while (true) {
    SimTime horizon;
    {
      std::unique_lock<std::mutex> lock(barrier_mu_);
      window_start_cv_.wait(lock, [this, seen_gen] {
        return stopping_ || window_gen_ != seen_gen;
      });
      if (stopping_) return;
      seen_gen = window_gen_;
      horizon = window_horizon_;
    }
    run_lane_window(lane_index, horizon);
    {
      std::lock_guard<std::mutex> lock(barrier_mu_);
      ++workers_done_;
    }
    window_done_cv_.notify_one();
  }
}

std::size_t EventQueue::run() {
  if (lanes_.size() == 1) return run_single_lane(0, /*until_empty=*/true);
  return run_sharded(0, /*until_empty=*/true);
}

std::size_t EventQueue::run_until(SimTime deadline) {
  std::size_t processed;
  if (lanes_.size() == 1) {
    processed = run_single_lane(deadline, /*until_empty=*/false);
  } else {
    processed = run_sharded(deadline, /*until_empty=*/false);
  }
  if (global_now_ < deadline) global_now_ = deadline;
  return processed;
}

}  // namespace debuglet::simnet
