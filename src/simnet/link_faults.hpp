// Wire-level fault injection (the link chaos layer).
//
// HostFaultPlan (host_faults.hpp) faults the NODES; this module faults the
// WIRE. The paper's premise (§II) is that forwarding devices damage and
// discriminate traffic, and §VI-E assumes operators may actively misbehave
// — a LinkFaultPlan schedules that misbehaviour for one DIRECTED link:
//
//   * corruption  — flip a few random bits in the frame. The receive path
//                   must notice (IPv4/ICMP checksums, obs/wire digests) or
//                   knowingly accept damaged payload bytes;
//   * truncation  — chop the frame short, leaving a valid-looking IPv4
//                   header claiming more bytes than arrive;
//   * duplication — emit extra copies, each with an independent extra
//                   delay (switch retransmit / multipath re-merge);
//   * reordering  — hold a packet back by a random extra delay so later
//                   packets overtake it (a forced reordering burst);
//   * flaps       — timed windows where the link is down entirely. Because
//                   plans are per DIRECTION, a flap on one direction only
//                   is an asymmetric partition.
//
// Conventions mirror HostFaultPlan: windows are [start, end) with end <=
// start meaning "never" (kAlways spans everything), builder shorthands
// chain, and every stochastic choice draws from an Rng forked off the
// scenario seed — equal-seed chaos runs stay bit-identical.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "util/bytes.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace debuglet::simnet {

/// A [start, end) activity window; end <= start is inert.
struct FaultWindow {
  SimTime start = 0;
  SimTime end = std::numeric_limits<SimTime>::max();

  bool active_at(SimTime t) const { return t >= start && t < end; }
};

inline constexpr FaultWindow kAlways{};

/// Seeded bit corruption of in-flight frames.
struct CorruptSpec {
  double probability_pm = 0.0;     // per-copy chance, per mille
  std::uint32_t max_bit_flips = 8; // each hit flips 1..max bits
  FaultWindow window = kAlways;
};

/// Frames chopped short mid-flight (a cut-through switch losing its tail).
struct TruncateSpec {
  double probability_pm = 0.0;  // per-copy chance, per mille
  FaultWindow window = kAlways; // truncates to uniform [1, size-1] bytes
};

/// Extra copies of a frame, each delayed independently.
struct DuplicateSpec {
  double probability_pm = 0.0;  // per-packet chance, per mille
  std::uint32_t max_copies = 1; // extra copies per duplicated packet
  double extra_delay_min_ms = 0.1;
  double extra_delay_max_ms = 5.0;  // per-copy uniform extra delay
  FaultWindow window = kAlways;
};

/// Forced reordering: held-back packets let later ones overtake.
struct ReorderSpec {
  double probability_pm = 0.0;      // per-packet chance, per mille
  double max_extra_delay_ms = 10.0; // held back uniform (0, max]
  FaultWindow window = kAlways;
};

/// How one delivered copy of a frame was damaged in flight. The damage is
/// a pure function of this record (the seed captures every random choice
/// made at traverse time), so it can be applied to the wire bytes later —
/// at delivery — without touching the link's RNG again.
struct WireDamage {
  /// kCorrupt flips bits anywhere in the frame (random wire noise);
  /// kMangle flips bits at or after `offset` only — a DPI middlebox
  /// rewriting application payload while leaving the headers (and their
  /// checksums) intact, per the middlebox chaos layer.
  enum class Kind : std::uint8_t { kNone, kCorrupt, kTruncate, kMangle };
  Kind kind = Kind::kNone;
  std::uint64_t seed = 0;        // positions derive from this, splitmix64
  std::uint32_t bit_flips = 0;   // kCorrupt/kMangle: how many bits to flip
  std::uint32_t truncate_to = 0; // kTruncate: surviving byte count
  std::uint32_t offset = 0;      // kMangle: first eligible byte

  bool damaged() const { return kind != Kind::kNone; }
};

/// Applies recorded damage to a frame in place (no-op for kNone).
void apply_wire_damage(Bytes& wire, const WireDamage& damage);

/// Per-link running totals of injected wire faults — the ground truth the
/// localizer attaches to segments as delivery-integrity evidence.
struct LinkIntegrityStats {
  std::uint64_t corrupted = 0;
  std::uint64_t truncated = 0;
  std::uint64_t duplicated = 0;  // extra copies emitted
  std::uint64_t reordered = 0;
  std::uint64_t flap_dropped = 0;

  LinkIntegrityStats& operator+=(const LinkIntegrityStats& o) {
    corrupted += o.corrupted;
    truncated += o.truncated;
    duplicated += o.duplicated;
    reordered += o.reordered;
    flap_dropped += o.flap_dropped;
    return *this;
  }
  std::uint64_t total() const {
    return corrupted + truncated + duplicated + reordered + flap_dropped;
  }
};

/// Delta of two cumulative counters (evidence windows: after - before).
inline LinkIntegrityStats operator-(LinkIntegrityStats a,
                                    const LinkIntegrityStats& b) {
  a.corrupted -= b.corrupted;
  a.truncated -= b.truncated;
  a.duplicated -= b.duplicated;
  a.reordered -= b.reordered;
  a.flap_dropped -= b.flap_dropped;
  return a;
}

/// The wire-fault schedule for one directed link. Composable with the
/// link's FaultSpec overlay and with HostFaultPlans at either end; an
/// empty plan costs nothing on the forwarding path.
class LinkFaultPlan {
 public:
  /// Builder shorthands; all return *this for chaining. The two-argument
  /// forms fault the whole run; pass a FaultWindow to scope them.
  LinkFaultPlan& corrupt(double probability_pm, std::uint32_t max_bit_flips = 8,
                         FaultWindow window = kAlways);
  LinkFaultPlan& truncate(double probability_pm, FaultWindow window = kAlways);
  LinkFaultPlan& duplicate(double probability_pm, std::uint32_t max_copies = 1,
                           FaultWindow window = kAlways);
  LinkFaultPlan& reorder(double probability_pm, double max_extra_delay_ms,
                         FaultWindow window = kAlways);
  /// The link is down during [start, end) — on this direction only, so a
  /// one-sided flap is an asymmetric partition.
  LinkFaultPlan& flap(SimTime start, SimTime end);

  bool empty() const {
    return corrupt_.probability_pm <= 0.0 && truncate_.probability_pm <= 0.0 &&
           duplicate_.probability_pm <= 0.0 && reorder_.probability_pm <= 0.0 &&
           flaps_.empty();
  }
  bool flapped_at(SimTime t) const {
    for (const FaultWindow& w : flaps_)
      if (w.active_at(t)) return true;
    return false;
  }

  const CorruptSpec& corruption() const { return corrupt_; }
  const TruncateSpec& truncation() const { return truncate_; }
  const DuplicateSpec& duplication() const { return duplicate_; }
  const ReorderSpec& reordering() const { return reorder_; }
  const std::vector<FaultWindow>& flaps() const { return flaps_; }

 private:
  CorruptSpec corrupt_;
  TruncateSpec truncate_;
  DuplicateSpec duplicate_;
  ReorderSpec reorder_;
  std::vector<FaultWindow> flaps_;
};

}  // namespace debuglet::simnet
