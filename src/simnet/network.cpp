#include "simnet/network.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/log.hpp"

namespace debuglet::simnet {

namespace {

// Per-domain RNG stream labels. Each domain's bundle forks purely from
// the scenario seed and the domain number, never from traffic-dependent
// state, so equal-seed runs draw identical streams at any shard count.
constexpr std::uint64_t kTransitRngSalt = 0x7A4E517ULL;
constexpr std::uint64_t kAccessRngSalt = 0xACCE55ULL;
constexpr std::uint64_t kIcmpRngSalt = 0x1C3BULL;
constexpr std::uint64_t kMiddleboxRngSalt = 0xD71B0CULL;

// Total duplication fan-out bound per original packet. The budget rides
// with each copy and halves on every fork, so the bound holds no matter
// which lane mints the copies.
constexpr int kMaxCopies = 16;

std::uint32_t clamp_u32(std::uint64_t v) {
  return static_cast<std::uint32_t>(std::min<std::uint64_t>(v, 0xFFFFFFFFULL));
}

}  // namespace

std::uint64_t flow_hash_of(const net::Packet& packet) {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a over the 5-tuple
  auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xFF;
      h *= 0x100000001b3ULL;
    }
  };
  mix(packet.ip.source.value);
  mix(packet.ip.destination.value);
  mix(packet.ip.protocol);
  std::uint16_t sport = 0, dport = 0;
  if (packet.udp) {
    sport = packet.udp->source_port;
    dport = packet.udp->destination_port;
  } else if (packet.tcp) {
    sport = packet.tcp->source_port;
    dport = packet.tcp->destination_port;
  }
  mix(static_cast<std::uint64_t>(sport) << 16 | dport);
  return h;
}

/// All mutable forwarding state owned by one domain. Only the event-queue
/// lane owning the domain ever touches it, so no field needs a lock.
struct SimulatedNetwork::DomainState {
  Rng transit_rng{0};
  Rng access_rng{0};
  Rng icmp_rng{0};
  Rng middlebox_rng{0};
  /// Drops counted while this domain was executing — the value INT hop
  /// records snapshot as drops_seen (a border router knows its own AS's
  /// tally, not a network-wide one).
  std::uint64_t drops = 0;
  // ICMP time-exceeded rate limiting (per-second window, per AS).
  std::int64_t icmp_window_second = -1;
  std::uint32_t icmp_sent_in_window = 0;
  /// Lazily cloned hop-program runtime (the DVM instance is mutated per
  /// run, so domains cannot share one).
  std::unique_ptr<telemetry::HopProgramRuntime> hop_runtime;
  /// Middlebox state of THIS AS (throttle windows + ground-truth tally),
  /// touched only on hop events homed here.
  MiddleboxRuntime mb_runtime;
  MiddleboxStats mb_stats;
};

/// One in-flight copy of a frame, moved hop by hop through raw events.
/// `packet.ip.ttl` keeps the as-sent value until the final hop (ICMP
/// time-exceeded quotes the original header); `ttl` tracks the live
/// decrementing value.
struct SimulatedNetwork::FlightCopy {
  SimulatedNetwork* net = nullptr;
  std::shared_ptr<const topology::AsPath> path;
  net::Packet packet;
  Bytes wire;
  SimTime sent_at = 0;
  net::Protocol protocol = net::Protocol::kUdp;
  std::uint64_t flow = 0;
  double delay_ms = 0.0;  // cumulative since sent_at, at entry of next_link
  std::size_t next_link = 0;
  std::uint8_t ttl = 0;
  int dup_budget = 0;
  bool int_active = false;
  telemetry::IntHeader int_header;  // records appended as hops are crossed
  std::vector<WireDamage> damages;
  Host* deliver_host = nullptr;  // captured at arrival, checked at delivery
};

struct SimulatedNetwork::FlightPool {
  std::mutex mu;
  std::vector<std::unique_ptr<FlightCopy>> all;  // owns every node
  std::vector<FlightCopy*> free_list;

  FlightCopy* acquire() {
    std::lock_guard<std::mutex> lock(mu);
    if (!free_list.empty()) {
      FlightCopy* fc = free_list.back();
      free_list.pop_back();
      return fc;
    }
    all.push_back(std::make_unique<FlightCopy>());
    return all.back().get();
  }

  void release(FlightCopy* fc) {
    // Drop per-packet state but keep buffer capacity for reuse.
    fc->path.reset();
    fc->packet = net::Packet{};
    fc->wire.clear();
    fc->damages.clear();
    fc->int_header = telemetry::IntHeader{};
    fc->int_active = false;
    fc->deliver_host = nullptr;
    std::lock_guard<std::mutex> lock(mu);
    free_list.push_back(fc);
  }
};

SimulatedNetwork::SimulatedNetwork(EventQueue& queue,
                                   topology::Topology topology,
                                   std::uint64_t seed)
    : queue_(queue),
      topology_(std::move(topology)),
      rng_(seed),
      seed_(seed),
      flights_(std::make_unique<FlightPool>()) {
  obs::MetricsRegistry& reg = obs::registry();
  for (net::Protocol p : net::kAllProtocols) {
    const obs::Labels labels{{"proto", net::protocol_name(p)}};
    obs_.sent[proto_index(p)] = &reg.counter("simnet.packets_sent", labels);
    obs_.delivered[proto_index(p)] =
        &reg.counter("simnet.packets_delivered", labels);
    obs_.dropped[proto_index(p)] =
        &reg.counter("simnet.packets_dropped", labels);
  }
  obs_.link_delay_ms = &reg.histogram("simnet.link.delay_ms");
  obs_.path_links = &reg.histogram("simnet.path_links");
  obs_.host_fault_egress_drops =
      &reg.counter("simnet.host_fault_drops", {{"side", "egress"}});
  obs_.host_fault_ingress_drops =
      &reg.counter("simnet.host_fault_drops", {{"side", "ingress"}});
  obs_.ttl_expired = &reg.counter("net.ttl_expired");
  obs_.int_pushes = &reg.counter("telemetry.int_pushes");
  obs_.int_truncations = &reg.counter("telemetry.int_truncations");
  obs_.hop_program_runs = &reg.counter("telemetry.hop_program_runs");
  obs_.hop_program_traps = &reg.counter("telemetry.hop_program_traps");

  // One DomainState per AS plus the control domain, up front: the index
  // is immutable once events run, so lanes can read it without locks.
  auto make_domain = [this](std::uint32_t d) {
    auto ds = std::make_unique<DomainState>();
    const std::uint64_t salt = static_cast<std::uint64_t>(d) << 20;
    ds->transit_rng = Rng(seed_).fork(kTransitRngSalt ^ salt);
    ds->access_rng = Rng(seed_).fork(kAccessRngSalt ^ salt);
    ds->icmp_rng = Rng(seed_).fork(kIcmpRngSalt ^ salt);
    ds->middlebox_rng = Rng(seed_).fork(kMiddleboxRngSalt ^ salt);
    domain_index_.insert(d, ds.get());
    domains_.push_back(std::move(ds));
  };
  make_domain(EventQueue::kControlDomain);
  for (topology::AsNumber asn : topology_.as_numbers())
    if (asn != EventQueue::kControlDomain) make_domain(asn);
}

SimulatedNetwork::~SimulatedNetwork() = default;

SimulatedNetwork::DomainState& SimulatedNetwork::domain_state(
    std::uint32_t domain) {
  DomainState** found = domain_index_.find(domain);
  return found != nullptr ? **found : *domains_.front();
}

SimulatedNetwork::DomainState& SimulatedNetwork::current_domain_state() {
  return domain_state(queue_.current_domain());
}

Status SimulatedNetwork::install_hop_program(vm::Module module,
                                             telemetry::HopProgramLimits
                                                 limits) {
  // Validate and translate once; domains clone their runtimes lazily from
  // the stored module.
  auto runtime = telemetry::HopProgramRuntime::create(module, limits);
  if (!runtime) return runtime.error();
  hop_module_ = std::move(module);
  hop_limits_ = limits;
  for (auto& ds : domains_) ds->hop_runtime.reset();
  return ok_status();
}

void SimulatedNetwork::clear_hop_program() {
  hop_module_.reset();
  for (auto& ds : domains_) ds->hop_runtime.reset();
}

SimulatedNetwork::LinkEntry* SimulatedNetwork::find_link(
    topology::InterfaceKey from, topology::InterfaceKey to) {
  LinkEntry* entry = links_.find(link_key(from));
  if (entry == nullptr || entry->to != to) return nullptr;
  return entry;
}

const SimulatedNetwork::LinkEntry* SimulatedNetwork::find_link(
    topology::InterfaceKey from, topology::InterfaceKey to) const {
  return const_cast<SimulatedNetwork*>(this)->find_link(from, to);
}

Status SimulatedNetwork::configure_link(topology::InterfaceKey from,
                                        topology::InterfaceKey to,
                                        LinkConfig config) {
  auto remote = topology_.remote_of(from);
  if (!remote) return remote.error();
  if (*remote != to)
    return fail("link " + from.to_string() + " does not reach " +
                to.to_string());
  auto model = std::make_unique<LinkModel>(std::move(config), rng_.fork(
      (static_cast<std::uint64_t>(from.asn) << 32) ^
      (static_cast<std::uint64_t>(from.interface) << 16) ^ to.asn ^
      (static_cast<std::uint64_t>(to.interface) << 48)));
  // The link's latency floor bounds how fast anything can cross it; the
  // smallest floor over all links is the queue's cross-shard lookahead.
  queue_.note_link_floor(duration::from_ms(model->floor_ms()));
  links_.insert(link_key(from), LinkEntry{to, std::move(model)});
  return ok_status();
}

Status SimulatedNetwork::configure_link_symmetric(topology::InterfaceKey a,
                                                  topology::InterfaceKey b,
                                                  LinkConfig config) {
  auto s1 = configure_link(a, b, config);
  if (!s1) return s1;
  return configure_link(b, a, config);
}

void SimulatedNetwork::configure_transit(topology::AsNumber asn,
                                         TransitConfig config) {
  transit_.insert(asn, config);
}

void SimulatedNetwork::configure_icmp_policy(topology::AsNumber asn,
                                             IcmpReplyPolicy policy) {
  icmp_policies_.insert(asn, policy);
}

Status SimulatedNetwork::attach_host(net::Ipv4Address address, Host* host,
                                     AccessConfig access) {
  if (host == nullptr) return fail("attach_host: null host");
  if (hosts_.contains(address))
    return fail("host already attached at " + address.to_string());
  auto [it, inserted] = hosts_.emplace(address, AttachedHost{host, access});
  host_index_.insert(address.value, &it->second);
  return ok_status();
}

void SimulatedNetwork::detach_host(net::Ipv4Address address) {
  hosts_.erase(address);
  // No erase on the flat index; rebuild from the (small) ordered map.
  host_index_.clear();
  for (auto& [addr, attached] : hosts_)
    host_index_.insert(addr.value, &attached);
}

net::Ipv4Address SimulatedNetwork::allocate_host_address(
    topology::AsNumber asn) {
  std::uint8_t& next = next_host_octet_[asn];
  if (next == 0) next = 200;
  const net::Ipv4Address addr(10, static_cast<std::uint8_t>(asn >> 8),
                              static_cast<std::uint8_t>(asn), next);
  ++next;
  return addr;
}

topology::AsNumber SimulatedNetwork::as_of(net::Ipv4Address address) const {
  return static_cast<topology::AsNumber>((address.value >> 8) & 0xFFFF);
}

std::uint32_t SimulatedNetwork::domain_of(net::Ipv4Address address) const {
  return (address.value & 0xFF) >= 200 ? as_of(address)
                                       : EventQueue::kControlDomain;
}

Result<std::shared_ptr<const topology::AsPath>> SimulatedNetwork::resolve_path(
    topology::AsNumber src, topology::AsNumber dst) const {
  if (auto it = pinned_paths_.find({src, dst}); it != pinned_paths_.end())
    return it->second;
  {
    std::lock_guard<std::mutex> lock(path_mu_);
    if (auto it = path_cache_.find({src, dst}); it != path_cache_.end())
      return it->second;
  }
  auto path = topology_.shortest_path(src, dst);
  if (!path) return fail(path.error_message());
  auto shared = std::make_shared<const topology::AsPath>(std::move(*path));
  std::lock_guard<std::mutex> lock(path_mu_);
  path_cache_[{src, dst}] = shared;
  return shared;
}

void SimulatedNetwork::pin_path(topology::AsNumber src, topology::AsNumber dst,
                                topology::AsPath path) {
  pinned_paths_[{src, dst}] =
      std::make_shared<const topology::AsPath>(std::move(path));
}

Status SimulatedNetwork::inject_fault(topology::InterfaceKey from,
                                      topology::InterfaceKey to,
                                      const FaultSpec& fault) {
  LinkEntry* entry = find_link(from, to);
  if (entry == nullptr)
    return fail("no configured link " + from.to_string() + " -> " +
                to.to_string());
  entry->model->inject_fault(fault);
  return ok_status();
}

Status SimulatedNetwork::clear_fault(topology::InterfaceKey from,
                                     topology::InterfaceKey to) {
  LinkEntry* entry = find_link(from, to);
  if (entry == nullptr)
    return fail("no configured link " + from.to_string() + " -> " +
                to.to_string());
  entry->model->clear_fault();
  return ok_status();
}

Status SimulatedNetwork::install_link_faults(topology::InterfaceKey from,
                                             topology::InterfaceKey to,
                                             LinkFaultPlan plan) {
  LinkEntry* entry = find_link(from, to);
  if (entry == nullptr)
    return fail("no configured link " + from.to_string() + " -> " +
                to.to_string());
  // The fault stream forks from the scenario seed and the link identity
  // alone (never from rng_, whose state depends on traffic so far), so
  // equal-seed runs damage identically no matter when plans are installed.
  const std::uint64_t label = (static_cast<std::uint64_t>(from.asn) << 32) ^
                              (static_cast<std::uint64_t>(from.interface)
                               << 16) ^
                              to.asn ^
                              (static_cast<std::uint64_t>(to.interface) << 48);
  entry->model->install_fault_plan(std::move(plan),
                                   Rng(seed_).fork(label ^ 0xFA177ULL));
  return ok_status();
}

Status SimulatedNetwork::clear_link_faults(topology::InterfaceKey from,
                                           topology::InterfaceKey to) {
  LinkEntry* entry = find_link(from, to);
  if (entry == nullptr)
    return fail("no configured link " + from.to_string() + " -> " +
                to.to_string());
  entry->model->clear_fault_plan();
  return ok_status();
}

LinkIntegrityStats SimulatedNetwork::link_integrity(
    topology::InterfaceKey from, topology::InterfaceKey to) const {
  const LinkEntry* entry = find_link(from, to);
  return entry == nullptr ? LinkIntegrityStats{} : entry->model->integrity();
}

Status SimulatedNetwork::install_host_faults(net::Ipv4Address address,
                                             HostFaultPlan plan) {
  if (!topology_.has_as(as_of(address)))
    return fail("install_host_faults: AS of " + address.to_string() +
                " unknown");
  host_faults_.insert(address.value, std::move(plan));
  return ok_status();
}

Status SimulatedNetwork::install_host_faults(topology::InterfaceKey key,
                                             HostFaultPlan plan) {
  if (!topology_.has_as(key.asn))
    return fail("install_host_faults: AS" + std::to_string(key.asn) +
                " unknown");
  return install_host_faults(topology_.address_of(key), std::move(plan));
}

void SimulatedNetwork::clear_host_faults(net::Ipv4Address address) {
  // The flat index has no erase; an empty plan resolves to kNone forever,
  // which is indistinguishable from no plan.
  if (host_faults_.find(address.value) != nullptr)
    host_faults_.insert(address.value, HostFaultPlan{});
}

HostFaultState SimulatedNetwork::host_fault_state(net::Ipv4Address address,
                                                  SimTime t) const {
  const HostFaultPlan* plan = host_faults_.find(address.value);
  return plan == nullptr ? HostFaultState{} : plan->state_at(t);
}

Status SimulatedNetwork::install_middlebox(topology::AsNumber asn,
                                           MiddleboxPlan plan) {
  if (!topology_.has_as(asn))
    return fail("install_middlebox: AS" + std::to_string(asn) + " unknown");
  MiddleboxEntry entry;
  entry.plan = std::move(plan);
  // Obs handles resolve once here; the hop path only bumps them.
  obs::MetricsRegistry& reg = obs::registry();
  const std::string asn_label = std::to_string(asn);
  for (std::size_t i = 0; i < kTrafficClassCount; ++i)
    entry.classified[i] = &reg.counter(
        "simnet.middlebox.classified",
        {{"class", traffic_class_name(static_cast<TrafficClass>(i))},
         {"asn", asn_label}});
  entry.dropped =
      &reg.counter("simnet.middlebox.dropped", {{"asn", asn_label}});
  entry.deprioritized =
      &reg.counter("simnet.middlebox.deprioritized", {{"asn", asn_label}});
  entry.mangled =
      &reg.counter("simnet.middlebox.mangled", {{"asn", asn_label}});
  entry.throttled =
      &reg.counter("simnet.middlebox.throttled", {{"asn", asn_label}});
  entry.exempted =
      &reg.counter("simnet.middlebox.exempted", {{"asn", asn_label}});
  entry.adaptive_matched = &reg.counter("simnet.middlebox.adaptive_matched",
                                        {{"asn", asn_label}});
  entry.adaptive_promoted = &reg.counter("simnet.middlebox.adaptive_promoted",
                                         {{"asn", asn_label}});
  entry.flows_evicted =
      &reg.counter("simnet.middlebox.flows_evicted", {{"asn", asn_label}});
  middleboxes_.insert(asn, std::move(entry));
  any_middlebox_ = true;
  return ok_status();
}

void SimulatedNetwork::clear_middlebox(topology::AsNumber asn) {
  // The flat index has no erase; an empty plan is skipped on the hop path,
  // which is indistinguishable from no middlebox.
  if (middleboxes_.find(asn) != nullptr)
    middleboxes_.insert(asn, MiddleboxEntry{});
}

MiddleboxStats SimulatedNetwork::middlebox_stats(topology::AsNumber asn)
    const {
  const DomainState* const* found = domain_index_.find(asn);
  return found != nullptr ? (*found)->mb_stats : MiddleboxStats{};
}

LinkModel* SimulatedNetwork::link_model(topology::InterfaceKey from,
                                        topology::InterfaceKey to) {
  LinkEntry* entry = find_link(from, to);
  return entry == nullptr ? nullptr : entry->model.get();
}

NetworkStats SimulatedNetwork::stats() const {
  NetworkStats out;
  for (net::Protocol p : net::kAllProtocols) {
    const std::size_t i = proto_index(p);
    if (auto v = sent_[i].load(std::memory_order_relaxed)) out.sent[p] = v;
    if (auto v = delivered_[i].load(std::memory_order_relaxed))
      out.delivered[p] = v;
    if (auto v = dropped_[i].load(std::memory_order_relaxed))
      out.dropped[p] = v;
  }
  return out;
}

void SimulatedNetwork::reset_stats() {
  for (auto& a : sent_) a.store(0, std::memory_order_relaxed);
  for (auto& a : delivered_) a.store(0, std::memory_order_relaxed);
  for (auto& a : dropped_) a.store(0, std::memory_order_relaxed);
  for (auto& ds : domains_) ds->drops = 0;
}

void SimulatedNetwork::count_drop(net::Protocol protocol) {
  dropped_[proto_index(protocol)].fetch_add(1, std::memory_order_relaxed);
  obs_.dropped[proto_index(protocol)]->add();
  current_domain_state().drops += 1;
}

Result<double> SimulatedNetwork::expected_path_delay_ms(
    const topology::AsPath& path, net::Protocol protocol) const {
  double total = 0.0;
  for (std::size_t i = 0; i + 1 < path.hops.size(); ++i) {
    const auto [from, to] = path.link_after(i);
    const LinkEntry* entry = find_link(from, to);
    if (entry == nullptr)
      return fail("unconfigured link " + from.to_string() + " -> " +
                  to.to_string());
    total += entry->model->expected_delay_ms(protocol, queue_.now());
  }
  for (std::size_t i = 1; i + 1 < path.hops.size(); ++i) {
    const TransitConfig* cfg = transit_.find(path.hops[i].asn);
    total += (cfg != nullptr ? *cfg : TransitConfig{}).delay_ms;
  }
  return total;
}

void SimulatedNetwork::expire_with_time_exceeded(
    const net::Packet& packet, const topology::PathHop& at,
    topology::InterfaceKey router, SimTime sent_at, double forward_delay_ms) {
  const IcmpReplyPolicy* found = icmp_policies_.find(at.asn);
  const IcmpReplyPolicy policy =
      found != nullptr ? *found : IcmpReplyPolicy{};
  if (!policy.time_exceeded_enabled) return;

  // Token-bucket-per-second rate limiting across the whole AS. The
  // counter lives in the AS's own domain state — this runs on the hop
  // event of the expiring border router, which that domain owns.
  DomainState& ds = domain_state(at.asn);
  if (policy.rate_limit_per_s > 0) {
    const std::int64_t second = queue_.now() / 1'000'000'000;
    if (ds.icmp_window_second != second) {
      ds.icmp_window_second = second;
      ds.icmp_sent_in_window = 0;
    }
    if (ds.icmp_sent_in_window >= policy.rate_limit_per_s) return;
    ++ds.icmp_sent_in_window;
  }

  const net::Ipv4Address router_address = topology_.address_of(router);
  auto reply = net::build_time_exceeded(packet, router_address);
  if (!reply) return;

  // The reply is generated on the SLOW PATH after the probe's forward
  // delay, then travels back through the regular network (so it sees
  // reverse-path treatment too — one of the biases the paper calls out).
  // The send itself is homed on the router's domain (the control plane:
  // border addresses) so its draws come from that domain's streams.
  double delay_ms = forward_delay_ms + policy.slow_path_ms;
  if (policy.slow_path_jitter_ms > 0.0)
    delay_ms += std::abs(ds.icmp_rng.normal(0.0, policy.slow_path_jitter_ms));
  queue_.schedule_on(
      EventQueue::kControlDomain,
      sent_at + duration::from_ms(std::max(delay_ms, 0.0)),
      [this, router_address, wire = std::move(*reply)]() mutable {
        auto status = send(router_address, std::move(wire));
        if (!status)
          DEBUGLET_LOG(kDebug, "simnet")
              << "time-exceeded send: " << status.error_message();
      });
}

Status SimulatedNetwork::send(net::Ipv4Address from_address, Bytes wire) {
  auto parsed = net::parse_packet(BytesView(wire.data(), wire.size()));
  if (!parsed) return fail("send: " + parsed.error_message());
  net::Packet packet = std::move(*parsed);
  if (packet.ip.source != from_address)
    return fail("send: IP source " + packet.ip.source.to_string() +
                " does not match sender " + from_address.to_string());

  const topology::AsNumber src_as = as_of(from_address);
  const topology::AsNumber dst_as = as_of(packet.ip.destination);
  if (!topology_.has_as(src_as))
    return fail("send: source AS" + std::to_string(src_as) + " unknown");
  if (!topology_.has_as(dst_as))
    return fail("send: destination AS" + std::to_string(dst_as) + " unknown");

  auto path_result = resolve_path(src_as, dst_as);
  if (!path_result) return fail("send: " + path_result.error_message());
  std::shared_ptr<const topology::AsPath> path = *path_result;

  const net::Protocol protocol = packet.protocol;
  const std::uint64_t flow = flow_hash_of(packet);
  sent_[proto_index(protocol)].fetch_add(1, std::memory_order_relaxed);
  obs_.sent[proto_index(protocol)]->add();
  obs_.path_links->record(static_cast<double>(path->hops.size()) - 1.0);

  const SimTime sent_at = queue_.now();

  // In-band telemetry: one branch when off. A packet opts in by carrying
  // a parseable IntHeader as its payload prefix (UDP/raw-IP only — the
  // other transports' checksums cover the payload, so a forwarding device
  // must not rewrite them). Malformed INT forwards untouched as an
  // ordinary opaque payload.
  telemetry::IntHeader int_prototype;
  bool int_active = false;
  if (int_enabled_ &&
      (protocol == net::Protocol::kUdp ||
       protocol == net::Protocol::kRawIp) &&
      telemetry::IntHeader::looks_like_int(
          BytesView(packet.payload.data(), packet.payload.size()))) {
    auto parsed_int = telemetry::IntHeader::parse(
        BytesView(packet.payload.data(), packet.payload.size()));
    if (parsed_int) {
      int_active = true;
      int_prototype = std::move(*parsed_int);
    }
  }

  // Host-level faults (chaos layer): a crashed sender is off and a
  // silenced one never gets its packets onto the wire. Either way the
  // packet is lost silently — not an error, exactly like dead hardware.
  const HostFaultState sender_state = host_fault_state(from_address, sent_at);
  if (sender_state.crashed() || sender_state.silent()) {
    count_drop(protocol);
    obs_.host_fault_egress_drops->add();
    return ok_status();
  }
  // A slow sender pays its service delay before the wire.
  double pre_wire_ms = sender_state.extra_delay_ms;

  // The sender's intra-AS access stub (zero for border-router hosts). The
  // jitter draw comes from the executing domain's stream — sends run on
  // the sender's home domain (hosts schedule their timers there).
  if (AttachedHost** attached = host_index_.find(from_address.value)) {
    const AccessConfig& access = (*attached)->access;
    double d = access.delay_ms;
    if (access.jitter_ms > 0.0)
      d += current_domain_state().access_rng.normal(0.0, access.jitter_ms);
    pre_wire_ms += std::max(d, 0.0);
  }

  // The walk is asynchronous from here on; surface unconfigured links now
  // (the classic inline walk failed on the first such crossing).
  const auto& hops = path->hops;
  for (std::size_t i = 0; i + 1 < hops.size(); ++i) {
    const auto [from, to] = path->link_after(i);
    if (find_link(from, to) == nullptr)
      return fail("send: unconfigured link " + from.to_string() + " -> " +
                  to.to_string());
  }

  FlightCopy* fc = flights_->acquire();
  fc->net = this;
  fc->path = path;
  fc->packet = std::move(packet);
  fc->wire = std::move(wire);
  fc->sent_at = sent_at;
  fc->protocol = protocol;
  fc->flow = flow;
  fc->delay_ms = pre_wire_ms;
  fc->next_link = 0;
  fc->ttl = fc->packet.ip.ttl;
  fc->dup_budget = kMaxCopies - 1;
  fc->int_active = int_active;
  fc->int_header = std::move(int_prototype);

  if (hops.size() == 1) {
    // Same-AS delivery: no inter-domain links, straight to the receiver.
    if (fc->int_active) {
      const Bytes block = fc->int_header.serialize();
      if (block.size() <= fc->packet.payload.size())
        std::copy(block.begin(), block.end(), fc->packet.payload.begin());
      auto rewired = net::serialize_packet(fc->packet);
      if (rewired) fc->wire = std::move(*rewired);
    }
    schedule_arrival(fc);
    return ok_status();
  }

  // First crossing: homed on the link's ingress AS, timed at the midpoint
  // of the link's latency floor so both event edges clear the queue's
  // cross-shard lookahead (which is half the smallest floor).
  const auto [from0, to0] = path->link_after(0);
  const LinkEntry* first = find_link(from0, to0);
  queue_.schedule_raw_on(
      hops[1].asn,
      sent_at + duration::from_ms(pre_wire_ms + first->model->floor_ms() * 0.5),
      &SimulatedNetwork::hop_event, fc);
  return ok_status();
}

void SimulatedNetwork::hop_event(void* arg) {
  FlightCopy* fc = static_cast<FlightCopy*>(arg);
  fc->net->process_hop(fc);
}

void SimulatedNetwork::arrival_event(void* arg) {
  FlightCopy* fc = static_cast<FlightCopy*>(arg);
  fc->net->process_arrival(fc);
}

void SimulatedNetwork::delivery_event(void* arg) {
  FlightCopy* fc = static_cast<FlightCopy*>(arg);
  fc->net->process_delivery(fc);
}

void SimulatedNetwork::push_int_record(FlightCopy* fc,
                                       const topology::PathHop& hop,
                                       bool interior, double link_delay_ms,
                                       double residence_ms,
                                       double delay_at_entry_ms,
                                       std::uint32_t queue_depth,
                                       std::uint32_t wire_faults,
                                       DomainState& ds) {
  telemetry::HopRecord rec;
  rec.asn = hop.asn;
  rec.ingress_interface = hop.ingress;
  rec.egress_interface = interior ? hop.egress : 0;
  rec.ingress_ns =
      fc->sent_at + duration::from_ms(delay_at_entry_ms + link_delay_ms);
  rec.egress_ns = rec.ingress_ns + duration::from_ms(residence_ms);
  rec.queue_depth = queue_depth;
  rec.drops_seen = clamp_u32(ds.drops);
  rec.wire_faults = wire_faults;
  if (fc->int_header.push(rec)) {
    obs_.int_pushes->add();
    if (fc->int_header.hop_program_requested() && hop_module_.has_value()) {
      if (ds.hop_runtime == nullptr) {
        // First hop-program run in this domain: clone the runtime. The
        // module was validated at install, so creation cannot fail; the
        // clone's behaviour is identical to any other (run_hop resets the
        // instance's globals per run).
        auto runtime =
            telemetry::HopProgramRuntime::create(*hop_module_, hop_limits_);
        if (runtime) ds.hop_runtime = std::move(*runtime);
      }
      if (ds.hop_runtime != nullptr) {
        obs_.hop_program_runs->add();
        const telemetry::HopRunResult hp = ds.hop_runtime->run_hop(
            fc->int_header, fc->int_header.hop_count() - 1, rec,
            duration::from_ms(link_delay_ms));
        if (hp.trapped) obs_.hop_program_traps->add();
      }
    }
  } else {
    obs_.int_truncations->add();
  }
}

void SimulatedNetwork::process_hop(FlightCopy* fc) {
  const topology::AsPath& path = *fc->path;
  const std::size_t k = fc->next_link;
  const auto [from, to] = path.link_after(k);
  LinkEntry* entry = find_link(from, to);
  if (entry == nullptr) {  // defensive; send() pre-checked the path
    count_drop(fc->protocol);
    flights_->release(fc);
    return;
  }
  LinkModel& link = *entry->model;
  const TraverseOutcome out = link.traverse(
      fc->protocol, fc->flow, fc->sent_at, fc->packet.ip.source,
      fc->packet.ip.destination, fc->packet.ip.total_length);
  if (out.copies.empty()) {
    count_drop(fc->protocol);
    flights_->release(fc);
    return;
  }

  // INT observations for this link. active_episodes() re-queries the time
  // traverse() already advanced to, so the RNG stream is the same whether
  // telemetry is on or off.
  std::uint32_t queue_depth = 0;
  std::uint32_t wire_faults = 0;
  if (fc->int_active) {
    queue_depth = link.active_episodes(fc->sent_at);
    wire_faults = clamp_u32(link.integrity().total());
  }
  const std::uint8_t next_ttl = fc->ttl > 0 ? fc->ttl - 1 : 0;
  const topology::PathHop& hop = path.hops[k + 1];
  const bool interior = k + 2 < path.hops.size();

  // Fork the extra copies the link's fault plan minted; each child takes
  // half the parent's remaining duplication budget, so total fan-out per
  // original packet stays bounded by kMaxCopies wherever copies appear.
  struct Pending {
    FlightCopy* flight;
    double link_delay_ms;
    WireDamage damage;
    bool primary;
  };
  std::vector<Pending> pending;
  pending.reserve(out.copies.size());
  for (std::size_t c = 1; c < out.copies.size(); ++c) {
    if (fc->dup_budget <= 0) break;
    fc->dup_budget -= 1;
    int child_budget = fc->dup_budget / 2;
    fc->dup_budget -= child_budget;
    FlightCopy* child = flights_->acquire();
    child->net = this;
    child->path = fc->path;
    child->packet = fc->packet;
    child->wire = fc->wire;
    child->sent_at = fc->sent_at;
    child->protocol = fc->protocol;
    child->flow = fc->flow;
    child->delay_ms = fc->delay_ms;
    child->next_link = k;
    child->ttl = fc->ttl;
    child->dup_budget = child_budget;
    child->int_active = fc->int_active;
    child->int_header = fc->int_header;
    child->damages = fc->damages;
    pending.push_back(Pending{child, duration::to_ms(out.copies[c].delay),
                              out.copies[c].damage, false});
  }
  const DeliveryCopy& primary = out.copies.front();
  pending.push_back(Pending{fc, duration::to_ms(primary.delay),
                            primary.damage, true});

  DomainState& ds = current_domain_state();
  const TransitConfig* transit_cfg =
      interior ? transit_.find(hop.asn) : nullptr;
  const TransitConfig transit =
      transit_cfg != nullptr ? *transit_cfg : TransitConfig{};

  for (Pending& p : pending) {
    FlightCopy* f = p.flight;
    if (p.primary) obs_.link_delay_ms->record(p.link_delay_ms);
    const double entry_ms = f->delay_ms;
    f->delay_ms += p.link_delay_ms;
    if (p.damage.damaged()) f->damages.push_back(p.damage);
    f->ttl = next_ttl;

    if (next_ttl == 0 && interior) {
      // Expired at the ingress border router of hops[k+1]. The quoted
      // packet keeps its as-sent header (fc->packet.ip.ttl is original).
      obs_.ttl_expired->add();
      expire_with_time_exceeded(f->packet, hop, to, f->sent_at, f->delay_ms);
      count_drop(f->protocol);
      flights_->release(f);
      continue;
    }

    // The adversarial middlebox of the AS being entered (if any) inspects
    // every copy at the ingress border — before transit, so added dwell
    // lands in the same INT residence the per-hop record exposes. This
    // event is homed on hop.asn's lane, so the draw order, throttle
    // windows and ground-truth tally are all lane-owned (shard-invariant).
    double residence_ms = 0.0;
    if (any_middlebox_) {
      if (MiddleboxEntry* mb = middleboxes_.find(hop.asn);
          mb != nullptr && !mb->plan.empty()) {
        const MiddleboxVerdict verdict =
            apply_middlebox(mb->plan, f->packet, queue_.now(),
                            ds.middlebox_rng, ds.mb_runtime, ds.mb_stats);
        if (verdict.inspected) {
          mb->classified[static_cast<std::size_t>(verdict.cls)]->add();
          if (verdict.exempted) mb->exempted->add();
          if (verdict.adaptive_matched) mb->adaptive_matched->add();
          if (verdict.promoted_signature) mb->adaptive_promoted->add();
          if (verdict.flows_evicted > 0)
            mb->flows_evicted->add(verdict.flows_evicted);
          if (verdict.dropped) {
            (verdict.throttled ? mb->throttled : mb->dropped)->add();
            count_drop(f->protocol);
            flights_->release(f);
            continue;
          }
          if (verdict.extra_delay_ms > 0.0) {
            mb->deprioritized->add();
            residence_ms += verdict.extra_delay_ms;
          }
          if (verdict.mangled) {
            mb->mangled->add();
            f->damages.push_back(verdict.damage);
          }
        }
      }
    }

    // Intra-AS transit applies only to ASes the packet crosses border to
    // border. Endpoints (hosts and border-router executors) do not
    // traverse their own AS interior — this is what lets an executor pair
    // at the two ends of an inter-domain link measure just that link
    // (paper Fig. 6). Each surviving copy draws its own transit jitter
    // from this domain's stream.
    if (interior) {
      if (ds.transit_rng.chance(transit.loss_pm / 1000.0)) {
        count_drop(f->protocol);
        flights_->release(f);
        continue;  // loss is a silent network outcome, not an error
      }
      residence_ms += transit.delay_ms;
      if (transit.jitter_ms > 0.0)
        residence_ms += std::abs(ds.transit_rng.normal(0.0, transit.jitter_ms));
    }

    if (f->int_active)
      push_int_record(f, hop, interior, p.link_delay_ms, residence_ms,
                      entry_ms, queue_depth, wire_faults, ds);
    f->delay_ms += residence_ms;
    f->next_link = k + 1;

    if (!interior) {
      // Arrived at the destination AS's border: stamp the surviving TTL
      // into the delivered header, splice the INT stack, and hand the
      // copy to the destination's own domain.
      f->packet.ip.ttl = f->ttl;
      if (f->int_active) {
        const Bytes block = f->int_header.serialize();
        if (block.size() <= f->packet.payload.size())
          std::copy(block.begin(), block.end(), f->packet.payload.begin());
        auto rewired = net::serialize_packet(f->packet);
        if (rewired) f->wire = std::move(*rewired);
      }
      schedule_arrival(f);
      continue;
    }

    // Next crossing, homed on the next link's ingress AS and timed at the
    // midpoint of that link's latency floor.
    const auto [nfrom, nto] = path.link_after(k + 1);
    const LinkEntry* next_entry = find_link(nfrom, nto);
    if (next_entry == nullptr) {  // defensive; send() pre-checked
      count_drop(f->protocol);
      flights_->release(f);
      continue;
    }
    queue_.schedule_raw_on(
        path.hops[k + 2].asn,
        f->sent_at +
            duration::from_ms(f->delay_ms +
                              next_entry->model->floor_ms() * 0.5),
        &SimulatedNetwork::hop_event, f);
  }
}

void SimulatedNetwork::schedule_arrival(FlightCopy* fc) {
  queue_.schedule_raw_on(domain_of(fc->packet.ip.destination),
                         fc->sent_at + duration::from_ms(fc->delay_ms),
                         &SimulatedNetwork::arrival_event, fc);
}

void SimulatedNetwork::process_arrival(FlightCopy* fc) {
  const net::Ipv4Address dst = fc->packet.ip.destination;
  AttachedHost** attached = host_index_.find(dst.value);
  if (attached == nullptr) {
    // No listener: the packet blackholes at the destination. Counted as a
    // drop; sending is still not an error (mirrors real networks).
    count_drop(fc->protocol);
    DEBUGLET_LOG(kDebug, "simnet") << "no host at " << dst.to_string();
    flights_->release(fc);
    return;
  }

  // The receiver's intra-AS access stub, drawn from this domain's stream.
  DomainState& ds = current_domain_state();
  const AccessConfig& access = (*attached)->access;
  double access_ms = access.delay_ms;
  if (access.jitter_ms > 0.0)
    access_ms += ds.access_rng.normal(0.0, access.jitter_ms);
  const SimTime nominal =
      queue_.now() + duration::from_ms(std::max(access_ms, 0.0));

  // A slow destination adds its service delay, evaluated at the nominal
  // arrival instant (the fault window that matters is the one the packet
  // lands in, not the one it was sent in).
  const double extra_ms = host_fault_state(dst, nominal).extra_delay_ms;
  fc->deliver_host = (*attached)->host;
  queue_.schedule_raw_on(queue_.current_domain(),
                         nominal + duration::from_ms(extra_ms),
                         &SimulatedNetwork::delivery_event, fc);
}

void SimulatedNetwork::process_delivery(FlightCopy* fc) {
  const net::Ipv4Address dst = fc->packet.ip.destination;
  // Hosts may detach while packets are in flight; deliver only if the
  // same host is still attached.
  AttachedHost** attached = host_index_.find(dst.value);
  if (attached == nullptr || (*attached)->host != fc->deliver_host) {
    count_drop(fc->protocol);
    flights_->release(fc);
    return;
  }
  // A destination that crashed while the packet was in flight drops it
  // at arrival. Silenced hosts still receive — they just never answer.
  if (host_fault_state(dst, queue_.now()).crashed()) {
    count_drop(fc->protocol);
    obs_.host_fault_ingress_drops->add();
    flights_->release(fc);
    return;
  }
  Host* host = fc->deliver_host;
  Delivery d{std::move(fc->packet), fc->sent_at, queue_.now(), *fc->path};
  if (!fc->damages.empty()) {
    // Damaged copies carry their wire bytes and are re-parsed at arrival —
    // the receive path, not the sender, discovers in-flight damage. The
    // rejection is typed and counted, never silent.
    Bytes damaged = fc->wire;
    for (const WireDamage& dmg : fc->damages) apply_wire_damage(damaged, dmg);
    net::ParseErrorKind kind = net::ParseErrorKind::kNone;
    auto reparsed =
        net::parse_packet(BytesView(damaged.data(), damaged.size()), &kind);
    if (!reparsed) {
      count_drop(fc->protocol);
      obs::registry()
          .counter("net.parse_rejected",
                   {{"reason", net::parse_error_name(kind)}})
          .add();
      DEBUGLET_LOG(kDebug, "simnet")
          << "damaged frame rejected at " << dst.to_string() << ": "
          << reparsed.error_message();
      flights_->release(fc);
      return;
    }
    // Damage the checksums cannot see (e.g. UDP payload bits) arrives
    // as-is: application layers must defend themselves (obs/wire digests,
    // probe-sample filtering).
    d.packet = std::move(*reparsed);
  }
  delivered_[proto_index(d.packet.protocol)].fetch_add(
      1, std::memory_order_relaxed);
  obs_.delivered[proto_index(d.packet.protocol)]->add();
  host->on_packet(d);
  flights_->release(fc);
}

}  // namespace debuglet::simnet
