#include "simnet/network.hpp"

#include <algorithm>
#include <cmath>

#include "util/log.hpp"

namespace debuglet::simnet {

namespace {

net::Protocol protocol_of(const net::Packet& p) { return p.protocol; }

}  // namespace

std::uint64_t flow_hash_of(const net::Packet& packet) {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a over the 5-tuple
  auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xFF;
      h *= 0x100000001b3ULL;
    }
  };
  mix(packet.ip.source.value);
  mix(packet.ip.destination.value);
  mix(packet.ip.protocol);
  std::uint16_t sport = 0, dport = 0;
  if (packet.udp) {
    sport = packet.udp->source_port;
    dport = packet.udp->destination_port;
  } else if (packet.tcp) {
    sport = packet.tcp->source_port;
    dport = packet.tcp->destination_port;
  }
  mix(static_cast<std::uint64_t>(sport) << 16 | dport);
  return h;
}

SimulatedNetwork::SimulatedNetwork(EventQueue& queue,
                                   topology::Topology topology,
                                   std::uint64_t seed)
    : queue_(queue), topology_(std::move(topology)), rng_(seed), seed_(seed) {
  obs::MetricsRegistry& reg = obs::registry();
  for (net::Protocol p : net::kAllProtocols) {
    const obs::Labels labels{{"proto", net::protocol_name(p)}};
    obs_.sent[proto_index(p)] = &reg.counter("simnet.packets_sent", labels);
    obs_.delivered[proto_index(p)] =
        &reg.counter("simnet.packets_delivered", labels);
    obs_.dropped[proto_index(p)] =
        &reg.counter("simnet.packets_dropped", labels);
  }
  obs_.link_delay_ms = &reg.histogram("simnet.link.delay_ms");
  obs_.path_links = &reg.histogram("simnet.path_links");
  obs_.host_fault_egress_drops =
      &reg.counter("simnet.host_fault_drops", {{"side", "egress"}});
  obs_.host_fault_ingress_drops =
      &reg.counter("simnet.host_fault_drops", {{"side", "ingress"}});
  obs_.ttl_expired = &reg.counter("net.ttl_expired");
  obs_.int_pushes = &reg.counter("telemetry.int_pushes");
  obs_.int_truncations = &reg.counter("telemetry.int_truncations");
  obs_.hop_program_runs = &reg.counter("telemetry.hop_program_runs");
  obs_.hop_program_traps = &reg.counter("telemetry.hop_program_traps");
}

Status SimulatedNetwork::install_hop_program(vm::Module module,
                                             telemetry::HopProgramLimits
                                                 limits) {
  auto runtime = telemetry::HopProgramRuntime::create(std::move(module),
                                                      limits);
  if (!runtime) return runtime.error();
  hop_program_ = std::move(*runtime);
  return ok_status();
}

Status SimulatedNetwork::configure_link(topology::InterfaceKey from,
                                        topology::InterfaceKey to,
                                        LinkConfig config) {
  auto remote = topology_.remote_of(from);
  if (!remote) return remote.error();
  if (*remote != to)
    return fail("link " + from.to_string() + " does not reach " +
                to.to_string());
  links_[{from, to}] =
      std::make_unique<LinkModel>(std::move(config), rng_.fork(
          (static_cast<std::uint64_t>(from.asn) << 32) ^
          (static_cast<std::uint64_t>(from.interface) << 16) ^ to.asn ^
          (static_cast<std::uint64_t>(to.interface) << 48)));
  return ok_status();
}

Status SimulatedNetwork::configure_link_symmetric(topology::InterfaceKey a,
                                                  topology::InterfaceKey b,
                                                  LinkConfig config) {
  auto s1 = configure_link(a, b, config);
  if (!s1) return s1;
  return configure_link(b, a, config);
}

void SimulatedNetwork::configure_transit(topology::AsNumber asn,
                                         TransitConfig config) {
  transit_[asn] = config;
}

void SimulatedNetwork::configure_icmp_policy(topology::AsNumber asn,
                                             IcmpReplyPolicy policy) {
  icmp_policies_[asn] = policy;
}

Status SimulatedNetwork::attach_host(net::Ipv4Address address, Host* host,
                                     AccessConfig access) {
  if (host == nullptr) return fail("attach_host: null host");
  if (hosts_.contains(address))
    return fail("host already attached at " + address.to_string());
  hosts_[address] = AttachedHost{host, access};
  return ok_status();
}

void SimulatedNetwork::detach_host(net::Ipv4Address address) {
  hosts_.erase(address);
}

net::Ipv4Address SimulatedNetwork::allocate_host_address(
    topology::AsNumber asn) {
  std::uint8_t& next = next_host_octet_[asn];
  if (next == 0) next = 200;
  const net::Ipv4Address addr(10, static_cast<std::uint8_t>(asn >> 8),
                              static_cast<std::uint8_t>(asn), next);
  ++next;
  return addr;
}

topology::AsNumber SimulatedNetwork::as_of(net::Ipv4Address address) const {
  return static_cast<topology::AsNumber>((address.value >> 8) & 0xFFFF);
}

Result<topology::AsPath> SimulatedNetwork::resolve_path(
    topology::AsNumber src, topology::AsNumber dst) const {
  if (auto it = pinned_paths_.find({src, dst}); it != pinned_paths_.end())
    return it->second;
  if (auto it = path_cache_.find({src, dst}); it != path_cache_.end())
    return it->second;
  auto path = topology_.shortest_path(src, dst);
  if (!path) return path;
  path_cache_[{src, dst}] = *path;
  return path;
}

void SimulatedNetwork::pin_path(topology::AsNumber src, topology::AsNumber dst,
                                topology::AsPath path) {
  pinned_paths_[{src, dst}] = std::move(path);
}

Status SimulatedNetwork::inject_fault(topology::InterfaceKey from,
                                      topology::InterfaceKey to,
                                      const FaultSpec& fault) {
  auto it = links_.find({from, to});
  if (it == links_.end())
    return fail("no configured link " + from.to_string() + " -> " +
                to.to_string());
  it->second->inject_fault(fault);
  return ok_status();
}

Status SimulatedNetwork::clear_fault(topology::InterfaceKey from,
                                     topology::InterfaceKey to) {
  auto it = links_.find({from, to});
  if (it == links_.end())
    return fail("no configured link " + from.to_string() + " -> " +
                to.to_string());
  it->second->clear_fault();
  return ok_status();
}

Status SimulatedNetwork::install_link_faults(topology::InterfaceKey from,
                                             topology::InterfaceKey to,
                                             LinkFaultPlan plan) {
  auto it = links_.find({from, to});
  if (it == links_.end())
    return fail("no configured link " + from.to_string() + " -> " +
                to.to_string());
  // The fault stream forks from the scenario seed and the link identity
  // alone (never from rng_, whose state depends on traffic so far), so
  // equal-seed runs damage identically no matter when plans are installed.
  const std::uint64_t label = (static_cast<std::uint64_t>(from.asn) << 32) ^
                              (static_cast<std::uint64_t>(from.interface)
                               << 16) ^
                              to.asn ^
                              (static_cast<std::uint64_t>(to.interface) << 48);
  it->second->install_fault_plan(std::move(plan),
                                 Rng(seed_).fork(label ^ 0xFA177ULL));
  return ok_status();
}

Status SimulatedNetwork::clear_link_faults(topology::InterfaceKey from,
                                           topology::InterfaceKey to) {
  auto it = links_.find({from, to});
  if (it == links_.end())
    return fail("no configured link " + from.to_string() + " -> " +
                to.to_string());
  it->second->clear_fault_plan();
  return ok_status();
}

LinkIntegrityStats SimulatedNetwork::link_integrity(
    topology::InterfaceKey from, topology::InterfaceKey to) const {
  auto it = links_.find({from, to});
  return it == links_.end() ? LinkIntegrityStats{} : it->second->integrity();
}

Status SimulatedNetwork::install_host_faults(net::Ipv4Address address,
                                             HostFaultPlan plan) {
  if (!topology_.has_as(as_of(address)))
    return fail("install_host_faults: AS of " + address.to_string() +
                " unknown");
  host_faults_[address] = std::move(plan);
  return ok_status();
}

Status SimulatedNetwork::install_host_faults(topology::InterfaceKey key,
                                             HostFaultPlan plan) {
  if (!topology_.has_as(key.asn))
    return fail("install_host_faults: AS" + std::to_string(key.asn) +
                " unknown");
  return install_host_faults(topology_.address_of(key), std::move(plan));
}

void SimulatedNetwork::clear_host_faults(net::Ipv4Address address) {
  host_faults_.erase(address);
}

HostFaultState SimulatedNetwork::host_fault_state(net::Ipv4Address address,
                                                  SimTime t) const {
  auto it = host_faults_.find(address);
  if (it == host_faults_.end()) return HostFaultState{};
  return it->second.state_at(t);
}

LinkModel* SimulatedNetwork::link_model(topology::InterfaceKey from,
                                        topology::InterfaceKey to) {
  auto it = links_.find({from, to});
  return it == links_.end() ? nullptr : it->second.get();
}

Result<double> SimulatedNetwork::expected_path_delay_ms(
    const topology::AsPath& path, net::Protocol protocol) const {
  double total = 0.0;
  for (std::size_t i = 0; i + 1 < path.hops.size(); ++i) {
    const auto [from, to] = path.link_after(i);
    auto it = links_.find({from, to});
    if (it == links_.end())
      return fail("unconfigured link " + from.to_string() + " -> " +
                  to.to_string());
    total += it->second->expected_delay_ms(protocol, queue_.now());
  }
  for (std::size_t i = 1; i + 1 < path.hops.size(); ++i) {
    auto it = transit_.find(path.hops[i].asn);
    total += (it != transit_.end() ? it->second : TransitConfig{}).delay_ms;
  }
  return total;
}

void SimulatedNetwork::expire_with_time_exceeded(
    const net::Packet& packet, const topology::PathHop& at,
    topology::InterfaceKey router, double forward_delay_ms) {
  auto policy_it = icmp_policies_.find(at.asn);
  const IcmpReplyPolicy policy =
      policy_it != icmp_policies_.end() ? policy_it->second
                                        : IcmpReplyPolicy{};
  if (!policy.time_exceeded_enabled) return;

  // Token-bucket-per-second rate limiting across the whole AS.
  if (policy.rate_limit_per_s > 0) {
    RateLimiterState& state = icmp_rate_[at.asn];
    const std::int64_t second = queue_.now() / 1'000'000'000;
    if (state.window_second != second) {
      state.window_second = second;
      state.sent_in_window = 0;
    }
    if (state.sent_in_window >= policy.rate_limit_per_s) return;
    ++state.sent_in_window;
  }

  const net::Ipv4Address router_address = topology_.address_of(router);
  auto reply = net::build_time_exceeded(packet, router_address);
  if (!reply) return;

  // The reply is generated on the SLOW PATH after the probe's forward
  // delay, then travels back through the regular network (so it sees
  // reverse-path treatment too — one of the biases the paper calls out).
  double delay_ms = forward_delay_ms + policy.slow_path_ms;
  if (policy.slow_path_jitter_ms > 0.0)
    delay_ms += std::abs(rng_.normal(0.0, policy.slow_path_jitter_ms));
  queue_.schedule_after(duration::from_ms(std::max(delay_ms, 0.0)),
                        [this, router_address,
                         wire = std::move(*reply)]() mutable {
                          auto status = send(router_address, std::move(wire));
                          if (!status)
                            DEBUGLET_LOG(kDebug, "simnet")
                                << "time-exceeded send: "
                                << status.error_message();
                        });
}

Status SimulatedNetwork::send(net::Ipv4Address from_address, Bytes wire) {
  auto parsed = net::parse_packet(BytesView(wire.data(), wire.size()));
  if (!parsed) return fail("send: " + parsed.error_message());
  net::Packet packet = std::move(*parsed);
  if (packet.ip.source != from_address)
    return fail("send: IP source " + packet.ip.source.to_string() +
                " does not match sender " + from_address.to_string());

  const topology::AsNumber src_as = as_of(from_address);
  const topology::AsNumber dst_as = as_of(packet.ip.destination);
  if (!topology_.has_as(src_as))
    return fail("send: source AS" + std::to_string(src_as) + " unknown");
  if (!topology_.has_as(dst_as))
    return fail("send: destination AS" + std::to_string(dst_as) + " unknown");

  auto path_result = resolve_path(src_as, dst_as);
  if (!path_result) return fail("send: " + path_result.error_message());
  const topology::AsPath path = *path_result;

  const net::Protocol protocol = protocol_of(packet);
  ++stats_.sent[protocol];
  obs_.sent[proto_index(protocol)]->add();
  obs_.path_links->record(static_cast<double>(path.hops.size()) - 1.0);

  const std::uint64_t flow = flow_hash_of(packet);
  const SimTime sent_at = queue_.now();
  double total_delay_ms = 0.0;

  // In-band telemetry: one branch when off. A packet opts in by carrying
  // a parseable IntHeader as its payload prefix (UDP/raw-IP only — the
  // other transports' checksums cover the payload, so a forwarding device
  // must not rewrite them). Malformed INT forwards untouched as an
  // ordinary opaque payload.
  telemetry::IntHeader int_prototype;
  bool int_active = false;
  if (int_enabled_ &&
      (protocol == net::Protocol::kUdp ||
       protocol == net::Protocol::kRawIp) &&
      telemetry::IntHeader::looks_like_int(
          BytesView(packet.payload.data(), packet.payload.size()))) {
    auto parsed = telemetry::IntHeader::parse(
        BytesView(packet.payload.data(), packet.payload.size()));
    if (parsed) {
      int_active = true;
      int_prototype = std::move(*parsed);
    }
  }

  // Host-level faults (chaos layer): a crashed sender is off and a
  // silenced one never gets its packets onto the wire. Either way the
  // packet is lost silently — not an error, exactly like dead hardware.
  const HostFaultState sender_state = host_fault_state(from_address, sent_at);
  if (sender_state.crashed() || sender_state.silent()) {
    ++stats_.dropped[protocol];
    obs_.dropped[proto_index(protocol)]->add();
    obs_.host_fault_egress_drops->add();
    return ok_status();
  }
  // A slow sender pays its service delay before the wire.
  total_delay_ms += sender_state.extra_delay_ms;

  // The sender's intra-AS access stub (zero for border-router hosts).
  if (auto it = hosts_.find(from_address); it != hosts_.end()) {
    const AccessConfig& access = it->second.access;
    double d = access.delay_ms;
    if (access.jitter_ms > 0.0) d += rng_.normal(0.0, access.jitter_ms);
    total_delay_ms += std::max(d, 0.0);
  }

  // Inter-domain links along the path, with TTL handling: each crossing
  // decrements the TTL; packets that hit zero before the final hop expire
  // at that border router, which may answer with ICMP time exceeded per
  // its AS's policy (enabling — and rate-limiting — traceroute).
  //
  // A link's fault plan can mint extra copies of a frame, so the walk is a
  // worklist: each copy continues through the remaining links with its own
  // delay, TTL and accumulated damage. The healthy case stays a single
  // pass with the exact RNG draw order the pre-fault-layer code used.
  const double pre_wire_ms = total_delay_ms;  // before the first link
  std::vector<TransitCopy> work;
  work.push_back(TransitCopy{0, total_delay_ms, packet.ip.ttl, {}, {}});
  std::size_t copies_emitted = 1;
  constexpr std::size_t kMaxCopies = 16;  // duplication fan-out bound

  while (!work.empty()) {
    TransitCopy cur = std::move(work.back());
    work.pop_back();
    double delay_ms = cur.delay_ms;
    std::uint8_t ttl = cur.ttl;
    std::vector<WireDamage> damages = std::move(cur.damages);
    std::vector<IntCrossing> crossings = std::move(cur.crossings);
    bool consumed = false;  // dropped or expired mid-path

    for (std::size_t i = cur.next_link; i + 1 < path.hops.size(); ++i) {
      const auto [from, to] = path.link_after(i);
      auto it = links_.find({from, to});
      if (it == links_.end())
        return fail("send: unconfigured link " + from.to_string() + " -> " +
                    to.to_string());
      const TraverseOutcome out = it->second->traverse(
          protocol, flow, sent_at, packet.ip.source, packet.ip.destination,
          packet.ip.total_length);
      if (out.copies.empty()) {
        ++stats_.dropped[protocol];
        obs_.dropped[proto_index(protocol)]->add();
        consumed = true;
        break;
      }
      // INT observations for this link. active_episodes() re-queries the
      // time traverse() already advanced to, so the RNG stream is the
      // same whether telemetry is on or off.
      std::uint32_t link_queue_depth = 0;
      std::uint32_t link_wire_faults = 0;
      if (int_active) {
        link_queue_depth = it->second->active_episodes(sent_at);
        link_wire_faults = static_cast<std::uint32_t>(std::min<std::uint64_t>(
            it->second->integrity().total(), 0xFFFFFFFFULL));
      }
      const std::uint8_t next_ttl = ttl > 0 ? ttl - 1 : 0;
      // Extra copies fork off here and continue from the next link with
      // their own delay and damage; the primary copy continues in-line.
      for (std::size_t c = 1; c < out.copies.size(); ++c) {
        if (copies_emitted >= kMaxCopies) break;
        const DeliveryCopy& extra = out.copies[c];
        TransitCopy forked;
        forked.next_link = i + 1;
        forked.delay_ms = delay_ms + duration::to_ms(extra.delay);
        forked.ttl = next_ttl;
        forked.damages = damages;
        if (extra.damage.damaged()) forked.damages.push_back(extra.damage);
        if (int_active) {
          forked.crossings = crossings;
          forked.crossings.push_back(IntCrossing{
              duration::to_ms(extra.delay), link_queue_depth,
              link_wire_faults});
        }
        work.push_back(std::move(forked));
        ++copies_emitted;
      }
      const DeliveryCopy& primary = out.copies.front();
      obs_.link_delay_ms->record(duration::to_ms(primary.delay));
      delay_ms += duration::to_ms(primary.delay);
      if (primary.damage.damaged()) damages.push_back(primary.damage);
      if (int_active)
        crossings.push_back(IntCrossing{duration::to_ms(primary.delay),
                                        link_queue_depth, link_wire_faults});
      ttl = next_ttl;
      if (ttl == 0 && i + 2 < path.hops.size()) {
        // Expired at the ingress border router of hops[i+1].
        obs_.ttl_expired->add();
        expire_with_time_exceeded(packet, path.hops[i + 1], to, delay_ms);
        ++stats_.dropped[protocol];
        obs_.dropped[proto_index(protocol)]->add();
        consumed = true;
        break;
      }
    }
    if (consumed) continue;  // other copies (if any) still run

    // Intra-AS transit applies only to ASes the packet crosses border to
    // border. Endpoints (hosts and border-router executors) do not
    // traverse their own AS interior — this is what lets an executor pair
    // at the two ends of an inter-domain link measure just that link
    // (paper Fig. 6). Each surviving copy draws its own transit jitter.
    bool dropped = false;
    std::vector<double> transit_ms;
    if (int_active) transit_ms.assign(path.hops.size(), 0.0);
    for (std::size_t i = 1; i + 1 < path.hops.size(); ++i) {
      const topology::PathHop& hop = path.hops[i];
      auto it = transit_.find(hop.asn);
      const TransitConfig cfg =
          it != transit_.end() ? it->second : TransitConfig{};
      if (rng_.chance(cfg.loss_pm / 1000.0)) {
        dropped = true;
        break;
      }
      double d = cfg.delay_ms;
      if (cfg.jitter_ms > 0.0) d += std::abs(rng_.normal(0.0, cfg.jitter_ms));
      delay_ms += d;
      if (int_active) transit_ms[i] = d;
    }
    if (dropped) {
      ++stats_.dropped[protocol];
      obs_.dropped[proto_index(protocol)]->add();
      continue;  // loss is a silent network outcome, not an error
    }
    // The delivered frame carries the on-path TTL decrements, and — when
    // this packet opted into telemetry — the per-hop INT record stack.
    net::Packet out_packet = packet;
    out_packet.ip.ttl = ttl;
    if (int_active) {
      Bytes int_wire = wire;
      apply_int_records(out_packet, int_wire, int_prototype, crossings,
                        transit_ms, path, sent_at, pre_wire_ms);
      schedule_delivery(out_packet, int_wire, damages, path, sent_at,
                        delay_ms);
    } else {
      schedule_delivery(out_packet, wire, damages, path, sent_at, delay_ms);
    }
  }
  return ok_status();
}

void SimulatedNetwork::apply_int_records(
    net::Packet& packet, Bytes& wire, const telemetry::IntHeader& prototype,
    const std::vector<IntCrossing>& crossings,
    const std::vector<double>& transit_ms, const topology::AsPath& path,
    SimTime sent_at, double pre_wire_ms) {
  telemetry::IntHeader header = prototype;
  // Drop-counter snapshot: one network-wide tally, same value at every hop
  // of this walk (the walk is instantaneous in sim time).
  std::uint64_t drops_total = 0;
  for (const auto& [proto, count] : stats_.dropped) drops_total += count;
  const std::uint32_t drops_seen = static_cast<std::uint32_t>(
      std::min<std::uint64_t>(drops_total, 0xFFFFFFFFULL));
  const bool run_program =
      header.hop_program_requested() && hop_program_ != nullptr;

  // Record k is appended by the ingress border router of path.hops[k+1]:
  // ingress is the cumulative wire time up to and across link k, egress
  // adds the AS's interior transit (zero at the final AS, which delivers
  // locally instead of forwarding).
  double cum_ms = pre_wire_ms;
  for (std::size_t k = 0; k < crossings.size(); ++k) {
    if (k + 1 >= path.hops.size()) break;
    cum_ms += crossings[k].link_delay_ms;
    const topology::PathHop& hop = path.hops[k + 1];
    const bool interior = k + 2 < path.hops.size();
    const double residence_ms = interior ? transit_ms[k + 1] : 0.0;
    telemetry::HopRecord rec;
    rec.asn = hop.asn;
    rec.ingress_interface = hop.ingress;
    rec.egress_interface = interior ? hop.egress : 0;
    rec.ingress_ns = sent_at + duration::from_ms(cum_ms);
    rec.egress_ns = rec.ingress_ns + duration::from_ms(residence_ms);
    rec.queue_depth = crossings[k].queue_depth;
    rec.drops_seen = drops_seen;
    rec.wire_faults = crossings[k].wire_faults;
    if (header.push(rec)) {
      obs_.int_pushes->add();
      if (run_program) {
        obs_.hop_program_runs->add();
        const telemetry::HopRunResult hp = hop_program_->run_hop(
            header, header.hop_count() - 1, rec,
            duration::from_ms(crossings[k].link_delay_ms));
        if (hp.trapped) obs_.hop_program_traps->add();
      }
    } else {
      obs_.int_truncations->add();
    }
    cum_ms += residence_ms;
  }

  // Splice the updated header back over the payload prefix (serialized
  // size is fixed by max_hops, so the frame length never changes) and
  // re-serialize the frame so lengths and checksums stay valid.
  const Bytes block = header.serialize();
  if (block.size() <= packet.payload.size())
    std::copy(block.begin(), block.end(), packet.payload.begin());
  auto rewired = net::serialize_packet(packet);
  if (rewired) wire = std::move(*rewired);
}

void SimulatedNetwork::schedule_delivery(const net::Packet& packet,
                                         const Bytes& wire,
                                         const std::vector<WireDamage>& damages,
                                         const topology::AsPath& path,
                                         SimTime sent_at, double delay_ms) {
  const net::Protocol protocol = packet.protocol;
  auto host_it = hosts_.find(packet.ip.destination);
  if (host_it == hosts_.end()) {
    // No listener: the packet blackholes at the destination. Counted as a
    // drop; sending is still not an error (mirrors real networks).
    ++stats_.dropped[protocol];
    obs_.dropped[proto_index(protocol)]->add();
    DEBUGLET_LOG(kDebug, "simnet")
        << "no host at " << packet.ip.destination.to_string();
    return;
  }

  // The receiver's intra-AS access stub.
  {
    const AccessConfig& access = host_it->second.access;
    double d = access.delay_ms;
    if (access.jitter_ms > 0.0) d += rng_.normal(0.0, access.jitter_ms);
    delay_ms += std::max(d, 0.0);
  }

  Host* host = host_it->second.host;
  const net::Ipv4Address dst = packet.ip.destination;
  // A slow destination adds its service delay, evaluated at the nominal
  // arrival instant (the fault window that matters is the one the packet
  // lands in, not the one it was sent in).
  delay_ms += host_fault_state(dst, sent_at + duration::from_ms(delay_ms))
                  .extra_delay_ms;
  const SimDuration delay = duration::from_ms(delay_ms);

  // Damaged copies carry their wire bytes and are re-parsed at arrival —
  // the receive path, not the sender, discovers in-flight damage. The
  // rejection is typed and counted, never silent.
  std::optional<Bytes> damaged_wire;
  if (!damages.empty()) {
    damaged_wire = wire;
    for (const WireDamage& d : damages) apply_wire_damage(*damaged_wire, d);
  }

  queue_.schedule_after(delay, [this, host, dst, protocol, sent_at, path,
                                pkt = packet,
                                dw = std::move(damaged_wire)]() mutable {
    // Hosts may detach while packets are in flight; deliver only if the
    // same host is still attached.
    auto it = hosts_.find(dst);
    if (it == hosts_.end() || it->second.host != host) {
      ++stats_.dropped[protocol];
      obs_.dropped[proto_index(protocol)]->add();
      return;
    }
    // A destination that crashed while the packet was in flight drops it
    // at arrival. Silenced hosts still receive — they just never answer.
    if (host_fault_state(dst, queue_.now()).crashed()) {
      ++stats_.dropped[protocol];
      obs_.dropped[proto_index(protocol)]->add();
      obs_.host_fault_ingress_drops->add();
      return;
    }
    Delivery d{std::move(pkt), sent_at, queue_.now(), path};
    if (dw.has_value()) {
      net::ParseErrorKind kind = net::ParseErrorKind::kNone;
      auto reparsed =
          net::parse_packet(BytesView(dw->data(), dw->size()), &kind);
      if (!reparsed) {
        ++stats_.dropped[protocol];
        obs_.dropped[proto_index(protocol)]->add();
        obs::registry()
            .counter("net.parse_rejected",
                     {{"reason", net::parse_error_name(kind)}})
            .add();
        DEBUGLET_LOG(kDebug, "simnet")
            << "damaged frame rejected at " << dst.to_string() << ": "
            << reparsed.error_message();
        return;
      }
      // Damage the checksums cannot see (e.g. UDP payload bits) arrives
      // as-is: application layers must defend themselves (obs/wire
      // digests, probe-sample filtering).
      d.packet = std::move(*reparsed);
    }
    ++stats_.delivered[d.packet.protocol];
    obs_.delivered[proto_index(d.packet.protocol)]->add();
    host->on_packet(d);
  });
}

}  // namespace debuglet::simnet
