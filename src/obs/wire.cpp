#include "obs/wire.hpp"

#include <algorithm>

namespace debuglet::obs::wire {

namespace {

// Layer magics: 'DSNP' (snapshot) and 'DSCK' (chunk), read as u32 LE.
constexpr std::uint32_t kSnapshotMagic = 0x504E5344;
constexpr std::uint32_t kChunkMagic = 0x4B435344;
constexpr std::uint8_t kChunkVersion = 1;

constexpr std::uint8_t kind_to_u8(MetricRow::Kind k) {
  return static_cast<std::uint8_t>(k);
}

Result<MetricRow::Kind> kind_from_u8(std::uint8_t v) {
  switch (v) {
    case kind_to_u8(MetricRow::Kind::kCounter):
      return MetricRow::Kind::kCounter;
    case kind_to_u8(MetricRow::Kind::kGauge):
      return MetricRow::Kind::kGauge;
    case kind_to_u8(MetricRow::Kind::kHistogram):
      return MetricRow::Kind::kHistogram;
    default:
      return fail("snapshot: unknown metric kind " + std::to_string(v));
  }
}

}  // namespace

std::uint64_t digest(BytesView data) {
  // FNV-1a, 64-bit.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::uint8_t b : data) {
    h ^= b;
    h *= 0x100000001b3ULL;
  }
  return h;
}

Bytes encode_snapshot(const std::vector<MetricRow>& rows) {
  BytesWriter w;
  w.u32(kSnapshotMagic);
  w.u16(kSnapshotVersion);
  w.u16(0);  // flags, reserved
  w.varint(rows.size());
  for (const MetricRow& row : rows) {
    w.str(row.name);
    w.varint(row.labels.size());
    for (const auto& [key, value] : row.labels) {
      w.str(key);
      w.str(value);
    }
    w.u8(kind_to_u8(row.kind));
    switch (row.kind) {
      case MetricRow::Kind::kCounter:
        w.varint(row.count);  // counters are integral; varint compresses
        break;
      case MetricRow::Kind::kGauge:
        w.f64(row.value);
        w.f64(row.max);
        break;
      case MetricRow::Kind::kHistogram: {
        w.varint(row.count);
        w.f64(row.sum);
        w.f64(row.min);
        w.f64(row.max);
        // Buckets as (index, count) pairs of the non-zero entries — the
        // vector is kBucketCount long but almost entirely zeros.
        std::size_t nonzero = 0;
        for (std::uint64_t b : row.hist_buckets) nonzero += b != 0 ? 1 : 0;
        w.varint(nonzero);
        for (std::size_t i = 0; i < row.hist_buckets.size(); ++i) {
          if (row.hist_buckets[i] == 0) continue;
          w.varint(i);
          w.varint(row.hist_buckets[i]);
        }
        break;
      }
    }
  }
  const std::uint64_t d = digest(BytesView(w.bytes().data(), w.size()));
  w.u64(d);
  return w.take();
}

Result<std::vector<MetricRow>> decode_snapshot(BytesView data) {
  if (data.size() < 8 + 8) return fail("snapshot: truncated header");
  const BytesView body(data.data(), data.size() - 8);
  BytesReader trailer(BytesView(data.data() + data.size() - 8, 8));
  auto claimed = trailer.u64();
  if (!claimed) return claimed.error();
  if (*claimed != digest(body))
    return fail("snapshot: digest mismatch (truncated or corrupted)");

  BytesReader r(body);
  auto magic = r.u32();
  if (!magic) return magic.error();
  if (*magic != kSnapshotMagic) return fail("snapshot: bad magic");
  auto version = r.u16();
  if (!version) return version.error();
  if (*version == 0 || *version > kSnapshotVersion)
    return fail("snapshot: unsupported version " + std::to_string(*version));
  auto flags = r.u16();
  if (!flags) return flags.error();
  auto row_count = r.varint();
  if (!row_count) return row_count.error();
  // Each row is at least ~4 bytes; a count far beyond the body length is
  // malformed regardless of the digest.
  if (*row_count > body.size()) return fail("snapshot: implausible row count");

  std::vector<MetricRow> rows;
  rows.reserve(*row_count);
  for (std::uint64_t i = 0; i < *row_count; ++i) {
    MetricRow row;
    auto name = r.str();
    if (!name) return name.error();
    row.name = std::move(*name);
    auto label_count = r.varint();
    if (!label_count) return label_count.error();
    if (*label_count > 256) return fail("snapshot: too many labels");
    for (std::uint64_t l = 0; l < *label_count; ++l) {
      auto key = r.str();
      if (!key) return key.error();
      auto value = r.str();
      if (!value) return value.error();
      row.labels.emplace_back(std::move(*key), std::move(*value));
    }
    auto kind_byte = r.u8();
    if (!kind_byte) return kind_byte.error();
    auto kind = kind_from_u8(*kind_byte);
    if (!kind) return kind.error();
    row.kind = *kind;
    switch (row.kind) {
      case MetricRow::Kind::kCounter: {
        auto v = r.varint();
        if (!v) return v.error();
        row.count = *v;
        row.value = static_cast<double>(*v);
        break;
      }
      case MetricRow::Kind::kGauge: {
        auto v = r.f64();
        if (!v) return v.error();
        auto m = r.f64();
        if (!m) return m.error();
        row.value = *v;
        row.max = *m;
        break;
      }
      case MetricRow::Kind::kHistogram: {
        auto count = r.varint();
        if (!count) return count.error();
        auto sum = r.f64();
        if (!sum) return sum.error();
        auto min = r.f64();
        if (!min) return min.error();
        auto max = r.f64();
        if (!max) return max.error();
        row.count = *count;
        row.sum = *sum;
        row.min = *min;
        row.max = *max;
        row.hist_buckets.assign(Histogram::kBucketCount, 0);
        auto nonzero = r.varint();
        if (!nonzero) return nonzero.error();
        if (*nonzero > Histogram::kBucketCount)
          return fail("snapshot: more non-zero buckets than layout has");
        for (std::uint64_t b = 0; b < *nonzero; ++b) {
          auto index = r.varint();
          if (!index) return index.error();
          if (*index >= Histogram::kBucketCount)
            return fail("snapshot: bucket index out of range");
          auto bucket = r.varint();
          if (!bucket) return bucket.error();
          row.hist_buckets[*index] = *bucket;
        }
        // Percentiles are derived, not shipped: recompute through a
        // scratch histogram so remote and local interpolation agree.
        Histogram h;
        if (auto s = h.restore(row.hist_buckets, row.count, row.sum, row.min,
                               row.max);
            !s)
          return s.error();
        row.p50 = h.p50();
        row.p90 = h.p90();
        row.p99 = h.p99();
        break;
      }
    }
    rows.push_back(std::move(row));
  }
  if (!r.exhausted()) return fail("snapshot: trailing bytes before digest");
  return rows;
}

std::size_t chunk_count(std::size_t encoded_size,
                        std::uint32_t chunk_payload) {
  if (chunk_payload == 0) return 0;
  return std::max<std::size_t>(
      1, (encoded_size + chunk_payload - 1) / chunk_payload);
}

Result<Bytes> build_chunk(BytesView encoded_snapshot, std::size_t index,
                          std::uint32_t chunk_payload) {
  if (chunk_payload < kMinChunkPayload || chunk_payload > kMaxChunkPayload)
    return fail("chunk payload " + std::to_string(chunk_payload) +
                " outside [" + std::to_string(kMinChunkPayload) + ", " +
                std::to_string(kMaxChunkPayload) + "]");
  const std::size_t count = chunk_count(encoded_snapshot.size(), chunk_payload);
  if (count > kMaxChunks)
    return fail("snapshot needs " + std::to_string(count) +
                " chunks, format carries at most " +
                std::to_string(kMaxChunks));
  if (index >= count)
    return fail("chunk index " + std::to_string(index) + " out of range [0, " +
                std::to_string(count) + ")");
  const std::size_t begin = index * chunk_payload;
  const std::size_t length =
      std::min<std::size_t>(chunk_payload, encoded_snapshot.size() - begin);

  BytesWriter w;
  w.u32(kChunkMagic);
  w.u8(kChunkVersion);
  // Chunks of different snapshots must never merge: the id is derived from
  // the snapshot digest (its low 32 bits), which the encoding stores in
  // its last 8 bytes.
  std::uint32_t snapshot_id = 0;
  if (encoded_snapshot.size() >= 8) {
    const std::uint8_t* d =
        encoded_snapshot.data() + encoded_snapshot.size() - 8;
    snapshot_id = static_cast<std::uint32_t>(d[0]) |
                  static_cast<std::uint32_t>(d[1]) << 8 |
                  static_cast<std::uint32_t>(d[2]) << 16 |
                  static_cast<std::uint32_t>(d[3]) << 24;
  }
  w.u32(snapshot_id);
  w.u16(static_cast<std::uint16_t>(index));
  w.u16(static_cast<std::uint16_t>(count));
  w.u32(static_cast<std::uint32_t>(encoded_snapshot.size()));
  w.blob(BytesView(encoded_snapshot.data() + begin, length));
  w.u64(digest(BytesView(w.bytes().data(), w.size())));
  return w.take();
}

Result<Chunk> parse_chunk(BytesView data) {
  if (data.size() < 8 + 8) return fail("chunk: truncated");
  const BytesView body(data.data(), data.size() - 8);
  BytesReader trailer(BytesView(data.data() + data.size() - 8, 8));
  auto claimed = trailer.u64();
  if (!claimed) return claimed.error();
  if (*claimed != digest(body))
    return fail("chunk: digest mismatch (truncated or corrupted)");

  BytesReader r(body);
  auto magic = r.u32();
  if (!magic) return magic.error();
  if (*magic != kChunkMagic) return fail("chunk: bad magic");
  auto version = r.u8();
  if (!version) return version.error();
  if (*version == 0 || *version > kChunkVersion)
    return fail("chunk: unsupported version " + std::to_string(*version));
  Chunk chunk;
  auto id = r.u32();
  if (!id) return id.error();
  chunk.snapshot_id = *id;
  auto index = r.u16();
  if (!index) return index.error();
  chunk.index = *index;
  auto count = r.u16();
  if (!count) return count.error();
  chunk.count = *count;
  auto total = r.u32();
  if (!total) return total.error();
  chunk.total_length = *total;
  auto payload = r.blob();
  if (!payload) return payload.error();
  chunk.payload = std::move(*payload);
  if (!r.exhausted()) return fail("chunk: trailing bytes");

  if (chunk.count == 0) return fail("chunk: zero chunk count");
  if (chunk.index >= chunk.count)
    return fail("chunk: index " + std::to_string(chunk.index) +
                " >= count " + std::to_string(chunk.count));
  if (chunk.payload.size() > chunk.total_length)
    return fail("chunk: payload longer than the whole snapshot");
  return chunk;
}

Status SnapshotAssembler::add_chunk(BytesView chunk_wire) {
  auto chunk = parse_chunk(chunk_wire);
  if (!chunk) return chunk.error();
  if (expected_ == 0) {
    expected_ = chunk->count;
    snapshot_id_ = chunk->snapshot_id;
    total_length_ = chunk->total_length;
    have_.assign(expected_, false);
    parts_.assign(expected_, Bytes{});
  } else {
    if (chunk->snapshot_id != snapshot_id_)
      return fail("chunk belongs to a different snapshot");
    if (chunk->count != expected_ || chunk->total_length != total_length_)
      return fail("chunk disagrees about the snapshot's shape");
  }
  if (have_[chunk->index]) {
    if (parts_[chunk->index] != chunk->payload)
      return fail("duplicate chunk " + std::to_string(chunk->index) +
                  " with different payload");
    return ok_status();  // harmless retransmission
  }
  have_[chunk->index] = true;
  parts_[chunk->index] = std::move(chunk->payload);
  ++received_;
  return ok_status();
}

bool SnapshotAssembler::complete() const {
  return expected_ != 0 && received_ == expected_;
}

std::vector<std::uint16_t> SnapshotAssembler::missing() const {
  std::vector<std::uint16_t> out;
  for (std::size_t i = 0; i < expected_; ++i)
    if (!have_[i]) out.push_back(static_cast<std::uint16_t>(i));
  return out;
}

Result<std::vector<MetricRow>> SnapshotAssembler::finish() const {
  if (!complete())
    return fail("snapshot incomplete: " + std::to_string(received_) + "/" +
                std::to_string(expected_) + " chunks");
  Bytes encoded;
  encoded.reserve(total_length_);
  for (const Bytes& part : parts_)
    encoded.insert(encoded.end(), part.begin(), part.end());
  if (encoded.size() != total_length_)
    return fail("reassembled " + std::to_string(encoded.size()) +
                " bytes, chunks declared " + std::to_string(total_length_));
  return decode_snapshot(BytesView(encoded.data(), encoded.size()));
}

void SnapshotAssembler::reset() {
  snapshot_id_ = 0;
  total_length_ = 0;
  expected_ = received_ = 0;
  have_.clear();
  parts_.clear();
}

Status merge_rows(MetricsRegistry& target, const std::vector<MetricRow>& rows,
                  const std::string& remote_host) {
  for (const MetricRow& row : rows) {
    for (const auto& [key, _] : row.labels) {
      if (key == kRemoteHostLabel)
        return fail("row '" + row.name +
                    "' already carries a remote_host label");
    }
    Labels labels = row.labels;
    labels.emplace_back(kRemoteHostLabel, remote_host);
    switch (row.kind) {
      case MetricRow::Kind::kCounter:
        target.counter(row.name, labels).set_total(row.count);
        break;
      case MetricRow::Kind::kGauge:
        target.gauge(row.name, labels).restore(row.value, row.max);
        break;
      case MetricRow::Kind::kHistogram: {
        Histogram& h = target.histogram(row.name, labels);
        h.reset();
        if (row.count == 0) break;
        if (auto s = h.restore(row.hist_buckets, row.count, row.sum, row.min,
                               row.max);
            !s)
          return s;
        break;
      }
    }
  }
  return ok_status();
}

}  // namespace debuglet::obs::wire
