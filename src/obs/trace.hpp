// Span/event tracing with a ring-buffer backend.
//
// Spans are keyed to BOTH clocks: simulated time (where the span sits in
// the scenario timeline) and wall time (what it actually cost to compute).
// The Chrome trace exporter (obs/export.hpp) lays spans out on the
// simulated timeline so a dump opens directly in chrome://tracing /
// Perfetto; wall durations ride along in the event args.
//
// Like metrics, tracing is off by default and costs one relaxed atomic
// load per call site when off. The ring buffer overwrites the oldest spans
// once full, so long runs keep the tail instead of growing without bound.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "util/time.hpp"

namespace debuglet::obs {

class Histogram;

/// Current wall time in microseconds (steady clock; only comparable within
/// one process). Never called by simulation logic — determinism holds.
std::int64_t wall_now_us();

/// One completed span or instant event.
struct Span {
  std::string name;
  std::string category;  // subsystem tag: "executor", "chain", ...
  SimTime sim_begin = 0;
  SimTime sim_end = 0;
  std::int64_t wall_begin_us = 0;
  std::int64_t wall_dur_us = 0;
};

/// Fixed-capacity span recorder.
class Tracer {
 public:
  explicit Tracer(std::size_t capacity = 16384);

  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Wires the simulated clock (scenarios point this at their EventQueue).
  /// Unset, sim timestamps record as 0.
  void set_sim_clock(std::function<SimTime()> clock) {
    sim_clock_ = std::move(clock);
  }
  SimTime sim_now() const { return sim_clock_ ? sim_clock_() : 0; }

  /// Appends a span; drops the oldest when the ring is full. No-op when
  /// disabled.
  void record(Span span);

  /// Records a zero-duration event at the current clocks.
  void instant(std::string name, std::string category);

  /// Retained spans, oldest first.
  std::vector<Span> spans() const;

  std::size_t capacity() const { return capacity_; }
  std::size_t recorded() const { return total_; }
  std::size_t dropped() const {
    return total_ > ring_.size() ? total_ - ring_.size() : 0;
  }
  void clear();

 private:
  std::atomic<bool> enabled_{false};
  std::size_t capacity_;
  std::vector<Span> ring_;  // grows to capacity_, then wraps at head_
  std::size_t head_ = 0;    // next slot to overwrite once full
  std::size_t total_ = 0;
  std::function<SimTime()> sim_clock_;
};

/// The active tracer (process-global unless injected; see set_tracer).
Tracer& tracer();

/// Injects a tracer (tests); null restores the built-in global. Returns
/// the previously active tracer.
Tracer* set_tracer(Tracer* t);

/// RAII span: captures both clocks at construction, records into the
/// active tracer at destruction. Skips all clock reads when tracing is off
/// at construction time.
class ScopedSpan {
 public:
  ScopedSpan(std::string name, std::string category);
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  bool active_;
  Span span_;
};

/// RAII timer: records the scope's wall duration, in milliseconds, into a
/// histogram. Skips the clock reads when the histogram is disabled.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& histogram);
  ~ScopedTimer();
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* histogram_;  // null when inactive
  std::int64_t begin_us_ = 0;
};

}  // namespace debuglet::obs
