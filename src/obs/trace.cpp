#include "obs/trace.hpp"

#include <chrono>

#include "obs/metrics.hpp"

namespace debuglet::obs {

std::int64_t wall_now_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Tracer::Tracer(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  ring_.reserve(std::min<std::size_t>(capacity_, 1024));
}

void Tracer::record(Span span) {
  if (!enabled()) return;
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(span));
  } else {
    ring_[head_] = std::move(span);
    head_ = (head_ + 1) % capacity_;
  }
  ++total_;
}

void Tracer::instant(std::string name, std::string category) {
  if (!enabled()) return;
  Span span;
  span.name = std::move(name);
  span.category = std::move(category);
  span.sim_begin = span.sim_end = sim_now();
  span.wall_begin_us = wall_now_us();
  record(std::move(span));
}

std::vector<Span> Tracer::spans() const {
  std::vector<Span> out;
  out.reserve(ring_.size());
  // Once the ring wrapped, head_ points at the oldest retained span.
  for (std::size_t i = 0; i < ring_.size(); ++i)
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  return out;
}

void Tracer::clear() {
  ring_.clear();
  head_ = 0;
  total_ = 0;
}

namespace {

Tracer& global_tracer() {
  static Tracer* instance = new Tracer();  // never freed
  return *instance;
}

Tracer* g_current = nullptr;

}  // namespace

Tracer& tracer() { return g_current != nullptr ? *g_current : global_tracer(); }

Tracer* set_tracer(Tracer* t) {
  Tracer* previous = g_current;
  g_current = t;
  return previous;
}

ScopedSpan::ScopedSpan(std::string name, std::string category)
    : active_(tracer().enabled()) {
  if (!active_) return;
  span_.name = std::move(name);
  span_.category = std::move(category);
  span_.sim_begin = tracer().sim_now();
  span_.wall_begin_us = wall_now_us();
}

ScopedSpan::~ScopedSpan() {
  if (!active_) return;
  span_.sim_end = tracer().sim_now();
  span_.wall_dur_us = wall_now_us() - span_.wall_begin_us;
  tracer().record(std::move(span_));
}

ScopedTimer::ScopedTimer(Histogram& histogram)
    : histogram_(histogram.enabled() ? &histogram : nullptr) {
  if (histogram_ != nullptr) begin_us_ = wall_now_us();
}

ScopedTimer::~ScopedTimer() {
  if (histogram_ == nullptr) return;
  histogram_->record(static_cast<double>(wall_now_us() - begin_us_) / 1000.0);
}

}  // namespace debuglet::obs
