#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>

namespace debuglet::obs {

std::string labels_to_string(const Labels& labels) {
  if (labels.empty()) return "";
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  std::string out = "{";
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    if (i != 0) out += ',';
    out += sorted[i].first;
    out += '=';
    out += sorted[i].second;
  }
  out += '}';
  return out;
}

void Histogram::record_always(double v) {
  std::lock_guard<std::mutex> lock(mu_);
  ++buckets_[bucket_index(v)];
  if (count_ == 0) {
    min_ = max_ = v;
  } else {
    if (v < min_) min_ = v;
    if (v > max_) max_ = v;
  }
  ++count_;
  sum_ += v;
}

std::size_t Histogram::bucket_index(double v) {
  if (!(v > 0.0)) return 0;  // zero, negatives and NaN underflow
  const double position =
      (std::log10(v) - kMinExponent) * kSubBucketsPerDecade;
  if (position < 0.0) return 0;
  if (position >= static_cast<double>(kInteriorBuckets))
    return kBucketCount - 1;
  return 1 + static_cast<std::size_t>(position);
}

double Histogram::bucket_lower_bound(std::size_t index) {
  if (index == 0) return 0.0;
  const double exponent =
      kMinExponent +
      static_cast<double>(index - 1) / kSubBucketsPerDecade;
  return std::pow(10.0, exponent);
}

double Histogram::percentile(double p) const {
  if (count_ == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  // Target rank in [1, count]; geometric interpolation inside the bucket.
  const double target = p / 100.0 * static_cast<double>(count_);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    if (buckets_[i] == 0) continue;
    const double before = static_cast<double>(cumulative);
    cumulative += buckets_[i];
    if (static_cast<double>(cumulative) < target) continue;
    const double lo = bucket_lower_bound(i);
    const double hi = i + 1 < kBucketCount
                          ? bucket_lower_bound(i + 1)
                          : max_;
    const double fraction =
        (target - before) / static_cast<double>(buckets_[i]);
    double estimate;
    if (lo <= 0.0 || hi <= lo) {
      estimate = lo;
    } else {
      estimate = lo * std::pow(hi / lo, std::clamp(fraction, 0.0, 1.0));
    }
    return std::clamp(estimate, min_, max_);
  }
  return max_;
}

void Histogram::merge(const Histogram& other) {
  std::scoped_lock lock(mu_, other.mu_);
  if (other.count_ == 0) return;
  for (std::size_t i = 0; i < kBucketCount; ++i)
    buckets_[i] += other.buckets_[i];
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

void Histogram::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = min_ = max_ = 0.0;
}

Status Histogram::restore(const std::vector<std::uint64_t>& buckets,
                          std::uint64_t count, double sum, double min,
                          double max) {
  if (buckets.size() != kBucketCount)
    return fail("histogram restore: " + std::to_string(buckets.size()) +
                " buckets, layout has " + std::to_string(kBucketCount));
  std::uint64_t total = 0;
  for (std::uint64_t b : buckets) total += b;
  if (total != count)
    return fail("histogram restore: bucket sum " + std::to_string(total) +
                " != count " + std::to_string(count));
  std::lock_guard<std::mutex> lock(mu_);
  buckets_ = buckets;
  count_ = count;
  sum_ = sum;
  min_ = min;
  max_ = max;
  return ok_status();
}

template <typename T>
T& MetricsRegistry::lookup(std::map<std::string, Entry<T>>& map,
                           const std::string& name, const Labels& labels) {
  const std::string key = name + labels_to_string(labels);
  auto it = map.find(key);
  if (it == map.end()) {
    Entry<T> entry;
    entry.name = name;
    entry.labels = labels;
    std::sort(entry.labels.begin(), entry.labels.end());
    entry.metric = std::make_unique<T>(&enabled_);
    it = map.emplace(key, std::move(entry)).first;
  }
  return *it->second.metric;
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const Labels& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  return lookup(counters_, name, labels);
}

Gauge& MetricsRegistry::gauge(const std::string& name, const Labels& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  return lookup(gauges_, name, labels);
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      const Labels& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  return lookup(histograms_, name, labels);
}

std::size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_.size() + gauges_.size() + histograms_.size();
}

std::vector<MetricRow> MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<MetricRow> rows;
  rows.reserve(counters_.size() + gauges_.size() + histograms_.size());
  for (const auto& [key, entry] : counters_) {
    MetricRow row;
    row.name = entry.name;
    row.labels = entry.labels;
    row.kind = MetricRow::Kind::kCounter;
    row.value = static_cast<double>(entry.metric->value());
    row.count = entry.metric->value();
    rows.push_back(std::move(row));
  }
  for (const auto& [key, entry] : gauges_) {
    MetricRow row;
    row.name = entry.name;
    row.labels = entry.labels;
    row.kind = MetricRow::Kind::kGauge;
    row.value = entry.metric->value();
    row.max = entry.metric->max_seen();
    rows.push_back(std::move(row));
  }
  for (const auto& [key, entry] : histograms_) {
    const Histogram& h = *entry.metric;
    MetricRow row;
    row.name = entry.name;
    row.labels = entry.labels;
    row.kind = MetricRow::Kind::kHistogram;
    row.count = h.count();
    row.sum = h.sum();
    row.min = h.min();
    row.max = h.max();
    row.p50 = h.p50();
    row.p90 = h.p90();
    row.p99 = h.p99();
    row.hist_buckets = h.buckets();
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end(),
            [](const MetricRow& a, const MetricRow& b) {
              if (a.name != b.name) return a.name < b.name;
              return labels_to_string(a.labels) < labels_to_string(b.labels);
            });
  return rows;
}

void MetricsRegistry::reset_values() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [_, entry] : counters_) entry.metric->reset();
  for (auto& [_, entry] : gauges_) entry.metric->reset();
  for (auto& [_, entry] : histograms_) entry.metric->reset();
}

namespace {

MetricsRegistry& global_registry() {
  static MetricsRegistry* instance = new MetricsRegistry();  // never freed
  return *instance;
}

MetricsRegistry* g_current = nullptr;

}  // namespace

MetricsRegistry& registry() {
  return g_current != nullptr ? *g_current : global_registry();
}

MetricsRegistry* set_registry(MetricsRegistry* r) {
  MetricsRegistry* previous = g_current;
  g_current = r;
  return previous;
}

void set_enabled(bool on) { registry().set_enabled(on); }

}  // namespace debuglet::obs
