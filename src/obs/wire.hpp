// Snapshot wire format: registry snapshots over the simulated network.
//
// The paper's telemetry must itself be observable remotely: an executor's
// stats Debuglet serves its host's metrics registry over the same packet
// API every other measurement uses (telemetry-about-telemetry). This
// module defines the two layers of that path:
//
//  * Snapshot encoding — a compact, versioned binary serialization of a
//    std::vector<MetricRow> (histograms travel with their full bucket
//    vectors, run-length compressed, so a remote histogram merges exactly,
//    not from interpolated percentiles). The encoding ends in a 64-bit
//    FNV-1a digest over everything before it; decode rejects any
//    truncation, bit corruption, or trailing garbage.
//
//  * Chunking — a snapshot rarely fits one packet payload, so it ships as
//    numbered chunks, each self-describing: snapshot id (derived from the
//    digest, so chunks of two different snapshots never merge), chunk
//    index + count, the total snapshot length, the chunk payload, and a
//    per-chunk digest. SnapshotAssembler accepts chunks in any order,
//    tolerates duplicates, and refuses to finish until every chunk of one
//    snapshot has arrived intact.
//
// merge_rows() imports a decoded snapshot into a local registry with a
// "remote_host" label added to every row — the convention scrapers use so
// local and remote metrics never collide (docs/OBSERVABILITY.md).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "util/bytes.hpp"
#include "util/result.hpp"

namespace debuglet::obs::wire {

/// Format version emitted by this build; decoders reject anything newer.
inline constexpr std::uint16_t kSnapshotVersion = 1;

/// Chunk payloads are bounded so a chunk (payload + ~32 bytes of framing)
/// always fits a UDP packet and a Debuglet's 512-byte send buffer.
inline constexpr std::uint32_t kMinChunkPayload = 16;
inline constexpr std::uint32_t kMaxChunkPayload = 4096;
inline constexpr std::uint32_t kDefaultChunkPayload = 400;

/// A chunk stream is indexed by u16, bounding snapshots to ~256 MB.
inline constexpr std::size_t kMaxChunks = 65535;

/// 64-bit FNV-1a over a byte span — the digest both layers use. Not
/// cryptographic: it detects truncation and corruption, not forgery
/// (result *certification* is the executor signature's job).
std::uint64_t digest(BytesView data);

/// Serializes rows (as produced by MetricsRegistry::snapshot()) with a
/// trailing digest.
Bytes encode_snapshot(const std::vector<MetricRow>& rows);

/// Parses an encoded snapshot, verifying version, digest, and that no
/// bytes trail the digest.
Result<std::vector<MetricRow>> decode_snapshot(BytesView data);

/// Number of chunks an encoded snapshot of `encoded_size` bytes needs at
/// `chunk_payload` bytes per chunk (always >= 1: an empty snapshot still
/// ships one chunk so the scraper learns the chunk count).
std::size_t chunk_count(std::size_t encoded_size, std::uint32_t chunk_payload);

/// Builds the wire bytes of chunk `index` of an encoded snapshot. Fails on
/// an out-of-range index, a payload size outside
/// [kMinChunkPayload, kMaxChunkPayload], or a snapshot needing more than
/// kMaxChunks chunks.
Result<Bytes> build_chunk(BytesView encoded_snapshot, std::size_t index,
                          std::uint32_t chunk_payload);

/// A parsed chunk header + payload.
struct Chunk {
  std::uint32_t snapshot_id = 0;  // low 32 bits of the snapshot digest
  std::uint16_t index = 0;
  std::uint16_t count = 1;        // total chunks of this snapshot
  std::uint32_t total_length = 0; // encoded snapshot length, bytes
  Bytes payload;
};

/// Parses and integrity-checks one chunk message.
Result<Chunk> parse_chunk(BytesView data);

/// Reassembles one snapshot from chunks arriving in any order. All chunks
/// must agree on snapshot id, count and total length; duplicates are
/// accepted (and must match the first copy); chunks of a different
/// snapshot are rejected without disturbing collected state.
class SnapshotAssembler {
 public:
  /// Feeds one chunk wire message.
  Status add_chunk(BytesView chunk_wire);

  /// True once every chunk has arrived.
  bool complete() const;

  /// Chunk count learned from the first accepted chunk (0 before that).
  std::size_t expected_chunks() const { return expected_; }
  std::size_t received_chunks() const { return received_; }

  /// True when chunk `index` has already been accepted — lets callers
  /// distinguish a redundant retransmission from fresh progress.
  bool has_chunk(std::uint16_t index) const {
    return index < have_.size() && have_[index];
  }

  /// Indices not yet received (empty before the first chunk arrives).
  std::vector<std::uint16_t> missing() const;

  /// Concatenates, digests, and decodes the snapshot. Fails unless
  /// complete() and the reassembled bytes pass decode_snapshot.
  Result<std::vector<MetricRow>> finish() const;

  /// Forgets everything (ready for the next scrape).
  void reset();

 private:
  std::uint32_t snapshot_id_ = 0;
  std::uint32_t total_length_ = 0;
  std::size_t expected_ = 0;
  std::size_t received_ = 0;
  std::vector<bool> have_;
  std::vector<Bytes> parts_;
};

/// The label key merge_rows adds to every imported row.
inline constexpr const char* kRemoteHostLabel = "remote_host";

/// Imports rows into `target` with {remote_host: remote_host} added to
/// each row's labels. Counters and gauges are SET to the snapshot values
/// (a re-scrape of the same host overwrites, never double-counts);
/// histograms are restored from their bucket vectors, so merged
/// percentiles equal the remote ones. Rows whose labels already carry a
/// remote_host label are rejected (scraping a scraper must not forge
/// another host's identity).
Status merge_rows(MetricsRegistry& target, const std::vector<MetricRow>& rows,
                  const std::string& remote_host);

}  // namespace debuglet::obs::wire
