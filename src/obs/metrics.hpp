// Metrics: counters, gauges and log-bucketed histograms with labels.
//
// The measurement substrate for the system itself (as opposed to the
// simulated measurements the paper is about). Every subsystem registers
// metrics under `subsystem.name{labels}` in a MetricsRegistry; exporters
// (obs/export.hpp) turn registry snapshots into JSON lines / CSV, and the
// CLI's `stats` command prints them after a run.
//
// Two properties drive the design (see docs/OBSERVABILITY.md):
//   * Injectable global: obs::registry() returns a process-global registry
//     by default; tests and benches swap in their own with set_registry /
//     ScopedRegistry, so concurrent test cases never share counters.
//   * Near-zero cost when off: each metric caches a pointer to its
//     registry's atomic enabled flag; a disabled record operation is one
//     relaxed load and a branch — no locks, no allocation, no clock reads.
//     Registries start disabled; enable with registry().set_enabled(true).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "util/result.hpp"

namespace debuglet::obs {

/// Metric labels, e.g. {{"as", "3"}, {"intf", "2"}}. Stored sorted by key
/// in canonical form; two label sets with the same pairs are one metric.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Canonical rendering: "{a=1,b=2}" with keys sorted; "" for no labels.
std::string labels_to_string(const Labels& labels);

/// A monotonically increasing count. Increments are lock-free and safe
/// from any simnet shard thread (relaxed atomics: totals are exact, but a
/// reader racing a writer may see a slightly stale value — reads happen
/// between runs in practice).
class Counter {
 public:
  Counter() = default;
  explicit Counter(const std::atomic<bool>* enabled) : enabled_(enabled) {}

  void add(std::uint64_t n = 1) {
    if (enabled_ != nullptr && !enabled_->load(std::memory_order_relaxed))
      return;
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }
  /// Sets the absolute value, ignoring the enabled flag — the snapshot
  /// import path (obs/wire merge_rows); re-imports overwrite, never
  /// double-count.
  void set_total(std::uint64_t v) {
    value_.store(v, std::memory_order_relaxed);
  }

 private:
  const std::atomic<bool>* enabled_ = nullptr;  // null = always on
  std::atomic<std::uint64_t> value_{0};
};

/// A point-in-time value (queue depth, store size, balance). Updates are
/// atomic so shard threads may touch disjoint gauges concurrently; a
/// single gauge written from several threads keeps a correct high-water
/// mark but last-writer-wins on the point value.
class Gauge {
 public:
  Gauge() = default;
  explicit Gauge(const std::atomic<bool>* enabled) : enabled_(enabled) {}

  void set(double v) {
    if (enabled_ != nullptr && !enabled_->load(std::memory_order_relaxed))
      return;
    value_.store(v, std::memory_order_relaxed);
    raise_max(v);
  }
  void add(double d) {
    if (enabled_ != nullptr && !enabled_->load(std::memory_order_relaxed))
      return;
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + d,
                                         std::memory_order_relaxed)) {
    }
    raise_max(cur + d);
  }
  double value() const { return value_.load(std::memory_order_relaxed); }
  /// Largest value ever set (high-water mark; useful for queue depths).
  double max_seen() const {
    return max_seen_.load(std::memory_order_relaxed);
  }
  void reset() {
    value_.store(0.0, std::memory_order_relaxed);
    max_seen_.store(0.0, std::memory_order_relaxed);
  }
  /// Restores value and high-water mark, ignoring the enabled flag (the
  /// snapshot import path).
  void restore(double value, double max_seen) {
    value_.store(value, std::memory_order_relaxed);
    max_seen_.store(max_seen, std::memory_order_relaxed);
  }

 private:
  void raise_max(double v) {
    double seen = max_seen_.load(std::memory_order_relaxed);
    while (v > seen && !max_seen_.compare_exchange_weak(
                           seen, v, std::memory_order_relaxed)) {
    }
  }

  const std::atomic<bool>* enabled_ = nullptr;
  std::atomic<double> value_{0.0};
  std::atomic<double> max_seen_{0.0};
};

/// A log-bucketed histogram over positive values.
//
// Buckets are geometric: kSubBucketsPerDecade per power of ten across
// [10^kMinExponent, 10^kMaxExponent), plus an underflow bucket (values
// <= 0 or below the range) and an overflow bucket. With 32 sub-buckets a
// bucket spans a ratio of 10^(1/32) ≈ 1.075, so interpolated percentiles
// are within a few percent of the exact order statistic (obs_test checks
// this against util/stats' SampleSet). min/max/sum/count are exact.
// Histograms with the same layout (all of them) merge by bucket addition.
class Histogram {
 public:
  static constexpr int kSubBucketsPerDecade = 32;
  static constexpr int kMinExponent = -9;  // 1 ns expressed in seconds, etc.
  static constexpr int kMaxExponent = 12;
  static constexpr std::size_t kInteriorBuckets =
      static_cast<std::size_t>(kMaxExponent - kMinExponent) *
      kSubBucketsPerDecade;
  /// Interior buckets plus underflow (index 0) and overflow (last).
  static constexpr std::size_t kBucketCount = kInteriorBuckets + 2;

  Histogram() = default;
  explicit Histogram(const std::atomic<bool>* enabled) : enabled_(enabled) {}

  bool enabled() const {
    return enabled_ == nullptr || enabled_->load(std::memory_order_relaxed);
  }

  void record(double v) {
    if (!enabled()) return;
    record_always(v);
  }
  /// Records ignoring the enabled flag (merge targets, bench reports).
  void record_always(double v);

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ ? sum_ / static_cast<double>(count_) : 0.0; }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }

  /// Interpolated percentile, p in [0, 100]; 0 when empty. Exact at the
  /// extremes (clamped to recorded min/max), within one bucket elsewhere.
  double percentile(double p) const;
  double p50() const { return percentile(50.0); }
  double p90() const { return percentile(90.0); }
  double p99() const { return percentile(99.0); }

  /// Adds another histogram's contents into this one.
  void merge(const Histogram& other);
  void reset();

  /// Replaces this histogram's state from serialized parts (the snapshot
  /// import path, ignoring the enabled flag). `buckets` must have
  /// kBucketCount entries whose sum equals `count`.
  Status restore(const std::vector<std::uint64_t>& buckets,
                 std::uint64_t count, double sum, double min, double max);

  /// The bucket a value lands in (0 = underflow, kBucketCount-1 = overflow).
  static std::size_t bucket_index(double v);
  /// Inclusive lower bound of an interior bucket's value range.
  static double bucket_lower_bound(std::size_t index);
  const std::vector<std::uint64_t>& buckets() const { return buckets_; }

 private:
  const std::atomic<bool>* enabled_ = nullptr;
  // Serializes writers: histograms are the one metric whose update is a
  // read-modify-write over a whole bucket vector, and simnet shard
  // threads record into shared histograms (link delay, pop latency).
  // The enabled check stays outside the lock, so a disabled histogram
  // still costs one relaxed load. Readers (percentiles, snapshots) run
  // between runs, after the shard barrier, and stay lock-free.
  mutable std::mutex mu_;
  std::vector<std::uint64_t> buckets_ =
      std::vector<std::uint64_t>(kBucketCount, 0);
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// One row of a registry snapshot, consumed by the exporters.
struct MetricRow {
  enum class Kind { kCounter, kGauge, kHistogram };
  std::string name;
  Labels labels;
  Kind kind = Kind::kCounter;
  double value = 0.0;  // counter / gauge value (gauge also fills max)
  // Histogram summary (count/sum/min/max also cover gauges' max_seen).
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  /// Histogram rows carry their full bucket vector (kBucketCount entries)
  /// so snapshots merge exactly across hosts (obs/wire); empty otherwise.
  /// Exporters ignore it.
  std::vector<std::uint64_t> hist_buckets;
};

/// Owns metrics, keyed by name + canonical labels. Lookups create on first
/// use and return stable references (metrics never move or disappear while
/// the registry lives); instrumented classes cache the returned pointers at
/// construction so hot paths never touch the maps.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(const std::string& name, const Labels& labels = {});
  Gauge& gauge(const std::string& name, const Labels& labels = {});
  Histogram& histogram(const std::string& name, const Labels& labels = {});

  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  /// The flag every metric of this registry caches a pointer to.
  const std::atomic<bool>* enabled_flag() const { return &enabled_; }

  /// All metrics, sorted by name then labels. Histogram rows carry
  /// interpolated percentiles; the raw buckets stay inside the registry.
  std::vector<MetricRow> snapshot() const;

  /// Zeroes every metric (keeps registrations and the enabled state).
  void reset_values();

  std::size_t size() const;

 private:
  template <typename T>
  struct Entry {
    std::string name;
    Labels labels;
    std::unique_ptr<T> metric;
  };
  template <typename T>
  T& lookup(std::map<std::string, Entry<T>>& map, const std::string& name,
            const Labels& labels);

  std::atomic<bool> enabled_{false};
  // Guards the three maps: lookups can create metrics lazily from shard
  // threads mid-run (e.g. net.parse_rejected{reason} on a damaged frame).
  // Returned metric references stay stable — entries are unique_ptrs and
  // never erased — so cached pointers remain lock-free.
  mutable std::mutex mu_;
  std::map<std::string, Entry<Counter>> counters_;
  std::map<std::string, Entry<Gauge>> gauges_;
  std::map<std::string, Entry<Histogram>> histograms_;
};

/// The active registry: a process-global instance unless one was injected.
MetricsRegistry& registry();

/// Injects a registry (tests, bench reports); null restores the built-in
/// global. The injected registry must outlive every object instrumented
/// while it was active. Returns the previously active registry.
MetricsRegistry* set_registry(MetricsRegistry* r);

/// Enables/disables the ACTIVE registry — the one-line switch examples and
/// tools flip before building a world.
void set_enabled(bool on);

/// RAII: installs a fresh enabled registry for one scope (test isolation).
class ScopedRegistry {
 public:
  ScopedRegistry() : previous_(set_registry(&registry_)) {
    registry_.set_enabled(true);
  }
  ~ScopedRegistry() { set_registry(previous_); }
  ScopedRegistry(const ScopedRegistry&) = delete;
  ScopedRegistry& operator=(const ScopedRegistry&) = delete;

  MetricsRegistry& get() { return registry_; }

 private:
  MetricsRegistry registry_;
  MetricsRegistry* previous_;
};

}  // namespace debuglet::obs
