// Exporters: registry snapshots to JSON lines / CSV / a JSON array, and
// span dumps to the Chrome trace-event format.
//
// JSON lines is the machine-readable interchange format (one metric per
// line; bench reports and the CLI's `stats --json` use it) and round-trips
// through parse_metrics_jsonl. The Chrome format loads directly in
// chrome://tracing or https://ui.perfetto.dev: a JSON array of complete
// ("ph":"X") events with microsecond timestamps on the simulated timeline.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/result.hpp"

namespace debuglet::obs {

/// Escapes a string for inclusion inside JSON quotes.
std::string json_escape(std::string_view s);

/// One metric per line:
///   {"name":"simnet.packets_sent","labels":{"proto":"UDP"},
///    "type":"counter","value":42}
void write_metrics_jsonl(const std::vector<MetricRow>& rows,
                         std::ostream& out);

/// Same rows as a single JSON array (a valid standalone .json document).
void write_metrics_json(const std::vector<MetricRow>& rows, std::ostream& out);

/// Header + one metric per row; empty cells where a column does not apply.
void write_metrics_csv(const std::vector<MetricRow>& rows, std::ostream& out);

/// Spans as a Chrome trace-event JSON array. `ts`/`dur` are microseconds
/// of simulated time; wall-clock cost rides in args.wall_us. Spans with no
/// simulated extent (pure computation, e.g. block building) fall back to
/// their wall duration so they stay visible.
void write_chrome_trace(const std::vector<Span>& spans, std::ostream& out);

/// Parses write_metrics_jsonl output back into rows (blank lines skipped).
/// Fails on malformed lines — the round-trip guard for exporter changes.
Result<std::vector<MetricRow>> parse_metrics_jsonl(std::string_view text);

}  // namespace debuglet::obs
