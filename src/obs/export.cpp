#include "obs/export.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <ostream>

namespace debuglet::obs {

namespace {

const char* kind_name(MetricRow::Kind kind) {
  switch (kind) {
    case MetricRow::Kind::kCounter: return "counter";
    case MetricRow::Kind::kGauge: return "gauge";
    case MetricRow::Kind::kHistogram: return "histogram";
  }
  return "unknown";
}

/// Shortest representation that parses back to the same double.
std::string number(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  if (std::strtod(buf, nullptr) == v) {
    char shorter[32];
    std::snprintf(shorter, sizeof(shorter), "%.15g", v);
    if (std::strtod(shorter, nullptr) == v) return shorter;
  }
  return buf;
}

void write_row_json(const MetricRow& row, std::ostream& out) {
  out << "{\"name\":\"" << json_escape(row.name) << "\"";
  if (!row.labels.empty()) {
    out << ",\"labels\":{";
    for (std::size_t i = 0; i < row.labels.size(); ++i) {
      if (i != 0) out << ',';
      out << '"' << json_escape(row.labels[i].first) << "\":\""
          << json_escape(row.labels[i].second) << '"';
    }
    out << '}';
  }
  out << ",\"type\":\"" << kind_name(row.kind) << "\"";
  switch (row.kind) {
    case MetricRow::Kind::kCounter:
      out << ",\"value\":" << number(row.value);
      break;
    case MetricRow::Kind::kGauge:
      out << ",\"value\":" << number(row.value)
          << ",\"max\":" << number(row.max);
      break;
    case MetricRow::Kind::kHistogram:
      out << ",\"count\":" << row.count << ",\"sum\":" << number(row.sum)
          << ",\"min\":" << number(row.min) << ",\"max\":" << number(row.max)
          << ",\"p50\":" << number(row.p50) << ",\"p90\":" << number(row.p90)
          << ",\"p99\":" << number(row.p99);
      break;
  }
  out << '}';
}

}  // namespace

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void write_metrics_jsonl(const std::vector<MetricRow>& rows,
                         std::ostream& out) {
  for (const MetricRow& row : rows) {
    write_row_json(row, out);
    out << '\n';
  }
}

void write_metrics_json(const std::vector<MetricRow>& rows,
                        std::ostream& out) {
  out << "[";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (i != 0) out << ',';
    out << "\n  ";
    write_row_json(rows[i], out);
  }
  out << "\n]\n";
}

void write_metrics_csv(const std::vector<MetricRow>& rows, std::ostream& out) {
  out << "name,labels,type,value,count,sum,min,max,p50,p90,p99\n";
  for (const MetricRow& row : rows) {
    const std::string labels = labels_to_string(row.labels);
    out << row.name << ",\"" << labels << "\"," << kind_name(row.kind) << ',';
    if (row.kind == MetricRow::Kind::kHistogram) {
      out << ',' << row.count << ',' << number(row.sum) << ','
          << number(row.min) << ',' << number(row.max) << ','
          << number(row.p50) << ',' << number(row.p90) << ','
          << number(row.p99);
    } else {
      out << number(row.value) << ",,,,,,,";
    }
    out << '\n';
  }
}

void write_chrome_trace(const std::vector<Span>& spans, std::ostream& out) {
  out << "[";
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const Span& span = spans[i];
    const double ts_us = static_cast<double>(span.sim_begin) / 1000.0;
    double dur_us = static_cast<double>(span.sim_end - span.sim_begin) / 1000.0;
    if (dur_us <= 0.0)
      dur_us = static_cast<double>(span.wall_dur_us < 0 ? 0 : span.wall_dur_us);
    if (i != 0) out << ',';
    out << "\n  {\"name\":\"" << json_escape(span.name) << "\",\"cat\":\""
        << json_escape(span.category)
        << "\",\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":" << number(ts_us)
        << ",\"dur\":" << number(dur_us) << ",\"args\":{\"wall_us\":"
        << span.wall_dur_us << ",\"sim_begin_ns\":" << span.sim_begin << "}}";
  }
  out << "\n]\n";
}

// ---------------------------------------------------------------------------
// Minimal parser for the exact JSON subset write_metrics_jsonl emits: one
// flat object per line whose values are strings, numbers, or the flat
// "labels" object of string -> string.

namespace {

struct Cursor {
  std::string_view text;
  std::size_t pos = 0;

  void skip_ws() {
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos])))
      ++pos;
  }
  bool eat(char c) {
    skip_ws();
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }
  bool done() {
    skip_ws();
    return pos >= text.size();
  }
};

Result<std::string> parse_string(Cursor& c) {
  if (!c.eat('"')) return fail("expected '\"'");
  std::string out;
  while (c.pos < c.text.size()) {
    char ch = c.text[c.pos++];
    if (ch == '"') return out;
    if (ch == '\\') {
      if (c.pos >= c.text.size()) break;
      char esc = c.text[c.pos++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (c.pos + 4 > c.text.size()) return fail("bad \\u escape");
          const std::string hex(c.text.substr(c.pos, 4));
          out += static_cast<char>(std::strtol(hex.c_str(), nullptr, 16));
          c.pos += 4;
          break;
        }
        default:
          return fail(std::string("bad escape '\\") + esc + "'");
      }
    } else {
      out += ch;
    }
  }
  return fail("unterminated string");
}

Result<double> parse_number(Cursor& c) {
  c.skip_ws();
  const char* begin = c.text.data() + c.pos;
  char* end = nullptr;
  const double v = std::strtod(begin, &end);
  if (end == begin) return fail("expected a number");
  c.pos += static_cast<std::size_t>(end - begin);
  return v;
}

Result<Labels> parse_labels(Cursor& c) {
  if (!c.eat('{')) return fail("labels: expected '{'");
  Labels out;
  if (c.eat('}')) return out;
  do {
    auto key = parse_string(c);
    if (!key) return key.error();
    if (!c.eat(':')) return fail("labels: expected ':'");
    auto value = parse_string(c);
    if (!value) return value.error();
    out.emplace_back(std::move(*key), std::move(*value));
  } while (c.eat(','));
  if (!c.eat('}')) return fail("labels: expected '}'");
  return out;
}

Result<MetricRow> parse_row(std::string_view line) {
  Cursor c{line};
  if (!c.eat('{')) return fail("expected '{'");
  MetricRow row;
  std::string type;
  do {
    auto key = parse_string(c);
    if (!key) return key.error();
    if (!c.eat(':')) return fail("expected ':'");
    if (*key == "name") {
      auto v = parse_string(c);
      if (!v) return v.error();
      row.name = std::move(*v);
    } else if (*key == "labels") {
      auto v = parse_labels(c);
      if (!v) return v.error();
      row.labels = std::move(*v);
    } else if (*key == "type") {
      auto v = parse_string(c);
      if (!v) return v.error();
      type = std::move(*v);
    } else {
      auto v = parse_number(c);
      if (!v) return fail(*key + ": " + v.error_message());
      if (*key == "value") row.value = *v;
      else if (*key == "count") row.count = static_cast<std::uint64_t>(*v);
      else if (*key == "sum") row.sum = *v;
      else if (*key == "min") row.min = *v;
      else if (*key == "max") row.max = *v;
      else if (*key == "p50") row.p50 = *v;
      else if (*key == "p90") row.p90 = *v;
      else if (*key == "p99") row.p99 = *v;
      // Unknown numeric keys parse and drop (forward compatibility).
    }
  } while (c.eat(','));
  if (!c.eat('}')) return fail("expected '}'");
  if (!c.done()) return fail("trailing characters after object");
  if (type == "counter") {
    row.kind = MetricRow::Kind::kCounter;
    row.count = static_cast<std::uint64_t>(row.value);
  } else if (type == "gauge") {
    row.kind = MetricRow::Kind::kGauge;
  } else if (type == "histogram") {
    row.kind = MetricRow::Kind::kHistogram;
  } else {
    return fail("unknown metric type '" + type + "'");
  }
  return row;
}

}  // namespace

Result<std::vector<MetricRow>> parse_metrics_jsonl(std::string_view text) {
  std::vector<MetricRow> rows;
  std::size_t line_number = 0;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    const std::string_view line = text.substr(start, end - start);
    ++line_number;
    start = end + 1;
    bool blank = true;
    for (char ch : line)
      if (!std::isspace(static_cast<unsigned char>(ch))) blank = false;
    if (blank) continue;
    auto row = parse_row(line);
    if (!row)
      return fail("line " + std::to_string(line_number) + ": " +
                  row.error_message());
    rows.push_back(std::move(*row));
  }
  return rows;
}

}  // namespace debuglet::obs
