// Schnorr signatures over the multiplicative group Z_p*.
//
// Executors certify measurement results with these signatures (paper §IV-B:
// "The output can then be certified by the deploying AS, allowing third
// parties to verify the measurement results"), and chain transactions are
// authenticated with them.
//
// Parameters: p is the secp256k1 field prime (a 256-bit prime), g = 5.
// Exponents live mod (p-1); verification checks g^s == r * pk^e (mod p)
// with the Fiat–Shamir challenge e = SHA256(r || pk || msg). Nonces are
// deterministic (HMAC of key and message), so signing is reproducible.
// The discrete log in Z_p* at this size is NOT production-grade security;
// the reproduction needs the protocol shape, not deployed-grade hardness
// (DESIGN.md §2).
#pragma once

#include "crypto/sha256.hpp"
#include "crypto/u256.hpp"
#include "util/result.hpp"

namespace debuglet::crypto {

/// Public verification key (group element, < p).
struct PublicKey {
  U256 y;
  bool operator==(const PublicKey&) const = default;
  std::string hex() const { return y.hex(); }
  Bytes to_bytes() const { return y.to_be_bytes(); }
};

/// Signature: commitment r and response s.
struct Signature {
  U256 r;
  U256 s;
  bool operator==(const Signature&) const = default;

  Bytes to_bytes() const;
  static Result<Signature> from_bytes(BytesView b);
};

/// Secret/public key pair.
class KeyPair {
 public:
  /// Derives a key pair deterministically from a seed (test/scenario use).
  static KeyPair from_seed(std::uint64_t seed);

  /// Derives a key pair from arbitrary seed bytes.
  static KeyPair from_seed_bytes(BytesView seed);

  const PublicKey& public_key() const { return pk_; }

  /// Signs a message; deterministic (same key + message → same signature).
  Signature sign(BytesView message) const;
  Signature sign(std::string_view message) const;

  /// Diffie–Hellman shared secret with a peer: peer.y ^ sk mod p. Both
  /// sides derive the same value (used by the crypto::box sealed boxes).
  U256 shared_secret(const PublicKey& peer) const;

 private:
  KeyPair(U256 sk, PublicKey pk) : sk_(sk), pk_(pk) {}
  U256 sk_;
  PublicKey pk_;
};

/// Verifies a signature against a public key and message.
bool verify(const PublicKey& pk, BytesView message, const Signature& sig);
bool verify(const PublicKey& pk, std::string_view message,
            const Signature& sig);

/// The group prime p and generator g (exposed for tests).
const U256& group_prime();
const U256& group_generator();

}  // namespace debuglet::crypto
