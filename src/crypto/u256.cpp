#include "crypto/u256.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

namespace debuglet::crypto {

using u128 = unsigned __int128;

U256 U256::from_be_bytes(BytesView b) {
  if (b.size() > 32) throw std::invalid_argument("U256::from_be_bytes: >32 bytes");
  U256 out;
  std::size_t bit = 0;
  for (std::size_t i = 0; i < b.size(); ++i) {
    const std::uint8_t byte = b[b.size() - 1 - i];
    out.limbs[bit / 64] |= static_cast<std::uint64_t>(byte) << (bit % 64);
    bit += 8;
  }
  return out;
}

Bytes U256::to_be_bytes() const {
  Bytes out(32);
  for (std::size_t i = 0; i < 32; ++i) {
    const std::size_t bit = i * 8;
    out[31 - i] = static_cast<std::uint8_t>(limbs[bit / 64] >> (bit % 64));
  }
  return out;
}

Result<U256> U256::from_hex(std::string_view hex) {
  if (hex.starts_with("0x") || hex.starts_with("0X")) hex.remove_prefix(2);
  if (hex.empty() || hex.size() > 64) return fail("U256 hex: bad length");
  std::string padded(64 - hex.size(), '0');
  padded += hex;
  auto bytes = ::debuglet::from_hex(padded);
  if (!bytes) return bytes.error();
  return from_be_bytes(*bytes);
}

std::string U256::hex() const { return to_hex(to_be_bytes()); }

bool U256::is_zero() const {
  return limbs[0] == 0 && limbs[1] == 0 && limbs[2] == 0 && limbs[3] == 0;
}

int U256::bit_length() const {
  for (int i = 3; i >= 0; --i) {
    if (limbs[static_cast<std::size_t>(i)] != 0)
      return i * 64 + 64 - std::countl_zero(limbs[static_cast<std::size_t>(i)]);
  }
  return 0;
}

bool U256::bit(int i) const {
  return (limbs[static_cast<std::size_t>(i / 64)] >> (i % 64)) & 1;
}

bool U512::is_zero() const {
  return std::all_of(limbs.begin(), limbs.end(),
                     [](std::uint64_t l) { return l == 0; });
}

int U512::bit_length() const {
  for (int i = 7; i >= 0; --i) {
    if (limbs[static_cast<std::size_t>(i)] != 0)
      return i * 64 + 64 - std::countl_zero(limbs[static_cast<std::size_t>(i)]);
  }
  return 0;
}

U256 add(const U256& a, const U256& b, bool* carry) {
  U256 out;
  u128 acc = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    acc += static_cast<u128>(a.limbs[i]) + b.limbs[i];
    out.limbs[i] = static_cast<std::uint64_t>(acc);
    acc >>= 64;
  }
  if (carry) *carry = acc != 0;
  return out;
}

U256 sub(const U256& a, const U256& b, bool* borrow) {
  U256 out;
  u128 borrow_acc = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    const u128 lhs = a.limbs[i];
    const u128 rhs = static_cast<u128>(b.limbs[i]) + borrow_acc;
    if (lhs >= rhs) {
      out.limbs[i] = static_cast<std::uint64_t>(lhs - rhs);
      borrow_acc = 0;
    } else {
      out.limbs[i] = static_cast<std::uint64_t>((u128(1) << 64) + lhs - rhs);
      borrow_acc = 1;
    }
  }
  if (borrow) *borrow = borrow_acc != 0;
  return out;
}

U512 mul_wide(const U256& a, const U256& b) {
  U512 out;
  for (std::size_t i = 0; i < 4; ++i) {
    u128 carry = 0;
    for (std::size_t j = 0; j < 4; ++j) {
      u128 cur = static_cast<u128>(a.limbs[i]) * b.limbs[j] +
                 out.limbs[i + j] + carry;
      out.limbs[i + j] = static_cast<std::uint64_t>(cur);
      carry = cur >> 64;
    }
    std::size_t k = i + 4;
    while (carry != 0) {
      u128 cur = static_cast<u128>(out.limbs[k]) + carry;
      out.limbs[k] = static_cast<std::uint64_t>(cur);
      carry = cur >> 64;
      ++k;
    }
  }
  return out;
}

namespace {

// Shifts a U512 left by one bit in place.
void shl1(U512& x) {
  for (int i = 7; i > 0; --i)
    x.limbs[static_cast<std::size_t>(i)] =
        (x.limbs[static_cast<std::size_t>(i)] << 1) |
        (x.limbs[static_cast<std::size_t>(i - 1)] >> 63);
  x.limbs[0] <<= 1;
}

// r >= m over the low 5 limbs (m treated as 512-bit with zero high limbs)?
bool ge(const U512& r, const U256& m) {
  for (int i = 7; i >= 4; --i)
    if (r.limbs[static_cast<std::size_t>(i)] != 0) return true;
  for (int i = 3; i >= 0; --i) {
    const std::uint64_t a = r.limbs[static_cast<std::size_t>(i)];
    const std::uint64_t b = m.limbs[static_cast<std::size_t>(i)];
    if (a != b) return a > b;
  }
  return true;
}

void sub_in_place(U512& r, const U256& m) {
  u128 borrow = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    const u128 rhs = (i < 4 ? static_cast<u128>(m.limbs[i]) : 0) + borrow;
    const u128 lhs = r.limbs[i];
    if (lhs >= rhs) {
      r.limbs[i] = static_cast<std::uint64_t>(lhs - rhs);
      borrow = 0;
    } else {
      r.limbs[i] = static_cast<std::uint64_t>((u128(1) << 64) + lhs - rhs);
      borrow = 1;
    }
  }
}

}  // namespace

U256 mod(const U512& x, const U256& m) {
  if (m.is_zero()) throw std::invalid_argument("mod: modulus is zero");
  // Binary long division: bring in x's bits from the top into a remainder.
  U512 rem;
  const int bits = x.bit_length();
  for (int i = bits - 1; i >= 0; --i) {
    shl1(rem);
    if ((x.limbs[static_cast<std::size_t>(i / 64)] >> (i % 64)) & 1)
      rem.limbs[0] |= 1;
    if (ge(rem, m)) sub_in_place(rem, m);
  }
  U256 out;
  for (std::size_t i = 0; i < 4; ++i) out.limbs[i] = rem.limbs[i];
  return out;
}

U256 mod(const U256& x, const U256& m) {
  U512 wide;
  for (std::size_t i = 0; i < 4; ++i) wide.limbs[i] = x.limbs[i];
  return mod(wide, m);
}

U256 add_mod(const U256& a, const U256& b, const U256& m) {
  bool carry = false;
  U256 s = add(a, b, &carry);
  if (carry || s >= m) {
    bool borrow = false;
    s = sub(s, m, &borrow);
  }
  return s;
}

U256 sub_mod(const U256& a, const U256& b, const U256& m) {
  if (a >= b) {
    bool borrow = false;
    return sub(a, b, &borrow);
  }
  bool borrow = false;
  const U256 diff = sub(b, a, &borrow);
  return sub(m, diff, &borrow);
}

U256 mul_mod(const U256& a, const U256& b, const U256& m) {
  return mod(mul_wide(a, b), m);
}

U256 pow_mod(const U256& base, const U256& exp, const U256& m) {
  if (m <= U256(1)) throw std::invalid_argument("pow_mod: modulus <= 1");
  U256 result(1);
  U256 b = mod(base, m);
  const int bits = exp.bit_length();
  for (int i = bits - 1; i >= 0; --i) {
    result = mul_mod(result, result, m);
    if (exp.bit(i)) result = mul_mod(result, b, m);
  }
  return result;
}

}  // namespace debuglet::crypto
