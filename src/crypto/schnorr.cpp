#include "crypto/schnorr.hpp"

#include <stdexcept>

namespace debuglet::crypto {

namespace {

// secp256k1 field prime: 2^256 - 2^32 - 977.
const U256& prime() {
  static const U256 p = *U256::from_hex(
      "fffffffffffffffffffffffffffffffffffffffffffffffffffffffefffffc2f");
  return p;
}

// p - 1: the exponent modulus (ord(g) divides p-1, so exponent arithmetic
// mod p-1 preserves g^x).
const U256& prime_minus_one() {
  static const U256 pm1 = [] {
    bool borrow = false;
    return sub(prime(), U256(1), &borrow);
  }();
  return pm1;
}

const U256& generator() {
  static const U256 g(5);
  return g;
}

// Maps a digest to a nonzero exponent mod (p-1).
U256 digest_to_exponent(const Digest& d) {
  U256 e = mod(U256::from_be_bytes(d.view()), prime_minus_one());
  if (e.is_zero()) e = U256(1);
  return e;
}

Digest challenge(const U256& r, const PublicKey& pk, BytesView message) {
  Sha256 h;
  const Bytes rb = r.to_be_bytes();
  const Bytes yb = pk.y.to_be_bytes();
  h.update(BytesView(rb.data(), rb.size()));
  h.update(BytesView(yb.data(), yb.size()));
  h.update(message);
  return h.finalize();
}

}  // namespace

const U256& group_prime() { return prime(); }
const U256& group_generator() { return generator(); }

Bytes Signature::to_bytes() const {
  Bytes out = r.to_be_bytes();
  const Bytes sb = s.to_be_bytes();
  out.insert(out.end(), sb.begin(), sb.end());
  return out;
}

Result<Signature> Signature::from_bytes(BytesView b) {
  if (b.size() != 64) return fail("signature must be 64 bytes");
  Signature sig;
  sig.r = U256::from_be_bytes(b.subspan(0, 32));
  sig.s = U256::from_be_bytes(b.subspan(32, 32));
  return sig;
}

KeyPair KeyPair::from_seed(std::uint64_t seed) {
  BytesWriter w;
  w.str("debuglet-keypair-seed");
  w.u64(seed);
  return from_seed_bytes(BytesView(w.bytes().data(), w.bytes().size()));
}

KeyPair KeyPair::from_seed_bytes(BytesView seed) {
  const Digest d = sha256(seed);
  U256 sk = digest_to_exponent(d);
  const U256 y = pow_mod(generator(), sk, prime());
  return KeyPair(sk, PublicKey{y});
}

Signature KeyPair::sign(BytesView message) const {
  // Deterministic nonce: HMAC(sk, message), reduced to a nonzero exponent.
  const Bytes sk_bytes = sk_.to_be_bytes();
  const Digest nd =
      hmac_sha256(BytesView(sk_bytes.data(), sk_bytes.size()), message);
  const U256 k = digest_to_exponent(nd);
  const U256 r = pow_mod(generator(), k, prime());
  const U256 e = digest_to_exponent(challenge(r, pk_, message));
  const U256 s = add_mod(k, mul_mod(e, sk_, prime_minus_one()),
                         prime_minus_one());
  return Signature{r, s};
}

U256 KeyPair::shared_secret(const PublicKey& peer) const {
  return pow_mod(peer.y, sk_, prime());
}

Signature KeyPair::sign(std::string_view message) const {
  return sign(BytesView(reinterpret_cast<const std::uint8_t*>(message.data()),
                        message.size()));
}

bool verify(const PublicKey& pk, BytesView message, const Signature& sig) {
  if (pk.y.is_zero() || pk.y >= prime()) return false;
  if (sig.r.is_zero() || sig.r >= prime()) return false;
  const U256 e = digest_to_exponent(challenge(sig.r, pk, message));
  const U256 lhs = pow_mod(generator(), sig.s, prime());
  const U256 rhs = mul_mod(sig.r, pow_mod(pk.y, e, prime()), prime());
  return lhs == rhs;
}

bool verify(const PublicKey& pk, std::string_view message,
            const Signature& sig) {
  return verify(
      pk,
      BytesView(reinterpret_cast<const std::uint8_t*>(message.data()),
                message.size()),
      sig);
}

}  // namespace debuglet::crypto
