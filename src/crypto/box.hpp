// Public-key sealed boxes (ElGamal/ECIES-style KEM over the Schnorr group).
//
// Implements the paper's private-results option end to end (§IV-C): the
// executor seals the measurement output for the initiator's public key
// before publishing, so "the results are not readable by third parties" on
// the chain, while the initiator opens them with its secret key.
//
// Construction: ephemeral key pair (e, g^e); shared secret = recipient^e;
// KDF = SHA-256(shared || context); payload encrypted and authenticated
// with the stream cipher's seal(). Wire format:
//   ephemeral_public_key (32 B) || stream::seal(...) output.
#pragma once

#include "crypto/schnorr.hpp"
#include "crypto/stream.hpp"

namespace debuglet::crypto {

/// Seals `plaintext` so only the holder of `recipient`'s secret key can
/// read it. `entropy` must differ across messages to the same recipient
/// (the executor draws it from its RNG).
Bytes seal_for(const PublicKey& recipient, BytesView plaintext,
               std::uint64_t entropy);

/// Opens a seal_for() blob with the recipient's key pair. Fails on
/// truncation, a foreign recipient, or any tampering.
Result<Bytes> open_box(const KeyPair& recipient, BytesView sealed);

}  // namespace debuglet::crypto
