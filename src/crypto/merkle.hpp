// Binary Merkle trees over SHA-256.
//
// The chain commits each block's transactions under a Merkle root, and the
// off-chain storage ablation (DESIGN.md A3) verifies payloads against
// on-chain hashes via Merkle proofs.
#pragma once

#include <vector>

#include "crypto/sha256.hpp"

namespace debuglet::crypto {

/// One sibling step of a Merkle inclusion proof.
struct MerkleStep {
  Digest sibling;
  bool sibling_is_left = false;
};

/// An inclusion proof for a leaf at a given index.
struct MerkleProof {
  std::size_t leaf_index = 0;
  std::vector<MerkleStep> steps;
};

/// Immutable Merkle tree built over the hashes of the given leaves.
/// Leaf hashing is domain-separated from node hashing (0x00 vs 0x01
/// prefixes) to rule out second-preimage splicing.
class MerkleTree {
 public:
  /// Builds the tree; an empty leaf list yields a defined sentinel root.
  explicit MerkleTree(const std::vector<Bytes>& leaves);

  const Digest& root() const { return levels_.back().front(); }
  std::size_t leaf_count() const { return leaf_count_; }

  /// Produces an inclusion proof. Precondition: index < leaf_count().
  MerkleProof prove(std::size_t index) const;

 private:
  std::size_t leaf_count_;
  std::vector<std::vector<Digest>> levels_;  // levels_[0] = leaf hashes
};

/// Hashes a leaf with the leaf domain prefix.
Digest merkle_leaf_hash(BytesView leaf);

/// Verifies an inclusion proof of `leaf` under `root`.
bool merkle_verify(const Digest& root, BytesView leaf,
                   const MerkleProof& proof);

}  // namespace debuglet::crypto
