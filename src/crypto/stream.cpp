#include "crypto/stream.hpp"

namespace debuglet::crypto {

namespace {

Digest derive(BytesView key, std::string_view label) {
  BytesWriter w;
  w.str(label);
  w.blob(key);
  return sha256(BytesView(w.bytes().data(), w.bytes().size()));
}

}  // namespace

Bytes stream_xor(BytesView key, std::uint64_t nonce, BytesView data) {
  const Digest enc_key = derive(key, "debuglet-stream-enc");
  Bytes out(data.begin(), data.end());
  std::uint64_t block = 0;
  std::size_t pos = 0;
  while (pos < out.size()) {
    BytesWriter counter;
    counter.u64(nonce);
    counter.u64(block);
    const Digest keystream = hmac_sha256(
        enc_key.view(), BytesView(counter.bytes().data(),
                                  counter.bytes().size()));
    for (std::size_t i = 0; i < keystream.bytes.size() && pos < out.size();
         ++i, ++pos) {
      out[pos] ^= keystream.bytes[i];
    }
    ++block;
  }
  return out;
}

Bytes seal(BytesView key, std::uint64_t nonce, BytesView plaintext) {
  const Bytes ciphertext = stream_xor(key, nonce, plaintext);
  BytesWriter w;
  w.u64(nonce);
  w.raw(BytesView(ciphertext.data(), ciphertext.size()));
  const Digest mac_key = derive(key, "debuglet-stream-mac");
  const Digest tag = hmac_sha256(
      mac_key.view(), BytesView(w.bytes().data(), w.bytes().size()));
  w.raw(tag.view());
  return w.take();
}

Result<Bytes> open(BytesView key, BytesView sealed) {
  if (sealed.size() < 8 + 32) return fail("sealed blob too short");
  const BytesView body = sealed.subspan(0, sealed.size() - 32);
  const BytesView tag = sealed.subspan(sealed.size() - 32);
  const Digest mac_key = derive(key, "debuglet-stream-mac");
  const Digest expected = hmac_sha256(mac_key.view(), body);
  // Constant-time-ish comparison (length is fixed).
  std::uint8_t diff = 0;
  for (std::size_t i = 0; i < 32; ++i) diff |= tag[i] ^ expected.bytes[i];
  if (diff != 0) return fail("authentication tag mismatch");
  BytesReader r(body);
  auto nonce = r.u64();
  if (!nonce) return nonce.error();
  const Bytes ciphertext = *r.raw(r.remaining());
  return stream_xor(key, *nonce,
                    BytesView(ciphertext.data(), ciphertext.size()));
}

}  // namespace debuglet::crypto
