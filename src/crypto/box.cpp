#include "crypto/box.hpp"

namespace debuglet::crypto {

namespace {

// Derives the symmetric key from the DH shared secret and both public
// values (binding the key to this exchange).
Digest kdf(const U256& shared, const U256& ephemeral_pk,
           const PublicKey& recipient) {
  Sha256 h;
  h.update("debuglet-box-kdf");
  const Bytes s = shared.to_be_bytes();
  h.update(BytesView(s.data(), s.size()));
  const Bytes e = ephemeral_pk.to_be_bytes();
  h.update(BytesView(e.data(), e.size()));
  const Bytes r = recipient.y.to_be_bytes();
  h.update(BytesView(r.data(), r.size()));
  return h.finalize();
}

}  // namespace

Bytes seal_for(const PublicKey& recipient, BytesView plaintext,
               std::uint64_t entropy) {
  // Deterministic-from-entropy ephemeral key (the caller supplies fresh
  // entropy per message; determinism keeps simulations reproducible).
  BytesWriter seed;
  seed.str("debuglet-box-ephemeral");
  seed.u64(entropy);
  const Bytes rb = recipient.y.to_be_bytes();
  seed.raw(BytesView(rb.data(), rb.size()));
  seed.blob(plaintext);
  const KeyPair ephemeral = KeyPair::from_seed_bytes(
      BytesView(seed.bytes().data(), seed.bytes().size()));

  const U256 shared = ephemeral.shared_secret(recipient);
  const Digest key = kdf(shared, ephemeral.public_key().y, recipient);

  BytesWriter out;
  const Bytes epk = ephemeral.public_key().y.to_be_bytes();
  out.raw(BytesView(epk.data(), epk.size()));
  const Bytes sealed = seal(key.view(), entropy, plaintext);
  out.raw(BytesView(sealed.data(), sealed.size()));
  return out.take();
}

Result<Bytes> open_box(const KeyPair& recipient, BytesView sealed) {
  if (sealed.size() < 32 + 8 + 32) return fail("sealed box too short");
  const U256 ephemeral_pk = U256::from_be_bytes(sealed.subspan(0, 32));
  if (ephemeral_pk.is_zero() || ephemeral_pk >= group_prime())
    return fail("sealed box: bad ephemeral key");
  const U256 shared = recipient.shared_secret(PublicKey{ephemeral_pk});
  const Digest key = kdf(shared, ephemeral_pk, recipient.public_key());
  return open(key.view(), sealed.subspan(32));
}

}  // namespace debuglet::crypto
