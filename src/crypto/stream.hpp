// Symmetric stream cipher (PRF counter mode over HMAC-SHA256).
//
// Supports the paper's private-results option (§IV-C): "an initiator may
// want to keep the results private by encrypting the results in the client
// and server applications using a cryptographic key embedded in the
// applications. In that case, the results are not readable by third
// parties."
//
// Construction: keystream block i = HMAC-SHA256(key, nonce || i); the
// ciphertext is plaintext XOR keystream. Encryption and decryption are the
// same operation. An authenticated variant appends an HMAC tag over
// (nonce || ciphertext).
#pragma once

#include "crypto/sha256.hpp"

namespace debuglet::crypto {

/// XORs `data` with the keystream derived from (key, nonce). Apply twice
/// to decrypt. Any key/nonce lengths are accepted; independence across
/// messages requires distinct nonces per key.
Bytes stream_xor(BytesView key, std::uint64_t nonce, BytesView data);

/// Encrypt-then-MAC: nonce || ciphertext || HMAC(key_mac, nonce || ct).
/// The MAC key is derived from `key`, so one secret covers both.
Bytes seal(BytesView key, std::uint64_t nonce, BytesView plaintext);

/// Verifies and decrypts a seal() output. Fails on truncation or a bad tag.
Result<Bytes> open(BytesView key, BytesView sealed);

}  // namespace debuglet::crypto
