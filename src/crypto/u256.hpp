// 256-bit unsigned integer arithmetic.
//
// Provides the modular arithmetic needed by the Schnorr signature scheme in
// schnorr.hpp: full 256x256→512-bit products, long-division reduction, and
// square-and-multiply modular exponentiation. Not constant-time — this is a
// reproduction's certification substrate, not deployed cryptography.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "util/bytes.hpp"
#include "util/result.hpp"

namespace debuglet::crypto {

/// 256-bit unsigned integer, 4 little-endian 64-bit limbs.
struct U256 {
  std::array<std::uint64_t, 4> limbs{};

  constexpr U256() = default;
  constexpr explicit U256(std::uint64_t v) : limbs{v, 0, 0, 0} {}

  static U256 from_be_bytes(BytesView b);  // up to 32 big-endian bytes
  Bytes to_be_bytes() const;               // exactly 32 big-endian bytes

  /// Parses a hex string (at most 64 digits, optional "0x").
  static Result<U256> from_hex(std::string_view hex);
  std::string hex() const;

  bool is_zero() const;
  int bit_length() const;
  bool bit(int i) const;  // i in [0, 256)

  auto operator<=>(const U256& o) const {
    for (int i = 3; i >= 0; --i) {
      if (limbs[static_cast<std::size_t>(i)] != o.limbs[static_cast<std::size_t>(i)])
        return limbs[static_cast<std::size_t>(i)] < o.limbs[static_cast<std::size_t>(i)]
                   ? std::strong_ordering::less
                   : std::strong_ordering::greater;
    }
    return std::strong_ordering::equal;
  }
  bool operator==(const U256&) const = default;
};

/// 512-bit product container (8 little-endian limbs).
struct U512 {
  std::array<std::uint64_t, 8> limbs{};
  bool is_zero() const;
  int bit_length() const;
};

/// a + b, wrapping mod 2^256; `carry` (optional) receives the overflow bit.
U256 add(const U256& a, const U256& b, bool* carry = nullptr);

/// a - b, wrapping; `borrow` (optional) receives the underflow bit.
U256 sub(const U256& a, const U256& b, bool* borrow = nullptr);

/// Full 256x256 → 512-bit product.
U512 mul_wide(const U256& a, const U256& b);

/// x mod m via binary long division. Precondition: m != 0.
U256 mod(const U512& x, const U256& m);
U256 mod(const U256& x, const U256& m);

/// (a + b) mod m; operands must already be < m.
U256 add_mod(const U256& a, const U256& b, const U256& m);

/// (a - b) mod m; operands must already be < m.
U256 sub_mod(const U256& a, const U256& b, const U256& m);

/// (a * b) mod m.
U256 mul_mod(const U256& a, const U256& b, const U256& m);

/// base^exp mod m, square-and-multiply. Precondition: m > 1.
U256 pow_mod(const U256& base, const U256& exp, const U256& m);

}  // namespace debuglet::crypto
