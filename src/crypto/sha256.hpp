// SHA-256 (FIPS 180-4), implemented from scratch.
//
// Used for chain block/transaction hashing, Merkle trees, result integrity
// hashes, and as the hash inside HMAC and Schnorr challenges.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "util/bytes.hpp"

namespace debuglet::crypto {

/// A 32-byte digest with value semantics and ordering (map keys, hex I/O).
struct Digest {
  std::array<std::uint8_t, 32> bytes{};

  auto operator<=>(const Digest&) const = default;

  std::string hex() const { return to_hex(BytesView(bytes.data(), bytes.size())); }
  BytesView view() const { return BytesView(bytes.data(), bytes.size()); }

  /// First 8 bytes as a big-endian integer; convenient short identifier.
  std::uint64_t prefix_u64() const;
};

/// Incremental SHA-256; feed any number of update() calls, then finalize().
class Sha256 {
 public:
  Sha256();

  void update(BytesView data);
  void update(std::string_view s);

  /// Completes the hash. The object must not be reused afterwards.
  Digest finalize();

 private:
  void process_block(const std::uint8_t* block);
  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_{};
  std::size_t buffer_len_ = 0;
  std::uint64_t total_len_ = 0;
  bool finalized_ = false;
};

/// One-shot hash of a byte span.
Digest sha256(BytesView data);

/// One-shot hash of a string's bytes.
Digest sha256(std::string_view s);

/// HMAC-SHA256 (RFC 2104).
Digest hmac_sha256(BytesView key, BytesView message);

}  // namespace debuglet::crypto
