#include "crypto/merkle.hpp"

#include <stdexcept>

namespace debuglet::crypto {

namespace {

Digest node_hash(const Digest& left, const Digest& right) {
  Sha256 h;
  const std::uint8_t prefix = 0x01;
  h.update(BytesView(&prefix, 1));
  h.update(left.view());
  h.update(right.view());
  return h.finalize();
}

}  // namespace

Digest merkle_leaf_hash(BytesView leaf) {
  Sha256 h;
  const std::uint8_t prefix = 0x00;
  h.update(BytesView(&prefix, 1));
  h.update(leaf);
  return h.finalize();
}

MerkleTree::MerkleTree(const std::vector<Bytes>& leaves)
    : leaf_count_(leaves.size()) {
  std::vector<Digest> level;
  level.reserve(leaves.size());
  for (const Bytes& leaf : leaves)
    level.push_back(merkle_leaf_hash(BytesView(leaf.data(), leaf.size())));
  if (level.empty()) level.push_back(sha256("debuglet-empty-merkle-tree"));
  levels_.push_back(std::move(level));
  while (levels_.back().size() > 1) {
    const auto& cur = levels_.back();
    std::vector<Digest> next;
    next.reserve((cur.size() + 1) / 2);
    for (std::size_t i = 0; i < cur.size(); i += 2) {
      // Odd tail pairs with itself; combined with domain separation this
      // keeps roots unique per leaf multiset.
      const Digest& right = (i + 1 < cur.size()) ? cur[i + 1] : cur[i];
      next.push_back(node_hash(cur[i], right));
    }
    levels_.push_back(std::move(next));
  }
}

MerkleProof MerkleTree::prove(std::size_t index) const {
  if (index >= leaf_count_)
    throw std::out_of_range("MerkleTree::prove: index out of range");
  MerkleProof proof;
  proof.leaf_index = index;
  std::size_t pos = index;
  for (std::size_t lvl = 0; lvl + 1 < levels_.size(); ++lvl) {
    const auto& level = levels_[lvl];
    const std::size_t sibling = (pos % 2 == 0) ? pos + 1 : pos - 1;
    MerkleStep step;
    step.sibling_is_left = (pos % 2 == 1);
    step.sibling = level[sibling < level.size() ? sibling : pos];
    proof.steps.push_back(step);
    pos /= 2;
  }
  return proof;
}

bool merkle_verify(const Digest& root, BytesView leaf,
                   const MerkleProof& proof) {
  Digest acc = merkle_leaf_hash(leaf);
  for (const MerkleStep& step : proof.steps) {
    acc = step.sibling_is_left ? node_hash(step.sibling, acc)
                               : node_hash(acc, step.sibling);
  }
  return acc == root;
}

}  // namespace debuglet::crypto
