// Fault localization over a 10-AS path — the paper's §VI-D scenario: "a
// path over 10 consecutive ASes with a fault in the last inter-domain
// link". The example injects the fault, runs binary-search localization
// through real marketplace-purchased Debuglet measurements, and then uses
// the §IV-B three-measurement procedure to attribute an interior slowdown.
//
// Run:  ./example_fault_localization
#include <cstdio>

#include "core/debuglet.hpp"

using namespace debuglet;

int main() {
  std::printf("Debuglet fault localization\n===========================\n\n");
  constexpr std::size_t kAses = 10;
  core::DebugletSystem system(simnet::build_chain_scenario(kAses, 7, 5.0));
  core::Initiator initiator(system, 8, 2'000'000'000'000ULL);

  // The fault: +70 ms on the LAST inter-domain link (AS9 <-> AS10).
  simnet::FaultSpec fault;
  fault.extra_delay_ms = 70.0;
  fault.start = 0;
  fault.end = duration::hours(10);
  (void)system.network().inject_fault(simnet::chain_egress(8),
                                simnet::chain_ingress(9), fault);
  (void)system.network().inject_fault(simnet::chain_ingress(9),
                                simnet::chain_egress(8), fault);
  std::printf("Injected +70 ms fault on the AS9-AS10 link (unknown to the "
              "initiator).\n\n");

  auto path = system.network().topology().shortest_path(1, kAses);
  core::FaultCriteria criteria;
  criteria.per_link_rtt_ms = 10.5;  // healthy RTT per link
  criteria.slack_ms = 15.0;
  core::FaultLocalizer localizer(system, initiator, *path, criteria,
                                 net::Protocol::kUdp,
                                 /*probes=*/8, /*interval_ms=*/100);

  for (core::Strategy strategy :
       {core::Strategy::kBinarySearch, core::Strategy::kLinearSequential}) {
    auto report = localizer.run(strategy);
    if (!report) {
      std::printf("localization failed: %s\n",
                  report.error_message().c_str());
      return 1;
    }
    std::printf("Strategy: %s\n", core::strategy_name(strategy).c_str());
    for (const core::LocalizationStep& step : report->steps) {
      std::printf("  measured AS%u..AS%u: mean %7.2f ms, loss %4.1f%%  -> "
                  "%s\n",
                  path->hops[step.from_hop].asn, path->hops[step.to_hop].asn,
                  step.summary.mean_ms, 100.0 * step.summary.loss_rate(),
                  step.faulty ? "FAULTY" : "healthy");
    }
    if (report->located) {
      std::printf("  => fault on the AS%u - AS%u link\n",
                  path->hops[report->fault_link].asn,
                  path->hops[report->fault_link + 1].asn);
    } else {
      std::printf("  => no fault found\n");
    }
    std::printf("  cost: %zu measurements, %.4f SUI, time-to-locate %s\n\n",
                report->measurements, chain::mist_to_sui(report->tokens_spent),
                format_duration(report->time_to_locate()).c_str());
  }

  // §IV-B: distinguishing an AS interior from its links — slow AS5's
  // interior and derive its contribution from three measurements.
  std::printf("Interior attribution (paper Fig. 6 procedure):\n");
  system.network().configure_transit(5, {20.0, 0.1, 0.0});
  auto derived = localizer.derive_intra_as(4);  // hop index of AS5
  if (!derived) {
    std::printf("derivation failed: %s\n", derived.error_message().c_str());
    return 1;
  }
  std::printf("  whole segment (A..D): %.2f ms\n", derived->whole.mean_ms);
  std::printf("  left link    (A..B): %.2f ms\n", derived->left_link.mean_ms);
  std::printf("  right link   (C..D): %.2f ms\n",
              derived->right_link.mean_ms);
  std::printf("  => AS5 interior contributes %.2f ms per RTT "
              "(injected: 2 x 20 ms)\n",
              derived->intra_as_mean_ms());
  return 0;
}
