// The paper's §II motivation, runnable: probe one inter-domain pair with
// all four protocols (equal-length packets, one per second) and watch the
// network treat them differently — which is exactly why Debuglet probes
// must be indistinguishable from the data traffic being debugged.
//
// Run:  ./example_protocol_comparison [city]     (default: NewYork)
#include <cstdio>
#include <string>

#include "simnet/hosts.hpp"
#include "simnet/scenarios.hpp"

using namespace debuglet;
using namespace debuglet::simnet;
using net::Protocol;

int main(int argc, char** argv) {
  std::string city = argc > 1 ? argv[1] : "NewYork";
  bool known = false;
  for (const std::string& name : city_names()) known = known || name == city;
  if (!known) {
    std::printf("unknown city '%s'; choose from:", city.c_str());
    for (const std::string& name : city_names())
      std::printf(" %s", name.c_str());
    std::printf("\n");
    return 1;
  }

  std::printf("Protocol-differential forwarding: %s <-> London\n", city.c_str());
  std::printf("================================================\n\n");

  Scenario s = build_city_scenario(2024);
  const auto server_addr = s.network->allocate_host_address(london_as());
  EchoServerHost server(*s.network, server_addr);
  if (!s.network->attach_host(server_addr, &server)) return 1;
  const auto client_addr = s.network->allocate_host_address(city_as(city));
  ProbeClientConfig cfg;
  cfg.server = server_addr;
  cfg.probe_count = 4 * 3600;  // 4 simulated hours
  cfg.interval = duration::seconds(1);
  cfg.equalized_length = 64;  // identical layer-3 length for all protocols
  ProbeClientHost client(*s.network, client_addr, cfg, 5);
  if (!s.network->attach_host(client_addr, &client)) return 1;
  client.start();
  s.queue->run();

  const ProbeReport& report = client.report();
  std::printf("4 simulated hours, one 64-byte probe per protocol per "
              "second:\n\n");
  std::printf("%-6s | %9s %8s %8s %8s | %9s\n", "proto", "mean(ms)",
              "std(ms)", "p5", "p95", "loss(pm)");
  std::printf("%.*s\n", 64,
              "----------------------------------------------------------------");
  for (Protocol p : net::kAllProtocols) {
    const SampleSet& rtt = report.rtt_ms.at(p);
    std::printf("%-6s | %9.2f %8.2f %8.2f %8.2f | %9.2f\n",
                net::protocol_name(p).c_str(), rtt.mean(), rtt.stddev(),
                rtt.percentile(5), rtt.percentile(95),
                report.loss_per_mille(p));
  }

  std::printf(
      "\nSame destination, same packet length, same second — different\n"
      "protocol, different fate. Debugging a TCP application with ICMP\n"
      "pings measures a path your packets never experience; that is the\n"
      "case for Debuglet's real-data-packet probes (paper Section II).\n");
  return 0;
}
