// Decentralized discovery (paper §VI-A): learn executor addresses from
// route metadata instead of a marketplace, negotiate bilaterally, run the
// measurement directly, and get back AS-signed (though not publicly
// published) results.
//
// Run:  ./example_decentralized_discovery
#include <cstdio>

#include "core/debuglet.hpp"

using namespace debuglet;
using net::Protocol;

int main() {
  std::printf("Decentralized executor discovery\n");
  std::printf("================================\n\n");

  simnet::Scenario s = simnet::build_chain_scenario(5, 404, 5.0);
  executor::ExecutorService local_exec(*s.network, simnet::chain_egress(0),
                                       crypto::KeyPair::from_seed(11), {},
                                       21);
  executor::ExecutorService remote_exec(*s.network, simnet::chain_ingress(4),
                                        crypto::KeyPair::from_seed(12), {},
                                        22);

  // ISPs advertise executors as route metadata; the flood converges across
  // the AS graph in simulated time.
  core::DiscoveryGossip gossip(*s.network, duration::milliseconds(50));
  gossip.originate_all();
  s.queue->run();
  std::printf("Routing flood: %llu messages, converged at %s\n",
              static_cast<unsigned long long>(gossip.messages_sent()),
              format_time(gossip.last_arrival()).c_str());

  std::printf("\nAS1's executor directory (learned from routing):\n");
  for (const core::ExecutorAdvertisement& adv : gossip.known_at(1)) {
    std::printf("  AS%-3u ->", adv.origin);
    for (std::size_t i = 0; i < adv.executors.size(); ++i)
      std::printf(" %s@%s", adv.executors[i].to_string().c_str(),
                  adv.addresses[i].to_string().c_str());
    std::printf("\n");
  }

  // Bilateral negotiation with AS5's executor, then direct deployment.
  auto adv = gossip.lookup(1, 5);
  if (!adv) {
    std::printf("lookup failed: %s\n", adv.error_message().c_str());
    return 1;
  }
  constexpr std::uint16_t kPort = 48123;
  apps::ProbeClientParams cp;
  cp.protocol = Protocol::kUdp;
  cp.server = adv->addresses[0];
  cp.server_port = kPort;
  cp.probe_count = 10;
  cp.interval_ms = 100;
  cp.recv_timeout_ms = 1000;
  executor::DebugletApp client_app;
  client_app.application_id = 1;
  client_app.module_bytes = apps::make_probe_client_debuglet().serialize();
  client_app.manifest = apps::client_manifest(Protocol::kUdp,
                                              adv->addresses[0], 10,
                                              duration::seconds(30));
  client_app.parameters = cp.to_parameters();

  apps::EchoServerParams sp;
  sp.protocol = Protocol::kUdp;
  sp.idle_timeout_ms = 2000;
  executor::DebugletApp server_app;
  server_app.application_id = 2;
  server_app.module_bytes = apps::make_echo_server_debuglet().serialize();
  server_app.manifest = apps::server_manifest(
      Protocol::kUdp, local_exec.address(), 20, duration::seconds(30));
  server_app.parameters = sp.to_parameters();
  server_app.listen_port = kPort;

  std::optional<core::BilateralOutcome> outcome;
  auto status = core::run_bilateral(
      local_exec, remote_exec, std::move(client_app), std::move(server_app),
      s.queue->now() + duration::milliseconds(100),
      [&](const core::BilateralOutcome& o) { outcome = o; });
  if (!status) {
    std::printf("bilateral failed: %s\n", status.error_message().c_str());
    return 1;
  }
  s.queue->run();
  if (!outcome) {
    std::printf("no outcome\n");
    return 1;
  }

  auto samples = apps::decode_samples(BytesView(
      outcome->client.record.output.data(),
      outcome->client.record.output.size()));
  RunningStats stats;
  for (const auto& sample : *samples)
    stats.add(static_cast<double>(sample.delay_ns) / 1e6);
  std::printf("\nBilateral measurement AS1 -> AS5: %zu/10 answered, mean "
              "%.2f ms\n",
              samples->size(), stats.mean());
  std::printf("Results AS-signed: client %s, server %s\n",
              executor::verify_certified(outcome->client) ? "yes" : "NO",
              executor::verify_certified(outcome->server) ? "yes" : "NO");
  std::printf(
      "\nTrade-off vs the marketplace (paper Section VI-A): no single point\n"
      "of failure and no chain fees, but the results live only with the\n"
      "initiator — third parties cannot audit them publicly.\n");
  return 0;
}
