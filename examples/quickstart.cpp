// Quickstart: the full Debuglet lifecycle in ~100 lines.
//
//   1. Build a small inter-domain world (a 4-AS chain) with an executor at
//      every border router, all registered on the marketplace chain.
//   2. As an initiator, look up and purchase a pair of execution slots and
//      attach the probe-client / echo-server Debuglet bytecodes.
//   3. Let the simulation run: executors pull the applications from the
//      chain, run them in the DVM sandbox, and publish certified results.
//   4. Collect the results, verify the AS signatures, and print the RTTs.
//
// Run:  ./example_quickstart
#include <cstdio>

#include "core/debuglet.hpp"

using namespace debuglet;

int main() {
  std::printf("Debuglet quickstart\n===================\n\n");

  // 1. A 4-AS chain, 5 ms per inter-domain hop; executors deployed and
  //    registered on-chain automatically by DebugletSystem.
  core::DebugletSystem system(simnet::build_chain_scenario(4, /*seed=*/1,
                                                           /*hop_ms=*/5.0));
  std::printf("Topology: AS1 - AS2 - AS3 - AS4 (5 ms per link)\n");
  std::printf("Executors on-chain: %zu\n\n", system.executor_keys().size());

  // 2. A funded initiator purchases an RTT measurement between the egress
  //    border of AS1 and the ingress border of AS4: 20 UDP probes, one
  //    every 200 ms.
  core::Initiator initiator(system, /*seed=*/99,
                            /*funding=*/500'000'000'000ULL);
  auto handle = initiator.purchase_rtt_measurement(
      /*client_key=*/{1, 2}, /*server_key=*/{4, 1}, net::Protocol::kUdp,
      /*probe_count=*/20, /*interval_ms=*/200);
  if (!handle) {
    std::printf("purchase failed: %s\n", handle.error_message().c_str());
    return 1;
  }
  std::printf("Purchased measurement window [%s, %s] for %.4f SUI\n",
              format_time(handle->window_start).c_str(),
              format_time(handle->window_end).c_str(),
              chain::mist_to_sui(handle->price_paid));

  // 3. Run the world until the results publish.
  SimTime deadline = handle->window_end + duration::seconds(2);
  Result<core::MeasurementOutcome> outcome = fail("pending");
  for (int attempt = 0; attempt < 5 && !outcome; ++attempt) {
    system.queue().run_until(deadline);
    outcome = initiator.collect(*handle);
    deadline += duration::seconds(5);
  }
  if (!outcome) {
    std::printf("collect failed: %s\n", outcome.error_message().c_str());
    return 1;
  }

  // 4. collect() has already verified both AS signatures and the on-chain
  //    copies; show it explicitly anyway.
  const auto as1_key = system.as_public_key(1);
  std::printf("\nClient result certified by AS1: %s\n",
              executor::verify_certified(outcome->client, &*as1_key)
                  ? "signature OK"
                  : "SIGNATURE FAILED");
  std::printf("Chain integrity: %s\n",
              system.chain().verify_integrity() ? "OK" : "BROKEN");

  auto summary = core::summarize_rtt(outcome->client, 20);
  std::printf("\nMeasured AS1->AS4 segment (20 UDP probes):\n");
  std::printf("  answered : %zu/20 (loss %.1f%%)\n", summary->probes_answered,
              100.0 * summary->loss_rate());
  std::printf("  RTT      : mean %.2f ms, std %.2f ms, min %.2f, max %.2f\n",
              summary->mean_ms, summary->std_ms, summary->min_ms,
              summary->max_ms);
  std::printf("\nPer-probe samples:\n");
  auto samples = apps::decode_samples(BytesView(
      outcome->client.record.output.data(),
      outcome->client.record.output.size()));
  for (const auto& sample : *samples) {
    std::printf("  probe %2llu: %.3f ms\n",
                static_cast<unsigned long long>(sample.sequence),
                static_cast<double>(sample.delay_ns) / 1e6);
  }
  std::printf("\nExecutor earnings recorded on-chain; initiator spent %.4f "
              "SUI total (slots + gas).\n",
              chain::mist_to_sui(initiator.total_spent()));
  return 0;
}
