// Writing your own Debuglet: "programmable" is the point of the paper.
//
// This example authors a custom measurement program in DVM assembly — an
// exception-reporting RTT watchdog that only records probes slower than a
// threshold (keeping on-chain result bytes, and therefore storage fees,
// minimal) — validates it, ships it through the marketplace with a
// matching manifest, and reads back the certified exception report.
//
// Run:  ./example_custom_debuglet
#include <cstdio>

#include "core/debuglet.hpp"
#include "vm/assembler.hpp"
#include "vm/validator.hpp"

using namespace debuglet;

// Parameters: 0=proto 1=server 2=port 3=count 4=interval_ms 5=timeout_ms
//             6=payload_len 7=threshold_ms
// Output: one (seq, rtt_ms) record per probe slower than the threshold.
static const char* kWatchdogSource = R"(
memory 8192
import dbg_param
import dbg_now
import dbg_send
import dbg_recv
import dbg_sleep
import dbg_output

func run_debuglet locals 5
; locals: 0=i  1=slow_count  2=t0  3=len  4=rtt_ms
top:
  local.get 0
  const 3
  call_host dbg_param
  ge_s
  jump_if done

  call_host dbg_now            ; t0 = now
  local.set 2

  const 1024                   ; payload[0..8) = seq
  local.get 0
  store64
  const 1024                   ; payload[8..16) = t0
  local.get 2
  store64 8

  const 0                      ; dbg_send(proto, server, port, buf, len)
  call_host dbg_param
  const 1
  call_host dbg_param
  const 2
  call_host dbg_param
  const 1024
  const 6
  call_host dbg_param
  call_host dbg_send
  drop

  const 0                      ; len = dbg_recv(proto, buf, cap, timeout)
  call_host dbg_param
  const 2048
  const 512
  const 5
  call_host dbg_param
  call_host dbg_recv
  local.set 3

  local.get 3                  ; timeout or runt reply -> next
  const 16
  lt_s
  jump_if next

  const 2048                   ; stale reply -> next
  load64
  local.get 0
  ne
  jump_if next

  call_host dbg_now            ; rtt_ms = (now - t0) / 1e6
  local.get 2
  sub
  const 1000000
  div_s
  local.set 4

  local.get 4                  ; fast probe -> not an exception
  const 7
  call_host dbg_param
  le_s
  jump_if next

  const 3072                   ; report (seq, rtt_ms)
  local.get 0
  store64
  const 3072
  local.get 4
  store64 8
  const 3072
  const 16
  call_host dbg_output
  drop
  local.get 1
  const 1
  add
  local.set 1

next:
  local.get 0
  const 1
  add
  local.set 0
  const 4
  call_host dbg_param
  call_host dbg_sleep
  drop
  jump top

done:
  local.get 1
  return
end
)";

int main() {
  std::printf("Custom Debuglet: RTT exception watchdog\n");
  std::printf("=======================================\n\n");

  // 1. Assemble and validate the custom program.
  auto module = vm::assemble(kWatchdogSource);
  if (!module) {
    std::printf("assembly failed: %s\n", module.error_message().c_str());
    return 1;
  }
  if (auto valid = vm::validate(*module); !valid) {
    std::printf("validation failed: %s\n", valid.error_message().c_str());
    return 1;
  }
  const Bytes bytecode = module->serialize();
  std::printf("Assembled watchdog: %zu instructions, %zu bytecode bytes\n",
              module->functions[0].code.size(), bytecode.size());

  // 2. A world with a TRANSIENT fault: +80 ms on the middle link between
  //    t=5s and t=12s. The watchdog should flag exactly the probes inside
  //    that window.
  core::DebugletSystem system(simnet::build_chain_scenario(4, 2121, 5.0));
  simnet::FaultSpec fault;
  fault.extra_delay_ms = 80.0;
  fault.start = duration::seconds(5);
  fault.end = duration::seconds(12);
  (void)system.network().inject_fault(simnet::chain_egress(1),
                                simnet::chain_ingress(2), fault);

  core::Initiator initiator(system, 2122, 500'000'000'000ULL);
  const auto& topo = system.network().topology();
  const net::Ipv4Address server_addr = topo.address_of({4, 1});

  // 3. Ship it through the marketplace with a matching manifest.
  constexpr std::int64_t kProbes = 40;
  constexpr std::uint16_t kPort = 46123;
  core::MeasurementRequest request;
  request.client_key = {1, 2};
  request.server_key = {4, 1};
  request.client_app.bytecode = bytecode;
  request.client_app.manifest =
      apps::client_manifest(net::Protocol::kUdp, server_addr, kProbes,
                            duration::seconds(60))
          .serialize();
  request.client_app.parameters = {
      static_cast<std::int64_t>(net::Protocol::kUdp),
      static_cast<std::int64_t>(server_addr.value),
      kPort,
      kProbes,
      /*interval_ms=*/500,
      /*timeout_ms=*/450,
      /*payload_len=*/16,
      /*threshold_ms=*/40};
  apps::EchoServerParams sp;
  sp.protocol = net::Protocol::kUdp;
  sp.idle_timeout_ms = 3000;
  request.server_app.bytecode = apps::make_echo_server_debuglet().serialize();
  request.server_app.manifest =
      apps::server_manifest(net::Protocol::kUdp,
                            topo.address_of({1, 2}), kProbes,
                            duration::seconds(60))
          .serialize();
  request.server_app.parameters = sp.to_parameters();
  request.server_app.listen_port = kPort;

  auto handle = initiator.purchase(request);
  if (!handle) {
    std::printf("purchase failed: %s\n", handle.error_message().c_str());
    return 1;
  }

  SimTime deadline = handle->window_end + duration::seconds(30);
  Result<core::MeasurementOutcome> outcome = fail("pending");
  for (int i = 0; i < 6 && !outcome; ++i) {
    system.queue().run_until(deadline);
    outcome = initiator.collect(*handle);
    deadline += duration::seconds(10);
  }
  if (!outcome) {
    std::printf("collect failed: %s\n", outcome.error_message().c_str());
    return 1;
  }

  // 4. The certified exception report.
  std::printf("\nWatchdog ran %lld probes (one per 500 ms), threshold 40 "
              "ms;\nfault window [5 s, 12 s) injected +80 ms.\n\n",
              static_cast<long long>(kProbes));
  std::printf("Exceptions reported on-chain (%zu bytes instead of %lld):\n",
              outcome->client.record.output.size(),
              static_cast<long long>(kProbes * 16));
  auto records = apps::decode_samples(BytesView(
      outcome->client.record.output.data(),
      outcome->client.record.output.size()));
  for (const auto& r : *records) {
    std::printf("  probe %2llu: %lld ms\n",
                static_cast<unsigned long long>(r.sequence),
                static_cast<long long>(r.delay_ns));  // watchdog reports ms
  }
  std::printf("\nSlow probes flagged: %lld (certified exit value)\n",
              static_cast<long long>(outcome->client.record.exit_value));
  std::printf("Result certified by AS1 and recorded on-chain: %s\n",
              executor::verify_certified(outcome->client) ? "yes" : "NO");
  return 0;
}
