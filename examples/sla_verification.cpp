// SLA verification (paper §VI-B): a subscriber measures its provider's
// segment with Debuglets, publishes the certified results on-chain, and a
// third party (an arbiter) verifies them without trusting either side.
// The example also shows why cheating fails: results cannot be forged
// (wrong signature), re-signed (wrong AS key), re-reported (contract
// rejects double reports), or silently altered on-chain (hash links).
//
// Run:  ./example_sla_verification
#include <cstdio>

#include "core/debuglet.hpp"
#include "marketplace/contract.hpp"

using namespace debuglet;

int main() {
  std::printf("Debuglet SLA verification\n=========================\n\n");

  // AS1 is the subscriber's ISP; AS2 its provider; the SLA covers the
  // AS1-AS2 inter-domain link, promised at < 15 ms RTT / < 1% loss.
  core::DebugletSystem system(simnet::build_chain_scenario(3, 77, 5.0));
  core::Initiator subscriber(system, 78, 500'000'000'000ULL);

  // Tonight the provider's link is congested: +25 ms standing queue.
  simnet::FaultSpec congestion;
  congestion.extra_delay_ms = 25.0;
  congestion.start = 0;
  congestion.end = duration::hours(10);
  (void)system.network().inject_fault(simnet::chain_egress(0),
                                simnet::chain_ingress(1), congestion);

  auto handle = subscriber.purchase_rtt_measurement(
      {1, 2}, {2, 1}, net::Protocol::kUdp, 15, 200);
  if (!handle) {
    std::printf("purchase failed: %s\n", handle.error_message().c_str());
    return 1;
  }
  SimTime deadline = handle->window_end + duration::seconds(2);
  Result<core::MeasurementOutcome> outcome = fail("pending");
  for (int attempt = 0; attempt < 5 && !outcome; ++attempt) {
    system.queue().run_until(deadline);
    outcome = subscriber.collect(*handle);
    deadline += duration::seconds(5);
  }
  if (!outcome) {
    std::printf("collect failed: %s\n", outcome.error_message().c_str());
    return 1;
  }

  auto summary = core::summarize_rtt(outcome->client, 15);
  const bool violated = summary->mean_ms > 15.0 || summary->loss_rate() > 0.01;
  std::printf("Measured provider segment: mean %.2f ms, loss %.1f%%\n",
              summary->mean_ms, 100.0 * summary->loss_rate());
  std::printf("SLA (<15 ms, <1%% loss): %s\n\n",
              violated ? "VIOLATED -> refund claim filed" : "met");

  // --- The arbiter's view: nothing but public data -------------------------
  std::printf("Arbiter verification:\n");
  const auto as1_pk = system.as_public_key(1);
  const bool sig_ok = executor::verify_certified(outcome->client, &*as1_pk);
  std::printf("  result signed by the hosting AS        : %s\n",
              sig_ok ? "yes" : "NO");
  std::printf("  blockchain hash links intact           : %s\n",
              system.chain().verify_integrity() ? "yes" : "NO");
  marketplace::LookupResultArgs lookup;
  lookup.application = handle->client_application;
  auto view = system.chain().view(marketplace::kContractName, "LookupResult",
                                  lookup.serialize());
  auto entry = marketplace::ResultEntry::parse(
      BytesView(view->data(), view->size()));
  std::printf("  result publicly retrievable on-chain   : %s (object %llu)\n",
              entry->found ? "yes" : "NO",
              static_cast<unsigned long long>(entry->result_object));

  // --- Cheating attempts ----------------------------------------------------
  std::printf("\nCheating attempts (all must fail):\n");

  // 1. The provider forges a rosier result and re-signs with its own key.
  executor::ResultRecord rosy = outcome->client.record;
  rosy.output.clear();
  const crypto::KeyPair provider_key = crypto::KeyPair::from_seed(666);
  executor::CertifiedResult forged = executor::certify(rosy, provider_key);
  std::printf("  forged result vs AS1's public key      : %s\n",
              executor::verify_certified(forged, &*as1_pk)
                  ? "ACCEPTED (bug!)"
                  : "rejected");

  // 2. The provider tampers with the record but keeps the old signature.
  executor::CertifiedResult tampered = outcome->client;
  tampered.record.output.clear();
  std::printf("  tampered record, original signature    : %s\n",
              executor::verify_certified(tampered) ? "ACCEPTED (bug!)"
                                                   : "rejected");

  // 3. The hosting AS tries to re-report a better result on-chain.
  auto agent = system.agent({1, 2});
  marketplace::ResultReadyArgs again;
  again.application = handle->client_application;
  again.result = executor::certify(rosy, (*agent)->operator_key())
                     .serialize();
  auto receipt = system.chain().submit(system.chain().make_transaction(
      (*agent)->operator_key(), marketplace::kContractName, "ResultReady",
      again.serialize()));
  std::printf("  double ResultReady on the contract     : %s (%s)\n",
              receipt->success ? "ACCEPTED (bug!)" : "rejected",
              receipt->error.c_str());
  return 0;
}
