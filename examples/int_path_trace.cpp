// In-band path trace: one probe per city, per-hop records printed.
//
// Enables INT on the paper's calibrated 7-city world (§II) and sends a
// single UDP probe from London to each remote site. Every border router
// on the way appends a hop record — AS, ingress/egress interface,
// ingress/egress timestamps, queue depth (live congestion episodes at
// enqueue), cumulative drop and wire-fault counters — and the receiver
// prints the distilled per-link evidence next to Table I's published
// one-way estimate. No executors, no marketplace: the path explains
// itself in band.
//
// Run:  ./example_int_path_trace
#include <cstdio>
#include <vector>

#include "simnet/scenarios.hpp"
#include "telemetry/int_header.hpp"
#include "telemetry/path_evidence.hpp"

using namespace debuglet;

namespace {

struct Collector : simnet::Host {
  std::vector<simnet::Delivery> deliveries;
  void on_packet(const simnet::Delivery& d) override {
    deliveries.push_back(d);
  }
};

}  // namespace

int main() {
  std::printf("In-band path trace over the 7-city world\n");
  std::printf("========================================\n\n");

  simnet::Scenario scenario = simnet::build_city_scenario(/*seed=*/20260808);
  scenario.network->set_int_enabled(true);

  const topology::AsNumber london = simnet::london_as();
  for (const std::string& city : simnet::city_names()) {
    const topology::AsNumber remote = simnet::city_as(city);
    auto path = scenario.network->topology().shortest_path(london, remote);
    if (!path) {
      std::printf("%s: no path (%s)\n", city.c_str(),
                  path.error_message().c_str());
      continue;
    }
    const std::size_t links = path->length() - 1;

    Collector collector;
    const auto src = scenario.network->allocate_host_address(london);
    const auto dst = scenario.network->allocate_host_address(remote);
    if (!scenario.network->attach_host(dst, &collector)) continue;

    net::ProbeSpec spec;
    spec.protocol = net::Protocol::kUdp;
    spec.source = src;
    spec.destination = dst;
    spec.source_port = 47000;
    spec.destination_port = 47001;
    spec.payload = telemetry::IntHeader::reserve(
                       static_cast<std::uint8_t>(links))
                       .serialize();
    auto wire = net::build_probe(spec);
    if (!wire || !scenario.network->send(src, std::move(*wire))) {
      scenario.network->detach_host(dst);
      continue;
    }
    scenario.queue->run();
    scenario.network->detach_host(dst);

    std::printf("London -> %s", city.c_str());
    if (collector.deliveries.empty()) {
      std::printf(": probe lost (calibrated loss — try another seed)\n\n");
      continue;
    }
    const simnet::Delivery& d = collector.deliveries.front();
    auto header = telemetry::IntHeader::parse(
        BytesView(d.packet.payload.data(), d.packet.payload.size()));
    if (!header) {
      std::printf(": INT stack unreadable: %s\n\n",
                  header.error_message().c_str());
      continue;
    }
    auto evidence =
        telemetry::PathEvidence::from_header(*header, *path, d.sent_at);
    if (!evidence) {
      std::printf(": %s\n\n", evidence.error_message().c_str());
      continue;
    }

    const double paper_one_way =
        simnet::paper_table1(city, net::Protocol::kUdp).mean_ms / 2.0;
    std::printf("  (1 probe, %zu hop record%s; Table I UDP one-way est. "
                "%.1f ms)\n",
                evidence->links(), evidence->links() == 1 ? "" : "s",
                paper_one_way);
    std::printf("  %-4s %-6s %-9s | %10s %10s %7s %7s %7s\n", "hop", "AS",
                "iface", "link(ms)", "resid(ms)", "queue", "drops",
                "faults");
    for (const telemetry::LinkObservation& o : evidence->observations()) {
      std::printf("  %-4zu %-6u %3u->%-5u | %10.3f %10.3f %7u %7u %7u\n",
                  o.link, o.record.asn, o.record.ingress_interface,
                  o.record.egress_interface, o.one_way_ms, o.residence_ms,
                  o.record.queue_depth, o.record.drops_seen,
                  o.record.wire_faults);
    }
    std::printf("\n");
  }
  return 0;
}
