file(REMOVE_RECURSE
  "CMakeFiles/example_custom_debuglet.dir/custom_debuglet.cpp.o"
  "CMakeFiles/example_custom_debuglet.dir/custom_debuglet.cpp.o.d"
  "example_custom_debuglet"
  "example_custom_debuglet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_custom_debuglet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
