# Empty dependencies file for example_custom_debuglet.
# This may be replaced when dependencies are built.
