file(REMOVE_RECURSE
  "CMakeFiles/example_fault_localization.dir/fault_localization.cpp.o"
  "CMakeFiles/example_fault_localization.dir/fault_localization.cpp.o.d"
  "example_fault_localization"
  "example_fault_localization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_fault_localization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
