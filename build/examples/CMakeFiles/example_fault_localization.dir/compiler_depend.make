# Empty compiler generated dependencies file for example_fault_localization.
# This may be replaced when dependencies are built.
