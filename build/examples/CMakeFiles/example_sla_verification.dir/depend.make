# Empty dependencies file for example_sla_verification.
# This may be replaced when dependencies are built.
