file(REMOVE_RECURSE
  "CMakeFiles/example_sla_verification.dir/sla_verification.cpp.o"
  "CMakeFiles/example_sla_verification.dir/sla_verification.cpp.o.d"
  "example_sla_verification"
  "example_sla_verification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_sla_verification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
