file(REMOVE_RECURSE
  "CMakeFiles/example_decentralized_discovery.dir/decentralized_discovery.cpp.o"
  "CMakeFiles/example_decentralized_discovery.dir/decentralized_discovery.cpp.o.d"
  "example_decentralized_discovery"
  "example_decentralized_discovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_decentralized_discovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
