# Empty dependencies file for example_decentralized_discovery.
# This may be replaced when dependencies are built.
