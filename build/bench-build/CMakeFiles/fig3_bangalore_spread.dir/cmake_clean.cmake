file(REMOVE_RECURSE
  "../bench/fig3_bangalore_spread"
  "../bench/fig3_bangalore_spread.pdb"
  "CMakeFiles/fig3_bangalore_spread.dir/fig3_bangalore_spread.cpp.o"
  "CMakeFiles/fig3_bangalore_spread.dir/fig3_bangalore_spread.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_bangalore_spread.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
