# Empty compiler generated dependencies file for fig3_bangalore_spread.
# This may be replaced when dependencies are built.
