file(REMOVE_RECURSE
  "../bench/table2_chain_costs"
  "../bench/table2_chain_costs.pdb"
  "CMakeFiles/table2_chain_costs.dir/table2_chain_costs.cpp.o"
  "CMakeFiles/table2_chain_costs.dir/table2_chain_costs.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_chain_costs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
