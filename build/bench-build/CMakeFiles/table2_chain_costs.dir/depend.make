# Empty dependencies file for table2_chain_costs.
# This may be replaced when dependencies are built.
