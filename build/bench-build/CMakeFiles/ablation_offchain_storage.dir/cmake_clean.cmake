file(REMOVE_RECURSE
  "../bench/ablation_offchain_storage"
  "../bench/ablation_offchain_storage.pdb"
  "CMakeFiles/ablation_offchain_storage.dir/ablation_offchain_storage.cpp.o"
  "CMakeFiles/ablation_offchain_storage.dir/ablation_offchain_storage.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_offchain_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
