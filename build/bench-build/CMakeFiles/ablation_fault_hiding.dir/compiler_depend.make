# Empty compiler generated dependencies file for ablation_fault_hiding.
# This may be replaced when dependencies are built.
