file(REMOVE_RECURSE
  "../bench/ablation_fault_hiding"
  "../bench/ablation_fault_hiding.pdb"
  "CMakeFiles/ablation_fault_hiding.dir/ablation_fault_hiding.cpp.o"
  "CMakeFiles/ablation_fault_hiding.dir/ablation_fault_hiding.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_fault_hiding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
