file(REMOVE_RECURSE
  "../bench/table1_protocol_rtt"
  "../bench/table1_protocol_rtt.pdb"
  "CMakeFiles/table1_protocol_rtt.dir/table1_protocol_rtt.cpp.o"
  "CMakeFiles/table1_protocol_rtt.dir/table1_protocol_rtt.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_protocol_rtt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
