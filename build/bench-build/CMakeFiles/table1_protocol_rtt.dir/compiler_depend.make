# Empty compiler generated dependencies file for table1_protocol_rtt.
# This may be replaced when dependencies are built.
