# Empty compiler generated dependencies file for micro_chain.
# This may be replaced when dependencies are built.
