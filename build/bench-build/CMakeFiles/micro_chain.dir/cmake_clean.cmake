file(REMOVE_RECURSE
  "../bench/micro_chain"
  "../bench/micro_chain.pdb"
  "CMakeFiles/micro_chain.dir/micro_chain.cpp.o"
  "CMakeFiles/micro_chain.dir/micro_chain.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_chain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
