file(REMOVE_RECURSE
  "../bench/ablation_age_of_information"
  "../bench/ablation_age_of_information.pdb"
  "CMakeFiles/ablation_age_of_information.dir/ablation_age_of_information.cpp.o"
  "CMakeFiles/ablation_age_of_information.dir/ablation_age_of_information.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_age_of_information.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
