# Empty compiler generated dependencies file for ablation_age_of_information.
# This may be replaced when dependencies are built.
