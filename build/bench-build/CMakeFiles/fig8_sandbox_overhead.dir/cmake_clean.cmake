file(REMOVE_RECURSE
  "../bench/fig8_sandbox_overhead"
  "../bench/fig8_sandbox_overhead.pdb"
  "CMakeFiles/fig8_sandbox_overhead.dir/fig8_sandbox_overhead.cpp.o"
  "CMakeFiles/fig8_sandbox_overhead.dir/fig8_sandbox_overhead.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_sandbox_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
