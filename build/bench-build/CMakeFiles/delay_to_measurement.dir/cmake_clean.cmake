file(REMOVE_RECURSE
  "../bench/delay_to_measurement"
  "../bench/delay_to_measurement.pdb"
  "CMakeFiles/delay_to_measurement.dir/delay_to_measurement.cpp.o"
  "CMakeFiles/delay_to_measurement.dir/delay_to_measurement.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/delay_to_measurement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
