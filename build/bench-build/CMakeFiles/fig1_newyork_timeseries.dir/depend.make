# Empty dependencies file for fig1_newyork_timeseries.
# This may be replaced when dependencies are built.
