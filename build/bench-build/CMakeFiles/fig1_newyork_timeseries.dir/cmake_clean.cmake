file(REMOVE_RECURSE
  "../bench/fig1_newyork_timeseries"
  "../bench/fig1_newyork_timeseries.pdb"
  "CMakeFiles/fig1_newyork_timeseries.dir/fig1_newyork_timeseries.cpp.o"
  "CMakeFiles/fig1_newyork_timeseries.dir/fig1_newyork_timeseries.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_newyork_timeseries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
