# Empty compiler generated dependencies file for ablation_localization_strategy.
# This may be replaced when dependencies are built.
