file(REMOVE_RECURSE
  "../bench/ablation_localization_strategy"
  "../bench/ablation_localization_strategy.pdb"
  "CMakeFiles/ablation_localization_strategy.dir/ablation_localization_strategy.cpp.o"
  "CMakeFiles/ablation_localization_strategy.dir/ablation_localization_strategy.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_localization_strategy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
