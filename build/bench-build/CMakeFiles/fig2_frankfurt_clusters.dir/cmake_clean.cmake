file(REMOVE_RECURSE
  "../bench/fig2_frankfurt_clusters"
  "../bench/fig2_frankfurt_clusters.pdb"
  "CMakeFiles/fig2_frankfurt_clusters.dir/fig2_frankfurt_clusters.cpp.o"
  "CMakeFiles/fig2_frankfurt_clusters.dir/fig2_frankfurt_clusters.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_frankfurt_clusters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
