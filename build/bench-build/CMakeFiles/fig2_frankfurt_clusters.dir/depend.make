# Empty dependencies file for fig2_frankfurt_clusters.
# This may be replaced when dependencies are built.
