file(REMOVE_RECURSE
  "../bench/micro_simnet"
  "../bench/micro_simnet.pdb"
  "CMakeFiles/micro_simnet.dir/micro_simnet.cpp.o"
  "CMakeFiles/micro_simnet.dir/micro_simnet.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_simnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
