file(REMOVE_RECURSE
  "../bench/micro_crypto"
  "../bench/micro_crypto.pdb"
  "CMakeFiles/micro_crypto.dir/micro_crypto.cpp.o"
  "CMakeFiles/micro_crypto.dir/micro_crypto.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
