file(REMOVE_RECURSE
  "../bench/ablation_unidirectional"
  "../bench/ablation_unidirectional.pdb"
  "CMakeFiles/ablation_unidirectional.dir/ablation_unidirectional.cpp.o"
  "CMakeFiles/ablation_unidirectional.dir/ablation_unidirectional.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_unidirectional.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
