# Empty dependencies file for ablation_unidirectional.
# This may be replaced when dependencies are built.
