# Empty dependencies file for baseline_traceroute.
# This may be replaced when dependencies are built.
