file(REMOVE_RECURSE
  "../bench/baseline_traceroute"
  "../bench/baseline_traceroute.pdb"
  "CMakeFiles/baseline_traceroute.dir/baseline_traceroute.cpp.o"
  "CMakeFiles/baseline_traceroute.dir/baseline_traceroute.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_traceroute.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
