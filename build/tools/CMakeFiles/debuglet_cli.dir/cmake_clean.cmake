file(REMOVE_RECURSE
  "CMakeFiles/debuglet_cli.dir/debuglet_cli.cpp.o"
  "CMakeFiles/debuglet_cli.dir/debuglet_cli.cpp.o.d"
  "debuglet"
  "debuglet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/debuglet_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
