# Empty dependencies file for debuglet_cli.
# This may be replaced when dependencies are built.
