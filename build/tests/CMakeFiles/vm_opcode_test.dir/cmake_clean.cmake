file(REMOVE_RECURSE
  "CMakeFiles/vm_opcode_test.dir/vm_opcode_test.cpp.o"
  "CMakeFiles/vm_opcode_test.dir/vm_opcode_test.cpp.o.d"
  "vm_opcode_test"
  "vm_opcode_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vm_opcode_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
