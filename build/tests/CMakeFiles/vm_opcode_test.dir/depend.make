# Empty dependencies file for vm_opcode_test.
# This may be replaced when dependencies are built.
