
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/traceroute_test.cpp" "tests/CMakeFiles/traceroute_test.dir/traceroute_test.cpp.o" "gcc" "tests/CMakeFiles/traceroute_test.dir/traceroute_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/debuglet_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/debuglet_marketplace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/debuglet_chain.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/debuglet_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/debuglet_executor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/debuglet_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/debuglet_simnet.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/debuglet_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/debuglet_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/debuglet_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/debuglet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
