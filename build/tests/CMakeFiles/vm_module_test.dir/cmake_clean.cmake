file(REMOVE_RECURSE
  "CMakeFiles/vm_module_test.dir/vm_module_test.cpp.o"
  "CMakeFiles/vm_module_test.dir/vm_module_test.cpp.o.d"
  "vm_module_test"
  "vm_module_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vm_module_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
