# Empty compiler generated dependencies file for vm_module_test.
# This may be replaced when dependencies are built.
