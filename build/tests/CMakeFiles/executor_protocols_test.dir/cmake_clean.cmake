file(REMOVE_RECURSE
  "CMakeFiles/executor_protocols_test.dir/executor_protocols_test.cpp.o"
  "CMakeFiles/executor_protocols_test.dir/executor_protocols_test.cpp.o.d"
  "executor_protocols_test"
  "executor_protocols_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/executor_protocols_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
