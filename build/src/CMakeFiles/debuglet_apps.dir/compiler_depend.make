# Empty compiler generated dependencies file for debuglet_apps.
# This may be replaced when dependencies are built.
