file(REMOVE_RECURSE
  "CMakeFiles/debuglet_apps.dir/apps/debuglets.cpp.o"
  "CMakeFiles/debuglet_apps.dir/apps/debuglets.cpp.o.d"
  "libdebuglet_apps.a"
  "libdebuglet_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/debuglet_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
