file(REMOVE_RECURSE
  "libdebuglet_apps.a"
)
