# Empty dependencies file for debuglet_net.
# This may be replaced when dependencies are built.
