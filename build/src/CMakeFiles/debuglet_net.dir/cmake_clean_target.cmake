file(REMOVE_RECURSE
  "libdebuglet_net.a"
)
