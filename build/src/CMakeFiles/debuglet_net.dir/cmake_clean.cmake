file(REMOVE_RECURSE
  "CMakeFiles/debuglet_net.dir/net/address.cpp.o"
  "CMakeFiles/debuglet_net.dir/net/address.cpp.o.d"
  "CMakeFiles/debuglet_net.dir/net/packet.cpp.o"
  "CMakeFiles/debuglet_net.dir/net/packet.cpp.o.d"
  "libdebuglet_net.a"
  "libdebuglet_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/debuglet_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
