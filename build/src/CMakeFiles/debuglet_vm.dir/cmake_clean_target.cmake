file(REMOVE_RECURSE
  "libdebuglet_vm.a"
)
