# Empty compiler generated dependencies file for debuglet_vm.
# This may be replaced when dependencies are built.
