
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vm/assembler.cpp" "src/CMakeFiles/debuglet_vm.dir/vm/assembler.cpp.o" "gcc" "src/CMakeFiles/debuglet_vm.dir/vm/assembler.cpp.o.d"
  "/root/repo/src/vm/builder.cpp" "src/CMakeFiles/debuglet_vm.dir/vm/builder.cpp.o" "gcc" "src/CMakeFiles/debuglet_vm.dir/vm/builder.cpp.o.d"
  "/root/repo/src/vm/interpreter.cpp" "src/CMakeFiles/debuglet_vm.dir/vm/interpreter.cpp.o" "gcc" "src/CMakeFiles/debuglet_vm.dir/vm/interpreter.cpp.o.d"
  "/root/repo/src/vm/isa.cpp" "src/CMakeFiles/debuglet_vm.dir/vm/isa.cpp.o" "gcc" "src/CMakeFiles/debuglet_vm.dir/vm/isa.cpp.o.d"
  "/root/repo/src/vm/module.cpp" "src/CMakeFiles/debuglet_vm.dir/vm/module.cpp.o" "gcc" "src/CMakeFiles/debuglet_vm.dir/vm/module.cpp.o.d"
  "/root/repo/src/vm/validator.cpp" "src/CMakeFiles/debuglet_vm.dir/vm/validator.cpp.o" "gcc" "src/CMakeFiles/debuglet_vm.dir/vm/validator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/debuglet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
