file(REMOVE_RECURSE
  "CMakeFiles/debuglet_vm.dir/vm/assembler.cpp.o"
  "CMakeFiles/debuglet_vm.dir/vm/assembler.cpp.o.d"
  "CMakeFiles/debuglet_vm.dir/vm/builder.cpp.o"
  "CMakeFiles/debuglet_vm.dir/vm/builder.cpp.o.d"
  "CMakeFiles/debuglet_vm.dir/vm/interpreter.cpp.o"
  "CMakeFiles/debuglet_vm.dir/vm/interpreter.cpp.o.d"
  "CMakeFiles/debuglet_vm.dir/vm/isa.cpp.o"
  "CMakeFiles/debuglet_vm.dir/vm/isa.cpp.o.d"
  "CMakeFiles/debuglet_vm.dir/vm/module.cpp.o"
  "CMakeFiles/debuglet_vm.dir/vm/module.cpp.o.d"
  "CMakeFiles/debuglet_vm.dir/vm/validator.cpp.o"
  "CMakeFiles/debuglet_vm.dir/vm/validator.cpp.o.d"
  "libdebuglet_vm.a"
  "libdebuglet_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/debuglet_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
