
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crypto/box.cpp" "src/CMakeFiles/debuglet_crypto.dir/crypto/box.cpp.o" "gcc" "src/CMakeFiles/debuglet_crypto.dir/crypto/box.cpp.o.d"
  "/root/repo/src/crypto/merkle.cpp" "src/CMakeFiles/debuglet_crypto.dir/crypto/merkle.cpp.o" "gcc" "src/CMakeFiles/debuglet_crypto.dir/crypto/merkle.cpp.o.d"
  "/root/repo/src/crypto/schnorr.cpp" "src/CMakeFiles/debuglet_crypto.dir/crypto/schnorr.cpp.o" "gcc" "src/CMakeFiles/debuglet_crypto.dir/crypto/schnorr.cpp.o.d"
  "/root/repo/src/crypto/sha256.cpp" "src/CMakeFiles/debuglet_crypto.dir/crypto/sha256.cpp.o" "gcc" "src/CMakeFiles/debuglet_crypto.dir/crypto/sha256.cpp.o.d"
  "/root/repo/src/crypto/stream.cpp" "src/CMakeFiles/debuglet_crypto.dir/crypto/stream.cpp.o" "gcc" "src/CMakeFiles/debuglet_crypto.dir/crypto/stream.cpp.o.d"
  "/root/repo/src/crypto/u256.cpp" "src/CMakeFiles/debuglet_crypto.dir/crypto/u256.cpp.o" "gcc" "src/CMakeFiles/debuglet_crypto.dir/crypto/u256.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/debuglet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
