file(REMOVE_RECURSE
  "CMakeFiles/debuglet_crypto.dir/crypto/box.cpp.o"
  "CMakeFiles/debuglet_crypto.dir/crypto/box.cpp.o.d"
  "CMakeFiles/debuglet_crypto.dir/crypto/merkle.cpp.o"
  "CMakeFiles/debuglet_crypto.dir/crypto/merkle.cpp.o.d"
  "CMakeFiles/debuglet_crypto.dir/crypto/schnorr.cpp.o"
  "CMakeFiles/debuglet_crypto.dir/crypto/schnorr.cpp.o.d"
  "CMakeFiles/debuglet_crypto.dir/crypto/sha256.cpp.o"
  "CMakeFiles/debuglet_crypto.dir/crypto/sha256.cpp.o.d"
  "CMakeFiles/debuglet_crypto.dir/crypto/stream.cpp.o"
  "CMakeFiles/debuglet_crypto.dir/crypto/stream.cpp.o.d"
  "CMakeFiles/debuglet_crypto.dir/crypto/u256.cpp.o"
  "CMakeFiles/debuglet_crypto.dir/crypto/u256.cpp.o.d"
  "libdebuglet_crypto.a"
  "libdebuglet_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/debuglet_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
