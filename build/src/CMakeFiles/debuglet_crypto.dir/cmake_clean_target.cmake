file(REMOVE_RECURSE
  "libdebuglet_crypto.a"
)
