# Empty compiler generated dependencies file for debuglet_crypto.
# This may be replaced when dependencies are built.
