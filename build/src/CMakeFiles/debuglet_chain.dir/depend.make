# Empty dependencies file for debuglet_chain.
# This may be replaced when dependencies are built.
