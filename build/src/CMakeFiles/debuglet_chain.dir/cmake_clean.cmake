file(REMOVE_RECURSE
  "CMakeFiles/debuglet_chain.dir/chain/chain.cpp.o"
  "CMakeFiles/debuglet_chain.dir/chain/chain.cpp.o.d"
  "libdebuglet_chain.a"
  "libdebuglet_chain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/debuglet_chain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
