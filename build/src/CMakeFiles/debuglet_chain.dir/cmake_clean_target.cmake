file(REMOVE_RECURSE
  "libdebuglet_chain.a"
)
