file(REMOVE_RECURSE
  "CMakeFiles/debuglet_executor.dir/executor/executor.cpp.o"
  "CMakeFiles/debuglet_executor.dir/executor/executor.cpp.o.d"
  "CMakeFiles/debuglet_executor.dir/executor/manifest.cpp.o"
  "CMakeFiles/debuglet_executor.dir/executor/manifest.cpp.o.d"
  "CMakeFiles/debuglet_executor.dir/executor/result.cpp.o"
  "CMakeFiles/debuglet_executor.dir/executor/result.cpp.o.d"
  "libdebuglet_executor.a"
  "libdebuglet_executor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/debuglet_executor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
