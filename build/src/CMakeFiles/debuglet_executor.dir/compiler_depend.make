# Empty compiler generated dependencies file for debuglet_executor.
# This may be replaced when dependencies are built.
