file(REMOVE_RECURSE
  "libdebuglet_executor.a"
)
