file(REMOVE_RECURSE
  "libdebuglet_core.a"
)
