# Empty dependencies file for debuglet_core.
# This may be replaced when dependencies are built.
