file(REMOVE_RECURSE
  "CMakeFiles/debuglet_core.dir/core/discovery.cpp.o"
  "CMakeFiles/debuglet_core.dir/core/discovery.cpp.o.d"
  "CMakeFiles/debuglet_core.dir/core/history.cpp.o"
  "CMakeFiles/debuglet_core.dir/core/history.cpp.o.d"
  "CMakeFiles/debuglet_core.dir/core/initiator.cpp.o"
  "CMakeFiles/debuglet_core.dir/core/initiator.cpp.o.d"
  "CMakeFiles/debuglet_core.dir/core/localization.cpp.o"
  "CMakeFiles/debuglet_core.dir/core/localization.cpp.o.d"
  "CMakeFiles/debuglet_core.dir/core/system.cpp.o"
  "CMakeFiles/debuglet_core.dir/core/system.cpp.o.d"
  "libdebuglet_core.a"
  "libdebuglet_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/debuglet_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
