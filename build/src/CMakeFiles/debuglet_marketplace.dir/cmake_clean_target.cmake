file(REMOVE_RECURSE
  "libdebuglet_marketplace.a"
)
