
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/marketplace/contract.cpp" "src/CMakeFiles/debuglet_marketplace.dir/marketplace/contract.cpp.o" "gcc" "src/CMakeFiles/debuglet_marketplace.dir/marketplace/contract.cpp.o.d"
  "/root/repo/src/marketplace/types.cpp" "src/CMakeFiles/debuglet_marketplace.dir/marketplace/types.cpp.o" "gcc" "src/CMakeFiles/debuglet_marketplace.dir/marketplace/types.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/debuglet_chain.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/debuglet_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/debuglet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
