file(REMOVE_RECURSE
  "CMakeFiles/debuglet_marketplace.dir/marketplace/contract.cpp.o"
  "CMakeFiles/debuglet_marketplace.dir/marketplace/contract.cpp.o.d"
  "CMakeFiles/debuglet_marketplace.dir/marketplace/types.cpp.o"
  "CMakeFiles/debuglet_marketplace.dir/marketplace/types.cpp.o.d"
  "libdebuglet_marketplace.a"
  "libdebuglet_marketplace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/debuglet_marketplace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
