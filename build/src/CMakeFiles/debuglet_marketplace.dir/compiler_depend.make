# Empty compiler generated dependencies file for debuglet_marketplace.
# This may be replaced when dependencies are built.
