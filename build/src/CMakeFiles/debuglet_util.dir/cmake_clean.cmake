file(REMOVE_RECURSE
  "CMakeFiles/debuglet_util.dir/util/bytes.cpp.o"
  "CMakeFiles/debuglet_util.dir/util/bytes.cpp.o.d"
  "CMakeFiles/debuglet_util.dir/util/log.cpp.o"
  "CMakeFiles/debuglet_util.dir/util/log.cpp.o.d"
  "CMakeFiles/debuglet_util.dir/util/rng.cpp.o"
  "CMakeFiles/debuglet_util.dir/util/rng.cpp.o.d"
  "CMakeFiles/debuglet_util.dir/util/stats.cpp.o"
  "CMakeFiles/debuglet_util.dir/util/stats.cpp.o.d"
  "CMakeFiles/debuglet_util.dir/util/time.cpp.o"
  "CMakeFiles/debuglet_util.dir/util/time.cpp.o.d"
  "libdebuglet_util.a"
  "libdebuglet_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/debuglet_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
