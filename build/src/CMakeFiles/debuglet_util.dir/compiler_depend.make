# Empty compiler generated dependencies file for debuglet_util.
# This may be replaced when dependencies are built.
