file(REMOVE_RECURSE
  "libdebuglet_util.a"
)
