# Empty dependencies file for debuglet_simnet.
# This may be replaced when dependencies are built.
