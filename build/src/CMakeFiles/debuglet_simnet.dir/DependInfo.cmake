
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simnet/event_queue.cpp" "src/CMakeFiles/debuglet_simnet.dir/simnet/event_queue.cpp.o" "gcc" "src/CMakeFiles/debuglet_simnet.dir/simnet/event_queue.cpp.o.d"
  "/root/repo/src/simnet/hosts.cpp" "src/CMakeFiles/debuglet_simnet.dir/simnet/hosts.cpp.o" "gcc" "src/CMakeFiles/debuglet_simnet.dir/simnet/hosts.cpp.o.d"
  "/root/repo/src/simnet/link_model.cpp" "src/CMakeFiles/debuglet_simnet.dir/simnet/link_model.cpp.o" "gcc" "src/CMakeFiles/debuglet_simnet.dir/simnet/link_model.cpp.o.d"
  "/root/repo/src/simnet/network.cpp" "src/CMakeFiles/debuglet_simnet.dir/simnet/network.cpp.o" "gcc" "src/CMakeFiles/debuglet_simnet.dir/simnet/network.cpp.o.d"
  "/root/repo/src/simnet/scenarios.cpp" "src/CMakeFiles/debuglet_simnet.dir/simnet/scenarios.cpp.o" "gcc" "src/CMakeFiles/debuglet_simnet.dir/simnet/scenarios.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/debuglet_util.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/debuglet_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/debuglet_topology.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
