file(REMOVE_RECURSE
  "libdebuglet_simnet.a"
)
