file(REMOVE_RECURSE
  "CMakeFiles/debuglet_simnet.dir/simnet/event_queue.cpp.o"
  "CMakeFiles/debuglet_simnet.dir/simnet/event_queue.cpp.o.d"
  "CMakeFiles/debuglet_simnet.dir/simnet/hosts.cpp.o"
  "CMakeFiles/debuglet_simnet.dir/simnet/hosts.cpp.o.d"
  "CMakeFiles/debuglet_simnet.dir/simnet/link_model.cpp.o"
  "CMakeFiles/debuglet_simnet.dir/simnet/link_model.cpp.o.d"
  "CMakeFiles/debuglet_simnet.dir/simnet/network.cpp.o"
  "CMakeFiles/debuglet_simnet.dir/simnet/network.cpp.o.d"
  "CMakeFiles/debuglet_simnet.dir/simnet/scenarios.cpp.o"
  "CMakeFiles/debuglet_simnet.dir/simnet/scenarios.cpp.o.d"
  "libdebuglet_simnet.a"
  "libdebuglet_simnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/debuglet_simnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
