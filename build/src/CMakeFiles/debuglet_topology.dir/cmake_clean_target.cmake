file(REMOVE_RECURSE
  "libdebuglet_topology.a"
)
