# Empty compiler generated dependencies file for debuglet_topology.
# This may be replaced when dependencies are built.
