file(REMOVE_RECURSE
  "CMakeFiles/debuglet_topology.dir/topology/topology.cpp.o"
  "CMakeFiles/debuglet_topology.dir/topology/topology.cpp.o.d"
  "libdebuglet_topology.a"
  "libdebuglet_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/debuglet_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
