// debuglet — command-line front end for the Debuglet system.
//
// Subcommands (all run on simulated worlds; everything is deterministic
// under --seed):
//
//   debuglet measure   --ases N --client AS#IF --server AS#IF
//                      [--proto udp|tcp|icmp|raw] [--probes N]
//                      [--interval MS] [--seal] [--seed S]
//       Purchase and run one marketplace measurement; print the certified,
//       verified results.
//
//   debuglet localize  --ases N --fault-link K [--fault-ms D]
//                      [--strategy linear|binary|parallel|inband] [--seed S]
//       Inject a fault and localize it with Debuglet-pair measurements
//       (inband: one INT probe round, falling back to binary search).
//
//   debuglet traceroute --ases N [--mute AS]... [--rate-limit AS]...
//                      [--seed S]
//       Run the traceroute baseline over the same kind of chain.
//
//   debuglet motivation [--city NAME] [--hours H] [--seed S]
//       Re-run the paper's §II protocol-differential experiment.
//
//   debuglet stats     [--ases N] [--probes N] [--interval MS] [--seed S]
//                      [--json [FILE]] [--csv [FILE]]
//       Run one measurement with metrics enabled and print every metric
//       the subsystems emitted; optionally export JSON lines / CSV.
//
//   debuglet stats --remote AS#IF [--partner AS#IF] [--ases N] [--seed S]
//       Purchase a stats-Debuglet pair, scrape the remote executor's
//       registry over the simulated network, and print the rows merged
//       under their remote_host label.
//
//   debuglet trace     [--ases N] [--fault-link K] [--seed S] [--out FILE]
//                      [--int]
//       Run a binary-search localization with span tracing enabled and
//       write a Chrome trace-event file of the run. With --int the
//       localization runs the in-band strategy instead and the per-hop
//       INT path records of one probe are printed.
//
//   debuglet chaos     [--ases N] [--fault-link K] [--fault-ms D]
//                      [--kill AS#IF]... [--crash AS#IF]...
//                      [--byzantine AS#IF] [--attempts N] [--seed S]
//                      [--link-corrupt PM] [--link-truncate PM]
//                      [--link-dup PM] [--link-reorder PM]
//                      [--link-flap-ms D] [--int] [--check-determinism]
//                      [--shards N] [--trace-out FILE]
//                      [--middlebox ASN:MODE[:SEVERITY]]...
//                      [--detect-discrimination]
//       Inject a link fault AND executor failures (killed agents, crashed
//       hosts, optionally a byzantine signer), then run a resilient
//       end-to-end measurement plus a degraded-mode localization. The
//       --link-* flags add wire-level chaos (per-mille rates) on every
//       directed chain link — bit corruption, truncation, duplication,
//       reordering, and a timed flap of the faulty link — and print a
//       fault matrix of injections vs. defenses. Exits 0 when the
//       measurement survives and the report brackets the injected link.
//       --int localizes with the in-band INT strategy (every-router
//       records; degrades to binary search when chaos destroys the
//       probe's record stack) and adds the telemetry.* counters to the
//       deterministic trace.
//       --middlebox installs an adversarial DPI middlebox inside an AS.
//       Modes: drop (per-mille discard of non-measurement classes),
//       delay (extra ms), mangle (per-mille payload bit flips), throttle
//       (packets/second budget), hide (fault hiding: ALL traffic suffers
//       SEVERITY ms + drops except recognized executor addresses and
//       probe signatures, which ride clean — the §VI-E adversary),
//       adaptive (hide plus an online learner: recurring measurement
//       signatures get promoted into the DPI table, so repeated identical
//       twins stop discriminating; SEVERITY sets the learning horizon in
//       sightings, default 8 — the arms-race adversary the randomized
//       twin generator + SPRT detector is built to beat).
//       --detect-discrimination runs the twin-probe counter-measurement
//       after localization: packet twins identical but for the port the
//       classifier keys on; per-class one-way delay, loss, and INT
//       residence name the discriminating AS. With a middlebox installed
//       in hide/delay/adaptive mode the verdict requires the detector to
//       name one of the middlebox ASes; with an honest network it
//       requires NO discrimination report. A named AS is additionally
//       reported to the on-chain reputation contract (the strike total
//       lands in the trace). --fault-ms 0 skips the link-fault
//       injection (the verdict then expects a clean localization).
//       --check-determinism replays the scenario with the same seed and
//       verifies the retry/failover/fault-matrix trace is bit-identical.
//       --shards N runs the simulation on N event-queue shards (worker
//       threads); the trace must be byte-identical at every N. --trace-out
//       writes the deterministic trace to FILE so CI can diff shard counts.
//
//   debuglet chaos     --mass-purchase [N] [--pairs P] [--workers W]
//                      [--seed S] [--check-determinism] [--trace-out FILE]
//       Chain-side chaos: N initiators (default 10000) race to purchase
//       P executor pairs' single overlapping slot in ONE parallel batch
//       (docs/CHAIN.md). Exactly one purchase per pair may win; the trace
//       records every receipt, the winner map, escrow, token conservation
//       and the sealed block root — and contains no worker count or
//       timing, so CI byte-diffs it across --workers 1/2/4.
//       --check-determinism replays with the same seed and verifies the
//       trace is bit-identical.
//
//   debuglet asm FILE / debuglet disasm FILE
//       Assemble DVM assembly to a module file (FILE.dvm), or print the
//       assembly of a serialized module.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "chain/chain.hpp"
#include "core/debuglet.hpp"
#include "marketplace/contract.hpp"
#include "obs/export.hpp"
#include "telemetry/int_header.hpp"
#include "telemetry/path_evidence.hpp"
#include "vm/assembler.hpp"
#include "vm/validator.hpp"

namespace {

using namespace debuglet;

// Minimal flag parser: --name value and --name (boolean) forms.
class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 2; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) == 0) {
        const std::string name = arg.substr(2);
        if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
          values_[name].push_back(argv[++i]);
        } else {
          values_[name].push_back("");
        }
      } else {
        positional_.push_back(arg);
      }
    }
  }

  std::string get(const std::string& name, const std::string& fallback) const {
    auto it = values_.find(name);
    return it == values_.end() || it->second.empty() || it->second[0].empty()
               ? fallback
               : it->second[0];
  }
  std::int64_t get_int(const std::string& name, std::int64_t fallback) const {
    auto it = values_.find(name);
    if (it == values_.end() || it->second.empty() || it->second[0].empty())
      return fallback;
    return std::atoll(it->second[0].c_str());
  }
  bool has(const std::string& name) const { return values_.contains(name); }
  std::vector<std::string> get_all(const std::string& name) const {
    auto it = values_.find(name);
    return it == values_.end() ? std::vector<std::string>{} : it->second;
  }
  std::vector<std::int64_t> get_ints(const std::string& name) const {
    std::vector<std::int64_t> out;
    auto it = values_.find(name);
    if (it == values_.end()) return out;
    for (const std::string& v : it->second)
      if (!v.empty()) out.push_back(std::atoll(v.c_str()));
    return out;
  }
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::vector<std::string>> values_;
  std::vector<std::string> positional_;
};

Result<topology::InterfaceKey> parse_key(const std::string& text) {
  // "AS3#2" or "3#2".
  std::string s = text;
  if (s.rfind("AS", 0) == 0) s = s.substr(2);
  const std::size_t hash = s.find('#');
  if (hash == std::string::npos)
    return fail("expected AS#IF (e.g. 3#2), got '" + text + "'");
  return topology::InterfaceKey{
      static_cast<topology::AsNumber>(std::atoll(s.substr(0, hash).c_str())),
      static_cast<topology::InterfaceId>(
          std::atoll(s.substr(hash + 1).c_str()))};
}

Result<net::Protocol> parse_protocol(const std::string& name) {
  if (name == "udp") return net::Protocol::kUdp;
  if (name == "tcp") return net::Protocol::kTcp;
  if (name == "icmp") return net::Protocol::kIcmp;
  if (name == "raw") return net::Protocol::kRawIp;
  return fail("unknown protocol '" + name + "'");
}

int cmd_measure(const Args& args) {
  const auto ases = static_cast<std::size_t>(args.get_int("ases", 4));
  auto client = parse_key(args.get("client", "1#2"));
  auto server = parse_key(
      args.get("server", "AS" + std::to_string(ases) + "#1"));
  auto protocol = parse_protocol(args.get("proto", "udp"));
  if (!client || !server || !protocol) {
    std::printf("error: %s%s%s\n", client.error_message().c_str(),
                server.error_message().c_str(),
                protocol.error_message().c_str());
    return 1;
  }
  const std::int64_t probes = args.get_int("probes", 10);
  const std::int64_t interval = args.get_int("interval", 200);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));

  core::DebugletSystem system(simnet::build_chain_scenario(ases, seed, 5.0));
  core::Initiator initiator(system, seed + 1, 500'000'000'000ULL);
  auto handle = initiator.purchase_rtt_measurement(
      *client, *server, *protocol, probes, interval, 0, args.has("seal"));
  if (!handle) {
    std::printf("purchase failed: %s\n", handle.error_message().c_str());
    return 1;
  }
  std::printf("purchased window [%s, %s] for %.4f SUI\n",
              format_time(handle->window_start).c_str(),
              format_time(handle->window_end).c_str(),
              chain::mist_to_sui(handle->price_paid));
  SimTime deadline = handle->window_end + duration::seconds(2);
  Result<core::MeasurementOutcome> outcome = fail("pending");
  for (int i = 0; i < 6 && !outcome; ++i) {
    system.queue().run_until(deadline);
    outcome = initiator.collect(*handle);
    deadline += duration::seconds(10);
  }
  if (!outcome) {
    std::printf("collect failed: %s\n", outcome.error_message().c_str());
    return 1;
  }
  Bytes output = outcome->client.record.output;
  if (args.has("seal")) {
    auto opened = initiator.open_result(outcome->client);
    if (!opened) {
      std::printf("unseal failed: %s\n", opened.error_message().c_str());
      return 1;
    }
    std::printf("results were sealed on-chain (%zu bytes ciphertext)\n",
                output.size());
    output = *opened;
  }
  auto samples = apps::decode_samples(BytesView(output.data(), output.size()));
  if (!samples) {
    std::printf("decode failed: %s\n", samples.error_message().c_str());
    return 1;
  }
  RunningStats stats;
  for (const auto& s : *samples)
    stats.add(static_cast<double>(s.delay_ns) / 1e6);
  std::printf("%s %s -> %s: %zu/%lld answered, RTT mean %.2f ms, std %.2f "
              "ms\n",
              net::protocol_name(*protocol).c_str(),
              client->to_string().c_str(), server->to_string().c_str(),
              samples->size(), static_cast<long long>(probes), stats.mean(),
              stats.stddev());
  std::printf("certified by AS%u (verified), chain integrity %s\n",
              client->asn,
              system.chain().verify_integrity() ? "OK" : "BROKEN");
  return 0;
}

int cmd_localize(const Args& args) {
  const auto ases = static_cast<std::size_t>(args.get_int("ases", 10));
  const auto fault_link =
      static_cast<std::size_t>(args.get_int("fault-link", ases - 2));
  const double fault_ms =
      static_cast<double>(args.get_int("fault-ms", 60));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  const std::string strategy_name = args.get("strategy", "binary");
  core::Strategy strategy = core::Strategy::kBinarySearch;
  if (strategy_name == "linear")
    strategy = core::Strategy::kLinearSequential;
  else if (strategy_name == "parallel")
    strategy = core::Strategy::kParallelSweep;
  else if (strategy_name == "inband")
    strategy = core::Strategy::kInband;
  else if (strategy_name != "binary") {
    std::printf("unknown strategy '%s'\n", strategy_name.c_str());
    return 1;
  }
  if (fault_link + 1 >= ases) {
    std::printf("fault-link must be < %zu\n", ases - 1);
    return 1;
  }

  core::DebugletSystem system(simnet::build_chain_scenario(ases, seed, 5.0));
  simnet::FaultSpec fault;
  fault.extra_delay_ms = fault_ms;
  fault.start = 0;
  fault.end = duration::hours(100);
  (void)system.network().inject_fault(simnet::chain_egress(fault_link),
                                simnet::chain_ingress(fault_link + 1), fault);
  (void)system.network().inject_fault(simnet::chain_ingress(fault_link + 1),
                                simnet::chain_egress(fault_link), fault);

  core::Initiator initiator(system, seed + 1, 2'000'000'000'000ULL);
  auto path = system.network().topology().shortest_path(
      1, static_cast<topology::AsNumber>(ases));
  core::FaultCriteria criteria;
  criteria.per_link_rtt_ms = 10.5;
  criteria.slack_ms = 15.0;
  core::FaultLocalizer localizer(system, initiator, *path, criteria,
                                 net::Protocol::kUdp, 8, 100);
  auto report = localizer.run(strategy);
  if (!report) {
    std::printf("localization failed: %s\n", report.error_message().c_str());
    return 1;
  }
  for (const core::LocalizationStep& step : report->steps) {
    std::printf("  AS%u..AS%u: %7.2f ms, loss %4.1f%%  %s\n",
                path->hops[step.from_hop].asn, path->hops[step.to_hop].asn,
                step.summary.mean_ms, 100.0 * step.summary.loss_rate(),
                step.faulty ? "FAULTY" : "");
  }
  for (const std::string& note : report->notes)
    std::printf("  note: %s\n", note.c_str());
  if (report->located) {
    std::printf("fault on link AS%u - AS%u (injected after hop %zu)\n",
                path->hops[report->fault_link].asn,
                path->hops[report->fault_link + 1].asn, fault_link);
  } else {
    std::printf("no fault located\n");
  }
  std::printf("%zu measurements, %.4f SUI, time-to-locate %s\n",
              report->measurements, chain::mist_to_sui(report->tokens_spent),
              format_duration(report->time_to_locate()).c_str());
  return report->located && report->fault_link == fault_link ? 0 : 1;
}

int cmd_traceroute(const Args& args) {
  const auto ases = static_cast<std::size_t>(args.get_int("ases", 6));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  simnet::Scenario s = simnet::build_chain_scenario(ases, seed, 5.0);
  for (std::int64_t muted : args.get_ints("mute")) {
    simnet::IcmpReplyPolicy policy;
    policy.time_exceeded_enabled = false;
    s.network->configure_icmp_policy(
        static_cast<topology::AsNumber>(muted), policy);
  }
  for (std::int64_t limited : args.get_ints("rate-limit")) {
    simnet::IcmpReplyPolicy policy;
    policy.rate_limit_per_s = 1;
    s.network->configure_icmp_policy(
        static_cast<topology::AsNumber>(limited), policy);
  }

  const auto dst = s.network->allocate_host_address(
      static_cast<topology::AsNumber>(ases));
  simnet::EchoServerHost destination(*s.network, dst);
  if (!s.network->attach_host(dst, &destination)) return 1;
  const auto src = s.network->allocate_host_address(1);
  simnet::TracerouteConfig cfg;
  cfg.destination = dst;
  cfg.max_ttl = static_cast<std::uint8_t>(ases);
  simnet::TracerouteProber prober(*s.network, src, cfg, seed + 2);
  if (!s.network->attach_host(src, &prober)) return 1;
  prober.start();
  s.queue->run();
  std::printf("traceroute to %s, %u hops max\n", dst.to_string().c_str(),
              cfg.max_ttl);
  for (const simnet::TracerouteHop& hop : prober.report().hops) {
    if (hop.probes_sent == 0) continue;
    if (hop.responded) {
      std::printf("%3u  %-14s %7.3f ms (%zu/%u)\n", hop.ttl,
                  hop.responder.to_string().c_str(), hop.rtt_ms.mean(),
                  hop.rtt_ms.count(), hop.probes_sent);
    } else {
      std::printf("%3u  *\n", hop.ttl);
    }
  }
  return 0;
}

int cmd_motivation(const Args& args) {
  const std::string city = args.get("city", "NewYork");
  const double hours = static_cast<double>(args.get_int("hours", 4));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 2024));
  bool known = false;
  for (const std::string& name : simnet::city_names())
    known = known || name == city;
  if (!known) {
    std::printf("unknown city '%s'; options:", city.c_str());
    for (const std::string& name : simnet::city_names())
      std::printf(" %s", name.c_str());
    std::printf("\n");
    return 1;
  }
  simnet::Scenario s = simnet::build_city_scenario(seed);
  const auto server_addr =
      s.network->allocate_host_address(simnet::london_as());
  simnet::EchoServerHost server(*s.network, server_addr);
  if (!s.network->attach_host(server_addr, &server)) return 1;
  const auto client_addr =
      s.network->allocate_host_address(simnet::city_as(city));
  simnet::ProbeClientConfig cfg;
  cfg.server = server_addr;
  cfg.probe_count = static_cast<std::uint64_t>(hours * 3600.0);
  cfg.interval = duration::seconds(1);
  simnet::ProbeClientHost client(*s.network, client_addr, cfg, seed + 1);
  if (!s.network->attach_host(client_addr, &client)) return 1;
  client.start();
  s.queue->run();
  std::printf("%s <-> London, %.0f simulated hours:\n", city.c_str(), hours);
  std::printf("%-6s %9s %8s %9s\n", "proto", "mean(ms)", "std(ms)",
              "loss(pm)");
  for (net::Protocol p : net::kAllProtocols) {
    const auto& rtt = client.report().rtt_ms.at(p);
    std::printf("%-6s %9.2f %8.2f %9.2f\n", net::protocol_name(p).c_str(),
                rtt.mean(), rtt.stddev(), client.report().loss_per_mille(p));
  }
  return 0;
}

void print_metric_rows(const std::vector<obs::MetricRow>& rows) {
  for (const obs::MetricRow& row : rows) {
    const std::string name = row.name + obs::labels_to_string(row.labels);
    switch (row.kind) {
      case obs::MetricRow::Kind::kCounter:
        std::printf("  %-52s counter %14.0f\n", name.c_str(), row.value);
        break;
      case obs::MetricRow::Kind::kGauge:
        std::printf("  %-52s gauge   %14.2f  (max %.2f)\n", name.c_str(),
                    row.value, row.max);
        break;
      case obs::MetricRow::Kind::kHistogram:
        std::printf("  %-52s hist    count %-8llu mean %-10.3f p50 %-10.3f "
                    "p99 %-10.3f max %-10.3f\n",
                    name.c_str(), static_cast<unsigned long long>(row.count),
                    row.count ? row.sum / static_cast<double>(row.count) : 0.0,
                    row.p50, row.p99, row.max);
        break;
    }
  }
}

int cmd_stats_remote(const Args& args) {
  obs::set_enabled(true);
  const auto ases = static_cast<std::size_t>(args.get_int("ases", 4));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  auto remote = parse_key(
      args.get("remote", "AS" + std::to_string(ases) + "#1"));
  auto partner = parse_key(args.get("partner", "1#2"));
  if (!remote || !partner) {
    std::printf("error: %s%s\n", remote.error_message().c_str(),
                partner.error_message().c_str());
    return 1;
  }

  core::DebugletSystem system(simnet::build_chain_scenario(ases, seed, 5.0));
  core::Initiator initiator(system, seed + 1, 500'000'000'000ULL);
  const auto scraper_addr = system.network().allocate_host_address(1);

  core::StatsPairRequest request;
  request.first_key = *remote;
  request.second_key = *partner;
  request.scraper_address = scraper_addr;
  auto deployment = core::purchase_stats_pair(initiator, system, request);
  if (!deployment) {
    std::printf("purchase failed: %s\n", deployment.error_message().c_str());
    return 1;
  }
  std::printf("stats pair deployed for window [%s, %s]; scraping %s:%u "
              "from %s\n",
              format_time(deployment->handle.window_start).c_str(),
              format_time(deployment->handle.window_end).c_str(),
              deployment->first_address.to_string().c_str(),
              deployment->first_port, scraper_addr.to_string().c_str());

  // Let the serving Debuglet boot (~10 ms sandbox setup after the window
  // opens), then scrape within its idle timeout.
  system.queue().run_until(deployment->handle.window_start +
                           duration::seconds(1));
  core::ScrapeConfig config;
  config.target = deployment->first_address;
  config.target_port = deployment->first_port;
  auto report = core::scrape_once(system, scraper_addr, config,
                                  system.queue().now() + duration::seconds(4));
  if (!report) {
    std::printf("scrape failed: %s\n", report.error_message().c_str());
    return 1;
  }

  obs::MetricsRegistry merged;
  if (auto s = obs::wire::merge_rows(merged, report->rows,
                                     deployment->first_address.to_string());
      !s) {
    std::printf("merge failed: %s\n", s.error_message().c_str());
    return 1;
  }
  std::printf("scraped %zu rows in %zu chunks (%zu requests, %zu retries)\n\n",
              report->rows.size(), report->chunks, report->requests_sent,
              report->retries);
  print_metric_rows(merged.snapshot());
  return 0;
}

int cmd_stats(const Args& args) {
  if (args.has("remote")) return cmd_stats_remote(args);
  // Metrics must be on BEFORE the world exists: instrumented objects cache
  // their handles (and the enabled flag) at construction.
  obs::set_enabled(true);
  const auto ases = static_cast<std::size_t>(args.get_int("ases", 4));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  const std::int64_t probes = args.get_int("probes", 10);
  const std::int64_t interval = args.get_int("interval", 200);

  core::DebugletSystem system(simnet::build_chain_scenario(ases, seed, 5.0));
  core::Initiator initiator(system, seed + 1, 500'000'000'000ULL);
  const topology::InterfaceKey client{1, 2};
  const topology::InterfaceKey server{static_cast<topology::AsNumber>(ases),
                                      1};
  auto handle = initiator.purchase_rtt_measurement(
      client, server, net::Protocol::kUdp, probes, interval, 0, false);
  if (!handle) {
    std::printf("purchase failed: %s\n", handle.error_message().c_str());
    return 1;
  }
  SimTime deadline = handle->window_end + duration::seconds(2);
  Result<core::MeasurementOutcome> outcome = fail("pending");
  for (int i = 0; i < 6 && !outcome; ++i) {
    system.queue().run_until(deadline);
    outcome = initiator.collect(*handle);
    deadline += duration::seconds(10);
  }
  if (!outcome) {
    std::printf("collect failed: %s\n", outcome.error_message().c_str());
    return 1;
  }

  const std::vector<obs::MetricRow> rows = obs::registry().snapshot();
  std::printf("metrics after one %zu-AS measurement (seed %llu):\n\n", ases,
              static_cast<unsigned long long>(seed));
  print_metric_rows(rows);
  if (args.has("json")) {
    const std::string path = args.get("json", "debuglet_stats.jsonl");
    std::ofstream out(path);
    obs::write_metrics_jsonl(rows, out);
    std::printf("\nwrote %zu metrics to %s\n", rows.size(), path.c_str());
  }
  if (args.has("csv")) {
    const std::string path = args.get("csv", "debuglet_stats.csv");
    std::ofstream out(path);
    obs::write_metrics_csv(rows, out);
    std::printf("\nwrote %zu metrics to %s\n", rows.size(), path.c_str());
  }
  return 0;
}

// Sends one INT probe end to end over `path` and prints the per-hop
// records (the `trace --int` / example_int_path_trace view of a path).
void print_int_path_records(core::DebugletSystem& system,
                            const topology::AsPath& path) {
  simnet::SimulatedNetwork& network = system.network();
  struct Collector : simnet::Host {
    std::vector<simnet::Delivery> deliveries;
    void on_packet(const simnet::Delivery& d) override {
      deliveries.push_back(d);
    }
  } collector;
  const auto dst = network.allocate_host_address(path.hops.back().asn);
  if (!network.attach_host(dst, &collector)) return;
  const auto src = network.topology().address_of(
      {path.hops.front().asn, path.hops.front().egress});
  const bool was_enabled = network.int_enabled();
  network.set_int_enabled(true);

  net::ProbeSpec spec;
  spec.protocol = net::Protocol::kUdp;
  spec.source = src;
  spec.destination = dst;
  spec.source_port = 48000;
  spec.destination_port = 48001;
  spec.payload = telemetry::IntHeader::reserve(
                     static_cast<std::uint8_t>(path.length() - 1))
                     .serialize();
  auto wire = net::build_probe(spec);
  if (wire) (void)network.send(src, std::move(*wire));
  system.queue().run_until(system.queue().now() + duration::seconds(2));
  network.set_int_enabled(was_enabled);
  network.detach_host(dst);

  if (collector.deliveries.empty()) {
    std::printf("in-band trace probe was lost\n");
    return;
  }
  const simnet::Delivery& d = collector.deliveries.front();
  auto header = telemetry::IntHeader::parse(
      BytesView(d.packet.payload.data(), d.packet.payload.size()));
  if (!header) {
    std::printf("in-band trace unreadable: %s\n",
                header.error_message().c_str());
    return;
  }
  auto evidence = telemetry::PathEvidence::from_header(*header, path,
                                                       d.sent_at);
  if (!evidence) {
    std::printf("in-band trace rejected: %s\n",
                evidence.error_message().c_str());
    return;
  }
  std::printf("in-band path records (1 probe, %zu hops):\n",
              evidence->links());
  std::printf("  %-4s %-6s %-9s | %10s %10s %7s %7s %7s\n", "hop", "AS",
              "iface", "link(ms)", "resid(ms)", "queue", "drops", "faults");
  for (const telemetry::LinkObservation& o : evidence->observations()) {
    std::printf("  %-4zu %-6u %3u->%-5u | %10.3f %10.3f %7u %7u %7u\n",
                o.link, o.record.asn, o.record.ingress_interface,
                o.record.egress_interface, o.one_way_ms, o.residence_ms,
                o.record.queue_depth, o.record.drops_seen,
                o.record.wire_faults);
  }
}

int cmd_trace(const Args& args) {
  obs::set_enabled(true);
  obs::tracer().set_enabled(true);
  const auto ases = static_cast<std::size_t>(args.get_int("ases", 6));
  const auto fault_link =
      static_cast<std::size_t>(args.get_int("fault-link", ases - 2));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  const std::string out_path = args.get("out", "debuglet_trace.json");
  if (fault_link + 1 >= ases) {
    std::printf("fault-link must be < %zu\n", ases - 1);
    return 1;
  }

  core::DebugletSystem system(simnet::build_chain_scenario(ases, seed, 5.0));
  obs::tracer().set_sim_clock([&system] { return system.queue().now(); });
  simnet::FaultSpec fault;
  fault.extra_delay_ms = 60.0;
  fault.start = 0;
  fault.end = duration::hours(100);
  (void)system.network().inject_fault(simnet::chain_egress(fault_link),
                                simnet::chain_ingress(fault_link + 1), fault);
  (void)system.network().inject_fault(simnet::chain_ingress(fault_link + 1),
                                simnet::chain_egress(fault_link), fault);

  core::Initiator initiator(system, seed + 1, 2'000'000'000'000ULL);
  auto path = system.network().topology().shortest_path(
      1, static_cast<topology::AsNumber>(ases));
  core::FaultCriteria criteria;
  criteria.per_link_rtt_ms = 10.5;
  criteria.slack_ms = 15.0;
  core::FaultLocalizer localizer(system, initiator, *path, criteria,
                                 net::Protocol::kUdp, 8, 100);
  auto report = localizer.run(args.has("int") ? core::Strategy::kInband
                                              : core::Strategy::kBinarySearch);
  if (args.has("int")) print_int_path_records(system, *path);
  obs::tracer().set_sim_clock(nullptr);
  if (!report) {
    std::printf("localization failed: %s\n", report.error_message().c_str());
    return 1;
  }

  const std::vector<obs::Span> spans = obs::tracer().spans();
  std::ofstream out(out_path);
  if (!out) {
    std::printf("cannot write %s\n", out_path.c_str());
    return 1;
  }
  obs::write_chrome_trace(spans, out);
  std::printf("localized after %zu measurements; %zu spans (%zu dropped) "
              "-> %s\n",
              report->measurements, spans.size(), obs::tracer().dropped(),
              out_path.c_str());
  std::printf("open chrome://tracing or https://ui.perfetto.dev and load "
              "the file.\n");
  return 0;
}

struct ChaosParams {
  std::size_t ases = 8;
  std::size_t fault_link = 6;
  double fault_ms = 60.0;
  std::vector<topology::InterfaceKey> kills;
  std::vector<topology::InterfaceKey> crashes;
  std::vector<topology::InterfaceKey> byzantine;
  std::uint32_t attempts = 4;
  std::uint64_t seed = 1;
  // Wire-level chaos: per-mille fault rates installed on EVERY directed
  // chain link (zero = off). The flap, when set, takes down the injected
  // fault link's forward direction for its first N milliseconds.
  std::int64_t link_corrupt_pm = 0;
  std::int64_t link_truncate_pm = 0;
  std::int64_t link_dup_pm = 0;
  std::int64_t link_reorder_pm = 0;
  std::int64_t link_flap_ms = 0;
  /// Localize with the in-band INT strategy (falls back to binary search
  /// when chaos destroys the probe's record stack).
  bool int_mode = false;
  /// Event-queue shards: 1 = classic single-threaded pop-min loop; N>1
  /// runs N lanes under the conservative window barrier. The trace is
  /// shard-count-invariant by contract.
  std::size_t shards = 1;
  /// Adversarial middleboxes (--middlebox ASN:MODE[:SEVERITY]) and the
  /// twin-probe counter-measurement (--detect-discrimination).
  struct MiddleboxSpec {
    topology::AsNumber asn = 0;
    std::string mode;        // drop | delay | mangle | throttle | hide
    double severity = -1.0;  // mode-specific; < 0 = mode default
  };
  std::vector<MiddleboxSpec> middleboxes;
  bool detect_discrimination = false;

  bool link_faults() const {
    return link_corrupt_pm > 0 || link_truncate_pm > 0 || link_dup_pm > 0 ||
           link_reorder_pm > 0 || link_flap_ms > 0;
  }
};

struct ChaosOutcome {
  bool measurement_ok = false;
  bool bracketed = false;
  /// Twin-probe verdict (true when --detect-discrimination is off): the
  /// detector named a hide/delay middlebox AS, or — honest network —
  /// reported nothing.
  bool discrimination_ok = true;
  /// The deterministic retry/failover/localization trace (plus, under
  /// link chaos, the fault-matrix report): equal seeds must reproduce it
  /// bit for bit.
  std::string trace;
  /// This run's full metric snapshot (each run gets its own registry, so
  /// a determinism replay never double-counts).
  std::vector<obs::MetricRow> counters;
};

/// Sums one counter family (optionally one label value) out of a snapshot.
double counter_sum(const std::vector<obs::MetricRow>& rows,
                   const std::string& name, const std::string& label_key = "",
                   const std::string& label_value = "") {
  double total = 0.0;
  for (const obs::MetricRow& row : rows) {
    if (row.name != name) continue;
    if (!label_key.empty()) {
      bool match = false;
      for (const auto& [k, v] : row.labels)
        match = match || (k == label_key && v == label_value);
      if (!match) continue;
    }
    total += row.value;
  }
  return total;
}

ChaosOutcome run_chaos(const ChaosParams& p, bool verbose) {
  // Each run (first pass and determinism replay) counts into its own
  // registry; the snapshot rides out in the outcome.
  obs::ScopedRegistry scoped;
  ChaosOutcome out;
  core::DebugletSystem system(
      simnet::build_chain_scenario(p.ases, p.seed, 5.0));
  system.queue().set_shards(p.shards);

  if (p.fault_ms > 0.0) {
    simnet::FaultSpec fault;
    fault.extra_delay_ms = p.fault_ms;
    fault.start = 0;
    fault.end = duration::hours(100);
    (void)system.network().inject_fault(
        simnet::chain_egress(p.fault_link),
        simnet::chain_ingress(p.fault_link + 1), fault);
    (void)system.network().inject_fault(
        simnet::chain_ingress(p.fault_link + 1),
        simnet::chain_egress(p.fault_link), fault);
  }

  if (p.link_faults()) {
    simnet::LinkFaultPlan plan;
    if (p.link_corrupt_pm > 0)
      plan.corrupt(static_cast<double>(p.link_corrupt_pm));
    if (p.link_truncate_pm > 0)
      plan.truncate(static_cast<double>(p.link_truncate_pm));
    if (p.link_dup_pm > 0)
      plan.duplicate(static_cast<double>(p.link_dup_pm), 2);
    if (p.link_reorder_pm > 0)
      plan.reorder(static_cast<double>(p.link_reorder_pm), 10.0);
    for (std::size_t i = 0; i + 1 < p.ases; ++i) {
      simnet::LinkFaultPlan directed = plan;
      if (p.link_flap_ms > 0 && i == p.fault_link)
        directed.flap(0, duration::milliseconds(p.link_flap_ms));
      (void)system.network().install_link_faults(
          simnet::chain_egress(i), simnet::chain_ingress(i + 1), directed);
      (void)system.network().install_link_faults(
          simnet::chain_ingress(i + 1), simnet::chain_egress(i), plan);
    }
  }

  for (const ChaosParams::MiddleboxSpec& spec : p.middleboxes) {
    simnet::MiddleboxPlan plan;
    simnet::ClassPolicy pol;
    if (spec.mode == "drop") {
      pol.drop_pm = spec.severity >= 0.0 ? spec.severity : 300.0;
      plan.policy_except_measurement(pol);
    } else if (spec.mode == "delay") {
      pol.extra_delay_ms = spec.severity >= 0.0 ? spec.severity : 25.0;
      plan.policy_except_measurement(pol);
    } else if (spec.mode == "mangle") {
      pol.mangle_pm = spec.severity >= 0.0 ? spec.severity : 120.0;
      plan.policy_except_measurement(pol);
    } else if (spec.mode == "throttle") {
      pol.throttle_pps = static_cast<std::uint32_t>(
          spec.severity >= 0.0 ? spec.severity : 40.0);
      plan.policy_except_measurement(pol);
    } else {  // hide/adaptive: everyone suffers except measurement gear
      // hide's SEVERITY is the delay in ms; adaptive keeps the default
      // delay and spends SEVERITY on the learning horizon instead.
      pol.extra_delay_ms =
          spec.mode == "hide" && spec.severity >= 0.0 ? spec.severity : 25.0;
      pol.drop_pm = 60.0;
      plan.policy_all(pol);
      plan.recognize_probe_signatures(true);
      const topology::Topology& topo = system.network().topology();
      for (std::size_t as = 1; as <= p.ases; ++as) {
        const auto asn = static_cast<topology::AsNumber>(as);
        plan.recognize(topo.address_of(topology::InterfaceKey{asn, 1}));
        plan.recognize(topo.address_of(topology::InterfaceKey{asn, 2}));
      }
      if (spec.mode == "adaptive") {
        // The arms-race adversary: hide, plus an online signature learner
        // promoting recurring measurement signatures into DPI verdicts.
        simnet::AdaptiveConfig adaptive;
        adaptive.enabled = true;
        if (spec.severity >= 1.0)
          adaptive.promote_after = static_cast<std::uint32_t>(spec.severity);
        plan.adaptive(adaptive);
      }
    }
    if (auto st = system.network().install_middlebox(spec.asn, plan); !st) {
      if (verbose)
        std::printf("--middlebox AS%u: %s\n", spec.asn,
                    st.error_message().c_str());
    }
  }

  for (const topology::InterfaceKey& key : p.kills) {
    if (auto agent = system.agent(key)) (*agent)->kill();
  }
  for (const topology::InterfaceKey& key : p.crashes) {
    simnet::HostFaultPlan plan;
    plan.crash(0, duration::hours(100));
    (void)system.network().install_host_faults(key, plan);
  }
  for (const topology::InterfaceKey& key : p.byzantine) {
    if (auto agent = system.agent(key))
      (*agent)->set_byzantine_mode(core::ByzantineMode::kBadSignature);
  }

  core::Initiator initiator(system, p.seed + 1, 2'000'000'000'000ULL);

  core::ResilientRttRequest request;
  request.client_key = topology::InterfaceKey{1, 2};
  request.server_key = topology::InterfaceKey{
      static_cast<topology::AsNumber>(p.ases), 1};
  request.probe_count = 8;
  request.interval_ms = 100;
  request.retry.max_attempts = p.attempts;
  auto rm = initiator.measure_rtt_resilient(request);
  if (rm) {
    out.measurement_ok = true;
    auto summary = core::summarize_rtt(rm->outcome.client, 8);
    if (verbose) {
      std::printf("end-to-end measurement survived: %u attempt(s), %u "
                  "failover(s), %u byzantine rejection(s)\n",
                  rm->attempts, rm->failovers, rm->byzantine_rejections);
      if (summary)
        std::printf("  RTT mean %.2f ms over %zu/%zu probes\n",
                    summary->mean_ms, summary->probes_answered,
                    summary->probes_sent);
      if (!rm->incidents.empty())
        std::printf("%s\n", rm->trace().c_str());
    }
    out.trace += rm->trace();
  } else {
    if (verbose)
      std::printf("end-to-end measurement failed: %s\n",
                  rm.error_message().c_str());
    out.trace += "measurement failed: " + rm.error_message();
  }
  out.trace += "\n";

  auto path = system.network().topology().shortest_path(
      1, static_cast<topology::AsNumber>(p.ases));
  core::FaultCriteria criteria;
  criteria.per_link_rtt_ms = 10.5;
  criteria.slack_ms = 15.0;
  // Under wire chaos, corruption-induced drops hit EVERY segment — loss
  // stops discriminating (one lost probe out of eight is already 12.5%).
  // Let delay carry the verdict and only flag catastrophic loss.
  if (p.link_faults()) criteria.max_loss = 0.5;
  core::FaultLocalizer localizer(system, initiator, *path, criteria,
                                 net::Protocol::kUdp, 8, 100);
  core::FaultLocalizer::Resilience resilience;
  resilience.use_retry = true;
  resilience.retry.max_attempts = p.attempts;
  localizer.set_resilience(resilience);
  std::optional<core::DiscriminationReport> twin_report;
  if (p.detect_discrimination) {
    localizer.set_discrimination_probe(
        [&]() -> Result<core::DiscriminationReport> {
          // INT on for the twin rounds (same transient idiom as the
          // in-band strategy): per-hop residence is what lets the
          // detector NAME the discriminating AS instead of only proving
          // discrimination exists.
          const bool was_enabled = system.network().int_enabled();
          system.network().set_int_enabled(true);
          core::DiscriminationDetector detector(
              system.network(), 1,
              static_cast<topology::AsNumber>(p.ases), p.seed + 77);
          auto twins = detector.run();
          system.network().set_int_enabled(was_enabled);
          if (twins) twin_report = *twins;
          return twins;
        });
  }
  auto report = localizer.run(p.int_mode ? core::Strategy::kInband
                                         : core::Strategy::kLinearSequential);
  if (!report) {
    if (verbose)
      std::printf("localization failed: %s\n",
                  report.error_message().c_str());
    out.trace += "localization failed: " + report.error_message();
    out.counters = obs::registry().snapshot();
    return out;
  }
  if (verbose) {
    for (const core::LocalizationStep& step : report->steps) {
      if (step.measured) {
        std::printf("  AS%u..AS%u: %7.2f ms, loss %4.1f%%  %s\n",
                    path->hops[step.from_hop].asn,
                    path->hops[step.to_hop].asn, step.summary.mean_ms,
                    100.0 * step.summary.loss_rate(),
                    step.faulty ? "FAULTY" : "");
        if (step.wire_integrity.total() > 0)
          std::printf("      wire faults while measuring: %llu corrupt, "
                      "%llu truncated, %llu duplicated, %llu reordered, "
                      "%llu flap-dropped\n",
                      static_cast<unsigned long long>(
                          step.wire_integrity.corrupted),
                      static_cast<unsigned long long>(
                          step.wire_integrity.truncated),
                      static_cast<unsigned long long>(
                          step.wire_integrity.duplicated),
                      static_cast<unsigned long long>(
                          step.wire_integrity.reordered),
                      static_cast<unsigned long long>(
                          step.wire_integrity.flap_dropped));
      } else {
        std::printf("  AS%u..AS%u: unmeasured (%s)\n",
                    path->hops[step.from_hop].asn,
                    path->hops[step.to_hop].asn, step.failure.c_str());
      }
    }
    for (const std::string& note : report->notes)
      std::printf("  note: %s\n", note.c_str());
  }
  // Per-segment delivery-integrity evidence is part of the deterministic
  // trace: equal seeds must injure the same segments identically.
  for (const core::LocalizationStep& step : report->steps) {
    if (!step.measured || step.wire_integrity.total() == 0) continue;
    out.trace += "segment " + std::to_string(step.from_hop) + ".." +
                 std::to_string(step.to_hop) + " wire-faults " +
                 std::to_string(step.wire_integrity.corrupted) + "c/" +
                 std::to_string(step.wire_integrity.truncated) + "t/" +
                 std::to_string(step.wire_integrity.duplicated) + "d/" +
                 std::to_string(step.wire_integrity.reordered) + "r/" +
                 std::to_string(step.wire_integrity.flap_dropped) + "f\n";
  }
  // With no injected fault (--fault-ms 0) the expectation inverts: an
  // honest localization must come back clean.
  out.bracketed = p.fault_ms > 0.0
                      ? report->located && report->fault_link <= p.fault_link &&
                            p.fault_link <= report->fault_link_hi
                      : !report->located;
  if (report->located) {
    out.trace += "fault in links [" + std::to_string(report->fault_link) +
                 ", " + std::to_string(report->fault_link_hi) + "] (" +
                 report->confidence() + ")";
    if (verbose)
      std::printf("fault in links [%zu, %zu] — %s, coverage %.0f%% "
                  "(injected at link %zu)\n",
                  report->fault_link, report->fault_link_hi,
                  report->confidence(), 100.0 * report->coverage(),
                  p.fault_link);
  } else {
    out.trace += "no fault located (" + std::string(report->confidence()) +
                 ")";
    if (verbose) std::printf("no fault located\n");
  }
  for (const std::string& note : report->notes) out.trace += "\n" + note;

  if (twin_report) {
    // The twin-probe report is deterministic sample statistics — part of
    // the replayed trace.
    out.trace += "\ntwin-probe report:\n" + twin_report->trace();
    if (verbose)
      std::printf("\ntwin-probe report:\n%s", twin_report->trace().c_str());
    if (twin_report->detected && twin_report->named_as() != 0) {
      // Accountability: file the verdict on chain. The strike record is
      // committed state, so the count below is deterministic and part of
      // the replayed trace.
      auto record = initiator.report_discrimination(
          twin_report->named_as(), twin_report->top_confidence(),
          twin_report->rounds_used,
          twin_report->suspects.empty() ? ""
                                        : twin_report->suspects.front().detail);
      if (record) {
        out.trace += "reputation: AS" +
                     std::to_string(twin_report->named_as()) + " strikes " +
                     std::to_string(record->strikes) + " (confidence " +
                     std::to_string(record->max_confidence_permille) +
                     "/1000)\n";
        if (verbose)
          std::printf("reputation: AS%u now carries %u on-chain strike(s)\n",
                      twin_report->named_as(), record->strikes);
      } else {
        out.trace += "reputation report failed: " + record.error_message() +
                     "\n";
      }
    }
  }
  for (const ChaosParams::MiddleboxSpec& spec : p.middleboxes) {
    // Ground truth of what the adversary actually did, to correlate with
    // what the detector inferred.
    const simnet::MiddleboxStats st =
        system.network().middlebox_stats(spec.asn);
    out.trace += "middlebox AS" + std::to_string(spec.asn) + " (" +
                 spec.mode + "): inspected " + std::to_string(st.inspected()) +
                 ", dropped " + std::to_string(st.dropped) +
                 ", deprioritized " + std::to_string(st.deprioritized) +
                 ", mangled " + std::to_string(st.mangled) + ", throttled " +
                 std::to_string(st.throttled) + ", exempted " +
                 std::to_string(st.exempted) + "\n";
    if (spec.mode == "adaptive") {
      // The learner's ground truth (how much it saw, learned and applied)
      // is part of the deterministic trace too.
      out.trace += "  adaptive: learned " +
                   std::to_string(st.signatures_learned) + ", promoted " +
                   std::to_string(st.signatures_promoted) + ", matched " +
                   std::to_string(st.adaptive_matched) + ", flows " +
                   std::to_string(st.flows_tracked) + " (evicted " +
                   std::to_string(st.flows_evicted) + ")\n";
    }
  }

  if (p.detect_discrimination) {
    // Hide/delay middleboxes leave the delay signature the detector keys
    // on; the verdict demands it names one of them. Drop/mangle/throttle
    // boxes may or may not cross the confidence bar (their report stays
    // informational), and an honest network must produce NO report.
    bool expect_named = false;
    for (const ChaosParams::MiddleboxSpec& spec : p.middleboxes)
      expect_named |= spec.mode == "hide" || spec.mode == "delay" ||
                      spec.mode == "adaptive";
    if (!twin_report) {
      out.discrimination_ok = false;
    } else if (expect_named) {
      bool named_middlebox = false;
      for (const ChaosParams::MiddleboxSpec& spec : p.middleboxes)
        named_middlebox |= twin_report->named_as() == spec.asn;
      out.discrimination_ok = twin_report->detected && named_middlebox;
    } else if (p.middleboxes.empty()) {
      out.discrimination_ok = !twin_report->detected;
    }
  }

  out.counters = obs::registry().snapshot();
  if (p.int_mode) {
    // The in-band round's outcome is part of the deterministic trace:
    // equal seeds must push, reject, and fall back identically.
    const auto n = [&](const char* name) {
      return std::to_string(
          static_cast<long long>(counter_sum(out.counters, name)));
    };
    out.trace += "\nint: pushes " + n("telemetry.int_pushes") +
                 ", truncations " + n("telemetry.int_truncations") +
                 ", parse-rejected " + n("telemetry.parse_rejected") +
                 ", evidence-rejected " + n("telemetry.evidence_rejected") +
                 ", inband-rounds " + n("core.localization.inband_rounds") +
                 ", fallbacks " + n("core.localization.inband_fallbacks");
  }
  if (p.link_faults()) {
    // Fault matrix: what the wire injected vs. what each defense caught.
    // Counter values are deterministic, so this is part of the trace too.
    const auto n = [&](const char* name, const char* k = "",
                       const char* v = "") {
      return std::to_string(
          static_cast<long long>(counter_sum(out.counters, name, k, v)));
    };
    out.trace += "\nfault matrix:";
    out.trace += "\n  corrupt: injected " +
                 n("simnet.wire_faults", "kind", "corrupt") +
                 ", checksum-rejected " + n("net.parse_rejected") +
                 ", scrape-digest-rejected " + n("core.scrape_chunks_corrupt") +
                 ", re-requested " + n("core.scrape_chunks_rereq") +
                 ", outliers dropped " + n("core.probe_outliers_dropped");
    out.trace += "\n  truncate: injected " +
                 n("simnet.wire_faults", "kind", "truncate");
    out.trace += "\n  duplicate: injected " +
                 n("simnet.wire_faults", "kind", "duplicate") +
                 ", probe dups dropped " + n("core.probe_duplicates_dropped") +
                 ", scrape dups absorbed " +
                 n("core.scrape_chunks_duplicate");
    out.trace += "\n  reorder: injected " +
                 n("simnet.wire_faults", "kind", "reorder");
    out.trace += "\n  flap: dropped " +
                 n("simnet.wire_faults", "kind", "flap_drop") + ", retries " +
                 n("core.retry.retries");
  }
  return out;
}

// --- Mass-purchase chaos: N initiators race for P pairs' slots --------------

struct MassPurchaseOutcome {
  std::string trace;  // worker-count-invariant determinism artifact
  bool one_winner_per_pair = false;
  bool conserved = false;
  bool intact = false;
};

/// Runs the whole scenario on a fresh chain: setup batch (register 2*P
/// executors and their single slot), then ONE batch of N purchase
/// transactions — all initiators racing for P overlapping windows —
/// executed at `workers` worker threads. The trace must depend only on
/// the seed (docs/CHAIN.md's determinism contract), never on `workers`.
MassPurchaseOutcome run_mass_purchase(std::size_t initiators,
                                      std::size_t pairs, unsigned workers,
                                      std::uint64_t seed) {
  using chain::Mist;
  MassPurchaseOutcome out;
  chain::Blockchain bc;
  (void)bc.register_contract(
      std::make_unique<marketplace::MarketplaceContract>());

  const Mist kPrice = 500'000'000;
  const chain::BatchOptions opts{workers};
  std::vector<crypto::KeyPair> operators;
  std::vector<topology::InterfaceKey> keys;
  Mist minted = 0;
  std::vector<chain::Address> accounts;
  for (std::size_t i = 0; i < 2 * pairs; ++i) {
    operators.push_back(
        crypto::KeyPair::from_seed(seed ^ (0xE5ULL << 32) ^ i));
    keys.push_back(topology::InterfaceKey{
        static_cast<topology::AsNumber>(100 + i), 1});
    accounts.push_back(chain::Address::of(operators.back().public_key()));
    bc.mint(accounts.back(), 1'000'000'000'000ULL);
    minted += 1'000'000'000'000ULL;
  }
  std::vector<chain::Transaction> setup;
  for (std::size_t i = 0; i < 2 * pairs; ++i) {
    marketplace::RegisterExecutorArgs reg{keys[i]};
    setup.push_back(bc.make_transaction_with_nonce(
        operators[i], 0, marketplace::kContractName, "RegisterExecutor",
        reg.serialize(), 0, 1'000'000'000,
        marketplace::access_register_executor(keys[i])));
  }
  for (std::size_t i = 0; i < 2 * pairs; ++i) {
    marketplace::TimeSlot slot;
    slot.start = 1000;
    slot.end = 2000;
    slot.price = kPrice;
    marketplace::RegisterTimeSlotArgs slots{keys[i], {slot}};
    setup.push_back(bc.make_transaction_with_nonce(
        operators[i], 1, marketplace::kContractName, "RegisterTimeSlot",
        slots.serialize(), 0, 1'000'000'000,
        marketplace::access_register_time_slot(keys[i])));
  }
  Mist burned = 0;
  for (const auto& r : bc.submit_batch(setup, opts)) {
    if (!r.ok() || !r->success) {
      out.trace += "setup failed: " +
                   (r.ok() ? r->error : r.error_message()) + "\n";
      return out;
    }
    burned += r->gas_charged;
  }

  std::vector<chain::Transaction> race;
  race.reserve(initiators);
  for (std::size_t j = 0; j < initiators; ++j) {
    auto key = crypto::KeyPair::from_seed(seed ^ (0x171ULL << 40) ^ j);
    accounts.push_back(chain::Address::of(key.public_key()));
    bc.mint(accounts.back(), 100'000'000'000ULL);
    minted += 100'000'000'000ULL;
    const std::size_t p = j % pairs;
    marketplace::PurchaseSlotArgs args;
    args.client_key = keys[2 * p];
    args.server_key = keys[2 * p + 1];
    args.client_slot.start = args.server_slot.start = 1000;
    args.client_slot.end = args.server_slot.end = 2000;
    args.client_slot.price = args.server_slot.price = kPrice;
    args.client_app.bytecode = bytes_of("debuglet-" + std::to_string(j));
    args.client_app.manifest = bytes_of("manifest");
    args.server_app = args.client_app;
    race.push_back(bc.make_transaction_with_nonce(
        key, 0, marketplace::kContractName, "PurchaseSlot", args.serialize(),
        2 * kPrice, 1'000'000'000,
        marketplace::access_purchase_slot(args.client_key,
                                          args.server_key)));
  }
  const auto results = bc.submit_batch(race, opts);

  std::vector<std::size_t> winners(pairs, 0);
  for (std::size_t j = 0; j < results.size(); ++j) {
    const auto& r = results[j];
    const std::string line = "tx " + std::to_string(j) + " pair " +
                             std::to_string(j % pairs) + ": ";
    if (!r.ok()) {
      out.trace += line + "reject " + r.error_message() + "\n";
      continue;
    }
    burned += r->gas_charged;
    if (r->success) {
      ++winners[j % pairs];
      auto receipt = marketplace::PurchaseReceipt::parse(
          BytesView(r->return_value.data(), r->return_value.size()));
      out.trace += line + "ok apps=" +
                   (receipt.ok()
                        ? std::to_string(receipt->client_application) + "," +
                              std::to_string(receipt->server_application)
                        : "?") +
                   "\n";
    } else {
      out.trace += line + "fail " + r->error + "\n";
    }
  }
  out.one_winner_per_pair = true;
  out.trace += "winners:";
  for (std::size_t p = 0; p < pairs; ++p) {
    out.trace += " " + std::to_string(winners[p]);
    if (winners[p] != 1) out.one_winner_per_pair = false;
  }
  out.trace += "\n";

  Mist held = bc.escrow_balance(marketplace::kContractName);
  out.trace += "escrow: " + std::to_string(held) + "\n";
  for (const auto& account : accounts) held += bc.balance(account);
  out.conserved = minted == held + burned;
  out.trace += "minted: " + std::to_string(minted) + " held: " +
               std::to_string(held) + " burned: " + std::to_string(burned) +
               "\n";
  out.intact = bc.verify_integrity();
  const chain::Block& tip = bc.block(bc.height() - 1);
  out.trace += "tip: " + tip.transactions_root.hex() + "\n";
  out.trace += std::string("integrity: ") + (out.intact ? "ok" : "BAD") +
               "\n";
  return out;
}

int cmd_mass_purchase(const Args& args) {
  const auto initiators =
      static_cast<std::size_t>(args.get_int("mass-purchase", 10000));
  const auto pairs = static_cast<std::size_t>(args.get_int("pairs", 16));
  const auto workers = static_cast<unsigned>(args.get_int("workers", 4));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  if (pairs == 0 || initiators < pairs) {
    std::printf("--mass-purchase needs at least one initiator per pair\n");
    return 1;
  }
  std::printf("mass purchase: %zu initiators racing for %zu executor pairs "
              "(%u workers, seed %llu)\n",
              initiators, pairs, workers,
              static_cast<unsigned long long>(seed));

  MassPurchaseOutcome first =
      run_mass_purchase(initiators, pairs, workers, seed);
  std::printf("  one winner per slot pair: %s\n",
              first.one_winner_per_pair ? "yes" : "NO");
  std::printf("  tokens conserved:         %s\n",
              first.conserved ? "yes" : "NO");
  std::printf("  chain integrity:          %s\n", first.intact ? "ok" : "BAD");

  bool deterministic = true;
  if (args.has("check-determinism")) {
    MassPurchaseOutcome second =
        run_mass_purchase(initiators, pairs, workers, seed);
    deterministic = first.trace == second.trace;
    std::printf("\ndeterminism check: %s\n",
                deterministic ? "traces identical" : "TRACES DIVERGED");
  }
  if (const std::string out_path = args.get("trace-out", "");
      !out_path.empty()) {
    // The file is the cross-worker determinism artifact: CI runs the same
    // seed at several --workers values and byte-diffs the outputs.
    std::ofstream out(out_path, std::ios::binary);
    if (!out) {
      std::printf("cannot write %s\n", out_path.c_str());
      return 1;
    }
    out << first.trace;
    std::printf("trace written to %s\n", out_path.c_str());
  }
  const bool ok = first.one_winner_per_pair && first.conserved &&
                  first.intact && deterministic;
  std::printf("\nchaos verdict: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}

int cmd_chaos(const Args& args) {
  if (args.has("mass-purchase")) return cmd_mass_purchase(args);
  obs::set_enabled(true);
  ChaosParams p;
  p.ases = static_cast<std::size_t>(args.get_int("ases", 8));
  p.fault_link = static_cast<std::size_t>(
      args.get_int("fault-link", static_cast<std::int64_t>(p.ases) - 2));
  p.fault_ms = static_cast<double>(args.get_int("fault-ms", 60));
  p.attempts = static_cast<std::uint32_t>(args.get_int("attempts", 4));
  p.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  if (p.fault_link + 1 >= p.ases) {
    std::printf("fault-link must be < %zu\n", p.ases - 1);
    return 1;
  }
  auto parse_keys = [&](const char* flag,
                        std::vector<topology::InterfaceKey>& into) -> bool {
    for (const std::string& text : args.get_all(flag)) {
      if (text.empty()) continue;
      auto key = parse_key(text);
      if (!key) {
        std::printf("--%s: %s\n", flag, key.error_message().c_str());
        return false;
      }
      into.push_back(*key);
    }
    return true;
  };
  if (!parse_keys("kill", p.kills) || !parse_keys("crash", p.crashes) ||
      !parse_keys("byzantine", p.byzantine))
    return 1;
  p.link_corrupt_pm = args.get_int("link-corrupt", 0);
  p.link_truncate_pm = args.get_int("link-truncate", 0);
  p.link_dup_pm = args.get_int("link-dup", 0);
  p.link_reorder_pm = args.get_int("link-reorder", 0);
  p.link_flap_ms = args.get_int("link-flap-ms", 0);
  p.int_mode = args.has("int");
  p.shards = static_cast<std::size_t>(args.get_int("shards", 1));
  p.detect_discrimination = args.has("detect-discrimination");
  for (const std::string& text : args.get_all("middlebox")) {
    if (text.empty()) continue;
    ChaosParams::MiddleboxSpec spec;
    const std::size_t c1 = text.find(':');
    if (c1 == std::string::npos || c1 == 0) {
      std::printf("--middlebox: expected ASN:MODE[:SEVERITY], got '%s'\n",
                  text.c_str());
      return 1;
    }
    const std::size_t c2 = text.find(':', c1 + 1);
    spec.asn = static_cast<topology::AsNumber>(
        std::atoll(text.substr(0, c1).c_str()));
    spec.mode = c2 == std::string::npos
                    ? text.substr(c1 + 1)
                    : text.substr(c1 + 1, c2 - c1 - 1);
    if (c2 != std::string::npos)
      spec.severity = std::atof(text.substr(c2 + 1).c_str());
    if (spec.mode != "drop" && spec.mode != "delay" && spec.mode != "mangle" &&
        spec.mode != "throttle" && spec.mode != "hide" &&
        spec.mode != "adaptive") {
      std::printf("--middlebox: unknown mode '%s' (drop|delay|mangle|"
                  "throttle|hide|adaptive)\n",
                  spec.mode.c_str());
      return 1;
    }
    if (spec.asn == 0 || spec.asn > p.ases) {
      std::printf("--middlebox: AS%u is not on the chain (1..%zu)\n", spec.asn,
                  p.ases);
      return 1;
    }
    p.middleboxes.push_back(std::move(spec));
  }
  if (p.kills.empty() && p.crashes.empty() && p.byzantine.empty() &&
      !p.link_faults() && p.middleboxes.empty() &&
      !p.detect_discrimination) {
    // Default chaos: the AS on the near side of the faulty link goes
    // completely dark (both border executors killed), so localization
    // must bracket the fault from the surviving neighbours.
    const auto dark = static_cast<topology::AsNumber>(p.fault_link + 1);
    p.kills.push_back(topology::InterfaceKey{dark, 1});
    p.kills.push_back(topology::InterfaceKey{dark, 2});
    std::printf("no chaos flags given; defaulting to --kill AS%u#1 "
                "--kill AS%u#2\n",
                dark, dark);
  }

  ChaosOutcome first = run_chaos(p, /*verbose=*/true);

  std::printf("\nchaos counters:\n");
  std::vector<obs::MetricRow> interesting;
  for (const obs::MetricRow& row : first.counters) {
    if (row.name.rfind("core.retry", 0) == 0 ||
        row.name.rfind("core.measurement", 0) == 0 ||
        row.name.rfind("core.executor_down", 0) == 0 ||
        row.name.rfind("core.results_rejected", 0) == 0 ||
        row.name.rfind("core.byzantine", 0) == 0 ||
        row.name.rfind("core.agent_", 0) == 0 ||
        row.name.rfind("core.localization", 0) == 0 ||
        row.name.rfind("core.probe_", 0) == 0 ||
        row.name.rfind("core.scrape_chunks", 0) == 0 ||
        row.name.rfind("net.parse_rejected", 0) == 0 ||
        row.name.rfind("net.ttl_expired", 0) == 0 ||
        row.name.rfind("telemetry.", 0) == 0 ||
        row.name.rfind("simnet.host_fault", 0) == 0 ||
        row.name.rfind("simnet.wire_faults", 0) == 0 ||
        row.name.rfind("simnet.middlebox", 0) == 0 ||
        row.name.rfind("executor.deployments_abandoned", 0) == 0)
      interesting.push_back(row);
  }
  print_metric_rows(interesting);
  if (const std::size_t at = first.trace.find("\nfault matrix:");
      at != std::string::npos) {
    std::printf("%s\n", first.trace.substr(at).c_str());
  }

  bool deterministic = true;
  if (args.has("check-determinism")) {
    ChaosOutcome second = run_chaos(p, /*verbose=*/false);
    deterministic = first.trace == second.trace;
    std::printf("\ndeterminism check: %s\n",
                deterministic ? "traces identical" : "TRACES DIVERGED");
  }
  if (const std::string out_path = args.get("trace-out", "");
      !out_path.empty()) {
    // The file is the cross-shard determinism artifact: CI runs the same
    // seed at several --shards values and byte-diffs the outputs.
    std::ofstream out(out_path, std::ios::binary);
    if (!out) {
      std::printf("cannot write %s\n", out_path.c_str());
      return 1;
    }
    out << first.trace << "\n";
    std::printf("trace written to %s\n", out_path.c_str());
  }
  if (p.detect_discrimination)
    std::printf("\ndiscrimination check: %s\n",
                first.discrimination_ok ? "as expected" : "WRONG VERDICT");
  const bool ok = first.measurement_ok && first.bracketed &&
                  first.discrimination_ok && deterministic;
  std::printf("\nchaos verdict: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}

int cmd_asm(const Args& args) {
  if (args.positional().empty()) {
    std::printf("usage: debuglet asm FILE\n");
    return 1;
  }
  const std::string path = args.positional()[0];
  std::ifstream in(path);
  if (!in) {
    std::printf("cannot open %s\n", path.c_str());
    return 1;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  auto module = vm::assemble(buffer.str());
  if (!module) {
    std::printf("assembly error: %s\n", module.error_message().c_str());
    return 1;
  }
  if (auto valid = vm::validate(*module); !valid) {
    std::printf("validation error: %s\n", valid.error_message().c_str());
    return 1;
  }
  const Bytes wire = module->serialize();
  const std::string out_path = path + ".dvm";
  std::ofstream out(out_path, std::ios::binary);
  out.write(reinterpret_cast<const char*>(wire.data()),
            static_cast<std::streamsize>(wire.size()));
  std::printf("wrote %s (%zu bytes, %zu functions)\n", out_path.c_str(),
              wire.size(), module->functions.size());
  return 0;
}

int cmd_disasm(const Args& args) {
  if (args.positional().empty()) {
    std::printf("usage: debuglet disasm FILE\n");
    return 1;
  }
  std::ifstream in(args.positional()[0], std::ios::binary);
  if (!in) {
    std::printf("cannot open %s\n", args.positional()[0].c_str());
    return 1;
  }
  Bytes wire((std::istreambuf_iterator<char>(in)),
             std::istreambuf_iterator<char>());
  auto module = vm::Module::parse(BytesView(wire.data(), wire.size()));
  if (!module) {
    std::printf("parse error: %s\n", module.error_message().c_str());
    return 1;
  }
  std::printf("%s", vm::disassemble(*module).c_str());
  return 0;
}

void usage() {
  std::printf(
      "debuglet — programmable, verifiable inter-domain telemetry "
      "(simulated)\n\n"
      "usage: debuglet <command> [flags]\n\n"
      "commands:\n"
      "  measure     purchase and run one marketplace measurement\n"
      "  localize    inject a fault into a chain topology and localize it\n"
      "  traceroute  run the traceroute baseline\n"
      "  motivation  the paper's Section II protocol comparison\n"
      "  stats       run a measurement with metrics on; print/export them\n"
      "              (--remote AS#IF scrapes a remote executor's registry\n"
      "              over the simulated network instead)\n"
      "  trace       run a localization with tracing on; dump a Chrome\n"
      "              trace (chrome://tracing / Perfetto) of the run\n"
      "  chaos       kill/crash executors on a faulty path, then run a\n"
      "              resilient measurement and a degraded localization\n"
      "              (--link-corrupt/--link-truncate/--link-dup/\n"
      "              --link-reorder/--link-flap-ms add wire-level chaos;\n"
      "              --int localizes via in-band INT records)\n"
      "  asm FILE    assemble DVM assembly into FILE.dvm\n"
      "  disasm FILE print the assembly of a serialized module\n\n"
      "run a command with no flags for sensible defaults; see tools/\n"
      "debuglet_cli.cpp header for every flag.\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 1;
  }
  const std::string command = argv[1];
  const Args args(argc, argv);
  if (command == "measure") return cmd_measure(args);
  if (command == "localize") return cmd_localize(args);
  if (command == "traceroute") return cmd_traceroute(args);
  if (command == "motivation") return cmd_motivation(args);
  if (command == "stats") return cmd_stats(args);
  if (command == "trace") return cmd_trace(args);
  if (command == "chaos") return cmd_chaos(args);
  if (command == "asm") return cmd_asm(args);
  if (command == "disasm") return cmd_disasm(args);
  usage();
  return command == "help" || command == "--help" ? 0 : 1;
}
